//! Daemon integration tests: jobs submitted over the socket must be
//! **bit-identical** to the same jobs run via `minoaner batch` and via
//! solo sequential runs ([`JobReport::fingerprint`]), and cancelling a
//! *running* job must unwind it to a `Cancelled` report at a pipeline
//! checkpoint without disturbing other in-flight jobs.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use minoaner::datagen::DatasetKind;
use minoaner::exec::ExecutorKind;
use minoaner::kb::Json;
use minoaner::serve::{
    run_batch, run_daemon, JobInput, JobSpec, JobStatus, Manifest, ServeOptions,
};

/// A tiny line-delimited JSON client (the shipping one lives in
/// `examples/daemon_client.rs`; tests keep their own to stay
/// self-contained).
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, body: Json) -> Json {
        self.writer
            .write_all((body.compact() + "\n").as_bytes())
            .expect("send request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        let response = Json::parse(line.trim()).expect("response parses");
        assert_eq!(
            response.get("ok"),
            Some(&Json::Bool(true)),
            "daemon refused: {response:?}"
        );
        response
    }

    fn submit(&mut self, name: &str, dataset: &str, scale: f64) -> usize {
        let r = self.request(Json::obj([
            ("op", Json::str("submit")),
            (
                "job",
                Json::obj([
                    ("name", Json::str(name)),
                    ("dataset", Json::str(dataset)),
                    ("seed", Json::num(20180416.0)),
                    ("scale", Json::Num(scale)),
                ]),
            ),
        ]));
        r.get("id").and_then(Json::as_usize).expect("submit id")
    }

    fn op_id(&mut self, op: &str, id: usize) -> Json {
        self.request(Json::obj([
            ("op", Json::str(op)),
            ("id", Json::num(id as f64)),
        ]))
    }

    /// Waits for the job and returns its raw fingerprint and status.
    fn wait(&mut self, id: usize) -> (String, String) {
        let r = self.op_id("wait", id);
        let fingerprint = r
            .get("fingerprint")
            .and_then(Json::as_str)
            .expect("fingerprint")
            .to_string();
        let status = r
            .get("report")
            .and_then(|rep| rep.get("status"))
            .and_then(Json::as_str)
            .expect("status")
            .to_string();
        (fingerprint, status)
    }

    fn shutdown(&mut self) {
        self.request(Json::obj([("op", Json::str("shutdown"))]));
    }

    /// Polls `status` until job `id` reaches `phase` (with a timeout).
    fn await_phase(&mut self, id: usize, phase: &str) {
        let t0 = Instant::now();
        loop {
            let r = self.op_id("status", id);
            let jobs = match r.get("jobs") {
                Some(Json::Arr(jobs)) => jobs,
                other => panic!("bad status jobs: {other:?}"),
            };
            let got = jobs[0].get("phase").and_then(Json::as_str).unwrap();
            if got == phase {
                return;
            }
            assert!(
                got != "done",
                "job #{id} finished before reaching {phase:?}"
            );
            assert!(
                t0.elapsed() < Duration::from_secs(60),
                "job #{id} never reached {phase:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn synthetic_spec(name: &str, kind: DatasetKind, scale: f64) -> JobSpec {
    JobSpec {
        name: name.into(),
        input: JobInput::Synthetic {
            kind,
            seed: 20180416,
            scale,
        },
        truth: None,
        theta: None,
        candidates_k: None,
        purge_blocks: None,
        timeout_ms: None,
        max_retries: None,
        persist: None,
    }
}

fn profile_name(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::Restaurant => "restaurant",
        DatasetKind::RexaDblp => "rexa",
        DatasetKind::BbcDbpedia => "bbc",
        DatasetKind::YagoImdb => "yago",
    }
}

#[test]
fn socket_jobs_are_bit_identical_to_batch_and_solo_runs() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = ServeOptions {
        slots: Some(2),
        threads: Some(3),
        ..ServeOptions::default()
    };

    // Daemon path: submit all four profiles over the socket.
    let (daemon_fps, report) = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| run_daemon(listener, &opts, |_| {}).unwrap());
        let mut client = Client::connect(addr);
        let ids: Vec<(usize, DatasetKind)> = DatasetKind::ALL
            .into_iter()
            .map(|kind| {
                (
                    client.submit(profile_name(kind), profile_name(kind), 0.08),
                    kind,
                )
            })
            .collect();
        let fps: Vec<(DatasetKind, String)> = ids
            .into_iter()
            .map(|(id, kind)| {
                let (fp, status) = client.wait(id);
                assert_eq!(status, "ok", "{kind:?} failed over the socket");
                (kind, fp)
            })
            .collect();
        client.shutdown();
        (fps, daemon.join().unwrap())
    });

    // The daemon's final fleet report carries the same fingerprints in
    // submission order.
    assert_eq!(report.jobs.len(), 4);
    for ((_, fp), job) in daemon_fps.iter().zip(&report.jobs) {
        assert_eq!(*fp, job.fingerprint(), "{}: wait vs report", job.name);
    }

    // Batch path: the same jobs as a manifest fleet.
    let manifest = Manifest {
        slots: 2,
        threads: 3,
        memory_budget_mib: 0,
        timeout_ms: 0,
        max_retries: 0,
        jobs: DatasetKind::ALL
            .into_iter()
            .map(|kind| synthetic_spec(profile_name(kind), kind, 0.08))
            .collect(),
    };
    let batch = run_batch(&manifest, &ServeOptions::default());

    // Solo path: each job alone on a sequential executor.
    for (i, kind) in DatasetKind::ALL.into_iter().enumerate() {
        let solo_manifest = Manifest {
            slots: 1,
            threads: 1,
            memory_budget_mib: 0,
            timeout_ms: 0,
            max_retries: 0,
            jobs: vec![synthetic_spec(profile_name(kind), kind, 0.08)],
        };
        let solo = run_batch(
            &solo_manifest,
            &ServeOptions {
                slots: Some(1),
                threads: Some(1),
                executor: ExecutorKind::Sequential,
                ..ServeOptions::default()
            },
        );
        let socket_fp = &daemon_fps[i].1;
        assert_eq!(
            *socket_fp,
            batch.jobs[i].fingerprint(),
            "{kind:?}: socket vs batch"
        );
        assert_eq!(
            *socket_fp,
            solo.jobs[0].fingerprint(),
            "{kind:?}: socket vs solo sequential"
        );
    }
}

#[test]
fn malformed_frames_get_error_responses_and_never_wedge_the_daemon() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = ServeOptions {
        slots: Some(2),
        threads: Some(2),
        ..ServeOptions::default()
    };
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| run_daemon(listener, &opts, |_| {}).unwrap());
        let mut client = Client::connect(addr);
        // A real job first, so malformed traffic has something to
        // (fail to) disturb.
        let id = client.submit("survivor", "restaurant", 0.1);

        // Raw frames on a separate connection: invalid UTF-8, invalid
        // JSON, a missing `op`, a wrong-typed `op`. Every one must get
        // an {"ok":false} response on the same still-usable connection.
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let frames: [(&[u8], &str); 4] = [
            (b"{\"op\": \"w\xc3\x28at\"}\n", "invalid UTF-8"),
            (b"{\"op\": \n", "bad request JSON"),
            (b"{\"id\": 3}\n", "`op`"),
            (b"{\"op\": 7}\n", "`op`"),
        ];
        for (frame, needle) in frames {
            stream.write_all(frame).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let r = Json::parse(line.trim()).expect("error response parses");
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{frame:?}");
            let err = r.get("error").unwrap();
            assert_eq!(err.get("code").unwrap().as_str(), Some("bad_request"));
            let e = err.get("message").unwrap().as_str().unwrap();
            assert!(e.contains(needle), "{frame:?} -> {e}");
        }
        // The abused connection still answers real requests…
        stream.write_all(b"{\"op\":\"status\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let r = Json::parse(line.trim()).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");

        // A newline-less byte flood cannot grow the frame buffer
        // without bound: one error response, then the connection
        // closes (framing is unrecoverable mid-frame).
        let mut flood = TcpStream::connect(addr).unwrap();
        let chunk = vec![b'x'; 1 << 20];
        for _ in 0..5 {
            flood.write_all(&chunk).unwrap();
        }
        let mut flood_reader = BufReader::new(flood.try_clone().unwrap());
        let mut line = String::new();
        flood_reader.read_line(&mut line).unwrap();
        let r = Json::parse(line.trim()).expect("oversize response parses");
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let e = r
            .get("error")
            .unwrap()
            .get("message")
            .unwrap()
            .as_str()
            .unwrap();
        assert!(e.contains("byte limit"), "{e}");
        line.clear();
        assert_eq!(
            flood_reader.read_line(&mut line).unwrap(),
            0,
            "connection closes after an oversized frame"
        );
        // …and the job submitted before the barrage still resolves.
        let (_, status) = client.wait(id);
        assert_eq!(status, "ok", "malformed frames disturbed a running job");
        client.shutdown();
        daemon.join().unwrap()
    });
}

#[test]
fn cancelling_a_running_job_spares_the_rest_of_the_fleet() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Two slots so the quick job runs next to the doomed one.
    let opts = ServeOptions {
        slots: Some(2),
        threads: Some(2),
        ..ServeOptions::default()
    };

    let report = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| run_daemon(listener, &opts, |_| {}).unwrap());
        let mut client = Client::connect(addr);
        // A job heavy enough (~1.5 s debug) that cancelling right after
        // dispatch leaves many checkpoints ahead of it.
        let doomed = client.submit("doomed", "yago", 1.0);
        let quick = client.submit("quick", "restaurant", 0.1);
        client.await_phase(doomed, "running");
        let r = client.op_id("cancel", doomed);
        assert_eq!(
            r.get("outcome").and_then(Json::as_str),
            Some("cancelling"),
            "the job was running, so the cancel must take the mid-run path"
        );
        let (_, status) = client.wait(doomed);
        assert_eq!(status, "cancelled", "running job unwound at a checkpoint");
        let (_, status) = client.wait(quick);
        assert_eq!(status, "ok", "other in-flight jobs are unaffected");
        // A cancelled job can be re-submitted and still resolves.
        let retry = client.submit("doomed-retry", "restaurant", 0.05);
        let (_, status) = client.wait(retry);
        assert_eq!(status, "ok");
        client.shutdown();
        daemon.join().unwrap()
    });

    assert_eq!(report.jobs.len(), 3);
    assert_eq!(report.jobs[0].status, JobStatus::Cancelled);
    assert!(report.jobs[1].status.is_ok());
    assert!(report.jobs[2].status.is_ok());
    // The cancelled job produced no partial output.
    assert!(report.jobs[0].matches.is_empty());
}
