//! The four benchmark dataset profiles.
//!
//! Each profile emulates the *matching-relevant signature* of one of the
//! paper's benchmarks (Table I), scaled to laptop size. What MinoanER
//! sees is entirely determined by token-frequency statistics, name
//! uniqueness, schema scatter and link structure — exactly the knobs
//! these profiles control (see DESIGN.md §3 for the substitution
//! rationale):
//!
//! - [`DatasetKind::Restaurant`]: tiny, strongly similar pair with
//!   address companions — everything matches on names and values;
//! - [`DatasetKind::RexaDblp`]: publications + authors, heavy size skew
//!   towards the second KB, good value overlap;
//! - [`DatasetKind::BbcDbpedia`]: extreme schema heterogeneity — the
//!   second side scatters attributes over hundreds of names and buries
//!   values in verbose abstracts;
//! - [`DatasetKind::YagoImdb`]: movies + persons with *very low* value
//!   overlap but distinctive names and strong relational evidence.

use minoan_kb::{GroundTruth, KbPair};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::render::{render_pair, ClassRender, RenderSpec};
use crate::words::WordPool;
use crate::world::{ClassSpec, FieldSpec, Presence, TokenPools, World};

/// A generated benchmark dataset.
pub struct Dataset {
    /// Human-readable dataset name (paper spelling).
    pub name: String,
    /// Which profile generated it.
    pub kind: DatasetKind,
    /// The KB pair.
    pub pair: KbPair,
    /// The ground-truth matches.
    pub truth: GroundTruth,
}

/// The four benchmark profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// OAEI Restaurant analogue.
    Restaurant,
    /// Rexa–DBLP analogue.
    RexaDblp,
    /// BBCmusic–DBpedia analogue.
    BbcDbpedia,
    /// YAGO–IMDb analogue.
    YagoImdb,
}

impl DatasetKind {
    /// All profiles, in the paper's column order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Restaurant,
        DatasetKind::RexaDblp,
        DatasetKind::BbcDbpedia,
        DatasetKind::YagoImdb,
    ];

    /// The dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Restaurant => "Restaurant",
            DatasetKind::RexaDblp => "Rexa-DBLP",
            DatasetKind::BbcDbpedia => "BBCmusic-DBpedia",
            DatasetKind::YagoImdb => "YAGO-IMDb",
        }
    }

    /// Generates the dataset at default scale.
    pub fn generate(self, seed: u64) -> Dataset {
        self.generate_scaled(seed, 1.0)
    }

    /// Approximate number of entities (both sides together) that
    /// [`DatasetKind::generate_scaled`] produces at `scale`, without
    /// generating anything. The counts mirror the per-class entity
    /// budgets of each profile (matched + side-only + companions) and
    /// are the KB-stats input to the serving layer's bounded-memory
    /// admission: a synthetic job's footprint is estimated from this
    /// before the dataset exists.
    pub fn approx_entities(self, scale: f64) -> usize {
        let base = match self {
            // restaurants (90+25+990) plus one address each.
            DatasetKind::Restaurant => 2 * (90 + 25 + 990),
            // publications (450+120+2600) + authors (280+80+1100).
            DatasetKind::RexaDblp => 3170 + 1460,
            // artists (700+550+1800) + places (550+60+160).
            DatasetKind::BbcDbpedia => 3050 + 770,
            // movies (700+90+140) + persons (1000+130+180).
            DatasetKind::YagoImdb => 930 + 1310,
        };
        ((base as f64 * scale).round() as usize).max(1)
    }

    /// Generates the dataset with entity counts multiplied by `scale`
    /// (used by the scale-sweep benchmarks).
    pub fn generate_scaled(self, seed: u64, scale: f64) -> Dataset {
        assert!(scale > 0.0, "scale must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ (self as u64) << 32);
        let (world, specs) = match self {
            DatasetKind::Restaurant => restaurant(&mut rng, scale),
            DatasetKind::RexaDblp => rexa_dblp(&mut rng, scale),
            DatasetKind::BbcDbpedia => bbc_dbpedia(&mut rng, scale),
            DatasetKind::YagoImdb => yago_imdb(&mut rng, scale),
        };
        let (pair, truth) = render_pair(&world, [&specs[0], &specs[1]], &mut rng);
        Dataset {
            name: self.name().to_string(),
            kind: self,
            pair,
            truth,
        }
    }
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(1)
}

/// Adds `both` + `first` + `second` entities of one class, returning the
/// canonical indices grouped by presence.
#[allow(clippy::too_many_arguments)]
fn add_class(
    world: &mut World,
    rng: &mut StdRng,
    class: usize,
    spec: &ClassSpec,
    pools: &TokenPools,
    both: usize,
    first: usize,
    second: usize,
) -> Vec<usize> {
    let mut idx = Vec::with_capacity(both + first + second);
    for _ in 0..both {
        idx.push(world.add_entity(rng, class, Presence::Both, spec, pools));
    }
    for _ in 0..first {
        idx.push(world.add_entity(rng, class, Presence::FirstOnly, spec, pools));
    }
    for _ in 0..second {
        idx.push(world.add_entity(rng, class, Presence::SecondOnly, spec, pools));
    }
    idx
}

/// Adds a class whose entities are organized into *collision clusters*
/// (see [`World::add_cluster`]): a `collision_rate` fraction of clusters
/// hold 2+ distinct entities sharing the same canonical name and field
/// content. Presences are shuffled so clusters span ground-truth and
/// side-only entities alike.
#[allow(clippy::too_many_arguments)]
fn add_class_clustered(
    world: &mut World,
    rng: &mut StdRng,
    class: usize,
    spec: &ClassSpec,
    name_pool: &WordPool,
    pools: &TokenPools,
    counts: (usize, usize, usize),
    collision_rate: f64,
    cluster_size: (usize, usize),
) -> Vec<usize> {
    use rand::seq::SliceRandom;
    use rand::Rng;
    let (both, first, second) = counts;
    let mut presences: Vec<Presence> = Vec::with_capacity(both + first + second);
    presences.extend(std::iter::repeat_n(Presence::Both, both));
    presences.extend(std::iter::repeat_n(Presence::FirstOnly, first));
    presences.extend(std::iter::repeat_n(Presence::SecondOnly, second));
    presences.shuffle(rng);
    let mut idx = Vec::with_capacity(presences.len());
    let mut i = 0;
    while i < presences.len() {
        let size = if rng.gen_bool(collision_rate) {
            rng.gen_range(cluster_size.0..=cluster_size.1)
                .min(presences.len() - i)
        } else {
            1
        };
        let n_name = rng.gen_range(spec.name_words.0..=spec.name_words.1);
        let name: Vec<String> = (0..n_name)
            .map(|_| name_pool.pick(rng).to_string())
            .collect();
        idx.extend(world.add_cluster(rng, class, &presences[i..i + size], spec, name, pools));
        i += size;
    }
    idx
}

fn pick(rng: &mut StdRng, v: &[usize]) -> usize {
    use rand::Rng;
    v[rng.gen_range(0..v.len())]
}

/// Entity indices partitioned by presence, for presence-compatible link
/// targeting: a KB describes its own publications' authors and its own
/// movies' actors, so links must rarely dangle (target absent from the
/// source's side).
struct ByPresence {
    both: Vec<usize>,
    first: Vec<usize>,
    second: Vec<usize>,
}

impl ByPresence {
    fn split(world: &World, idx: &[usize]) -> Self {
        let mut by = ByPresence {
            both: Vec::new(),
            first: Vec::new(),
            second: Vec::new(),
        };
        for &i in idx {
            match world.entities[i].presence {
                Presence::Both => by.both.push(i),
                Presence::FirstOnly => by.first.push(i),
                Presence::SecondOnly => by.second.push(i),
            }
        }
        by
    }

    /// Picks a target compatible with `presence`: a `Both` source mostly
    /// links `Both` targets (the shared world), one-sided sources link
    /// targets present on their side.
    fn pick_for(&self, rng: &mut StdRng, presence: Presence, both_bias: f64) -> Option<usize> {
        use rand::Rng;
        let pool: &[usize] = match presence {
            Presence::Both => {
                if self.both.is_empty() {
                    return None;
                }
                // The draw is kept even though both outcomes land in the
                // shared pool: it keeps the RNG stream aligned with the
                // one-sided arms, which consume one draw per pick.
                let _ = rng.gen_bool(both_bias);
                &self.both
            }
            Presence::FirstOnly => {
                if !self.first.is_empty() && rng.gen_bool(0.5) {
                    &self.first
                } else if !self.both.is_empty() {
                    &self.both
                } else if !self.first.is_empty() {
                    &self.first
                } else {
                    return None;
                }
            }
            Presence::SecondOnly => {
                if !self.second.is_empty() && rng.gen_bool(0.5) {
                    &self.second
                } else if !self.both.is_empty() {
                    &self.both
                } else if !self.second.is_empty() {
                    &self.second
                } else {
                    return None;
                }
            }
        };
        Some(pool[rng.gen_range(0..pool.len())])
    }
}

// ---------------------------------------------------------------- Restaurant

fn restaurant(rng: &mut StdRng, scale: f64) -> (World, [RenderSpec; 2]) {
    let pools = TokenPools::generate(rng, 6000, 40, 2000);
    let restaurant_spec = ClassSpec {
        name_words: (2, 4),
        name_exact_prob: 0.97,
        name_drop_prob: 0.2,
        fields: vec![
            // cuisine / category: common vocabulary.
            FieldSpec::new((2, 3), 0.85, [0.95, 0.9], [(0, 1), (0, 1)]),
            // phone-ish distinctive value.
            FieldSpec::new((1, 2), 0.0, [0.95, 0.95], [(0, 0), (0, 0)]),
        ],
    };
    let address_spec = ClassSpec {
        name_words: (3, 4),
        name_exact_prob: 0.9,
        name_drop_prob: 0.25,
        fields: vec![FieldSpec::new((2, 3), 0.5, [0.95, 0.9], [(0, 1), (0, 1)])],
    };
    let mut world = World {
        gt_classes: vec![0],
        ..World::default()
    };
    let n_match = scaled(90, scale);
    let restaurants = add_class(
        &mut world,
        rng,
        0,
        &restaurant_spec,
        &pools,
        n_match,
        scaled(25, scale),
        scaled(990, scale),
    );
    // One address per restaurant, same presence.
    for &r in &restaurants {
        let presence = world.entities[r].presence;
        let a = world.add_entity(rng, 1, presence, &address_spec, &pools);
        world.link(r, 0, a);
    }
    let specs = [
        RenderSpec {
            kb_name: "Restaurant-E1".into(),
            uri_prefix: "r1:e".into(),
            attr_prefix: "http://restaurant1/".into(),
            classes: vec![
                ClassRender {
                    name_attr: "name".into(),
                    field_attrs: vec!["category".into(), "phone".into()],
                    type_assertion: Some(("type".into(), "Restaurant".into())),
                    attr_scatter: 1,
                    name_punctuation_prob: 0.0,
                },
                ClassRender {
                    name_attr: "street".into(),
                    field_attrs: vec!["city".into()],
                    type_assertion: Some(("type".into(), "Address".into())),
                    attr_scatter: 1,
                    name_punctuation_prob: 0.0,
                },
            ],
            relation_attrs: vec!["address".into()],
        },
        RenderSpec {
            kb_name: "Restaurant-E2".into(),
            uri_prefix: "r2:e".into(),
            attr_prefix: "http://restaurant2/".into(),
            classes: vec![
                ClassRender {
                    name_attr: "title".into(),
                    field_attrs: vec!["cuisine".into(), "telephone".into()],
                    type_assertion: Some(("type".into(), "Restaurant".into())),
                    attr_scatter: 1,
                    name_punctuation_prob: 0.0,
                },
                ClassRender {
                    name_attr: "streetAddress".into(),
                    field_attrs: vec!["locality".into()],
                    type_assertion: Some(("type".into(), "Address".into())),
                    attr_scatter: 1,
                    name_punctuation_prob: 0.0,
                },
            ],
            relation_attrs: vec!["hasAddress".into()],
        },
    ];
    (world, specs)
}

// ----------------------------------------------------------------- Rexa-DBLP

fn rexa_dblp(rng: &mut StdRng, scale: f64) -> (World, [RenderSpec; 2]) {
    let pools = TokenPools::generate(rng, 30000, 120, 20000);
    // Paper titles reuse a field-specific vocabulary: full titles are
    // unique, individual title words are not.
    let title_words = WordPool::generate(rng, scaled(2200, scale));
    let pub_spec = ClassSpec {
        name_words: (4, 7),
        name_exact_prob: 0.8,
        name_drop_prob: 0.2,
        fields: vec![
            // venue: a single categorical token.
            FieldSpec::new((1, 1), 1.0, [0.95, 0.9], [(0, 0), (0, 0)]),
            // abstract-ish: the second side is more verbose (Table I:
            // 40.7 vs 59.2 average tokens). A slice of the publications
            // carries almost no shared lexical evidence, which is what
            // caps BSL's recall below MinoanER's in the paper.
            FieldSpec::new((8, 16), 0.4, [0.85, 0.75], [(0, 4), (6, 18)])
                .with_hard(0.5, [0.85, 0.0])
                .with_cluster_share(0.1),
        ],
    };
    // Author names collide (homonym researchers, initials): identical
    // names with identical affiliations are resolved only through their
    // publications.
    let author_names = WordPool::generate(rng, scaled(1400, scale));
    let author_spec = ClassSpec {
        name_words: (2, 3),
        name_exact_prob: 0.85,
        name_drop_prob: 0.3,
        fields: vec![FieldSpec::new((2, 4), 0.9, [0.9, 0.85], [(0, 1), (0, 3)])],
    };
    let mut world = World {
        gt_classes: vec![0, 1],
        ..World::default()
    };
    let pubs = add_class_clustered(
        &mut world,
        rng,
        0,
        &pub_spec,
        &title_words,
        &pools,
        (scaled(450, scale), scaled(120, scale), scaled(2600, scale)),
        0.4,
        (2, 2),
    );
    let authors = add_class_clustered(
        &mut world,
        rng,
        1,
        &author_spec,
        &author_names,
        &pools,
        (scaled(280, scale), scaled(80, scale), scaled(1100, scale)),
        0.3,
        (2, 3),
    );
    use rand::Rng;
    let by_presence = ByPresence::split(&world, &authors);
    for &p in &pubs {
        let n_authors = rng.gen_range(1..=3);
        let presence = world.entities[p].presence;
        for _ in 0..n_authors {
            if let Some(a) = by_presence.pick_for(rng, presence, 0.9) {
                world.link(p, 0, a);
            }
        }
    }
    let specs = [
        RenderSpec {
            kb_name: "Rexa".into(),
            uri_prefix: "rexa:e".into(),
            attr_prefix: "http://rexa/".into(),
            classes: vec![
                ClassRender {
                    name_attr: "title".into(),
                    field_attrs: vec!["venue".into(), "abstract".into()],
                    type_assertion: Some(("type".into(), "Publication".into())),
                    attr_scatter: 3,
                    name_punctuation_prob: 0.0,
                },
                ClassRender {
                    name_attr: "fullname".into(),
                    field_attrs: vec!["affiliation".into()],
                    type_assertion: Some(("type".into(), "Person".into())),
                    attr_scatter: 2,
                    name_punctuation_prob: 0.0,
                },
            ],
            relation_attrs: vec!["author".into()],
        },
        RenderSpec {
            kb_name: "DBLP".into(),
            uri_prefix: "dblp:e".into(),
            attr_prefix: "http://dblp/".into(),
            classes: vec![
                ClassRender {
                    name_attr: "label".into(),
                    field_attrs: vec!["booktitle".into(), "note".into()],
                    type_assertion: Some(("type".into(), "Article".into())),
                    attr_scatter: 4,
                    name_punctuation_prob: 0.0,
                },
                ClassRender {
                    name_attr: "creatorName".into(),
                    field_attrs: vec!["homepage".into()],
                    type_assertion: Some(("type".into(), "Agent".into())),
                    attr_scatter: 2,
                    name_punctuation_prob: 0.0,
                },
            ],
            relation_attrs: vec!["creator".into()],
        },
    ];
    (world, specs)
}

// ----------------------------------------------------------- BBCmusic-DBpedia

fn bbc_dbpedia(rng: &mut StdRng, scale: f64) -> (World, [RenderSpec; 2]) {
    let pools = TokenPools::generate(rng, 25000, 150, 30000);
    // Artist names come from a medium pool: full name strings stay
    // (nearly) unique for H1, but individual name tokens are shared by
    // dozens of artists, so token-level baselines cannot lean on them.
    let artist_names = WordPool::generate(rng, scaled(450, scale));
    let artist_spec = ClassSpec {
        name_words: (2, 4),
        name_exact_prob: 0.75,
        name_drop_prob: 0.15,
        fields: vec![
            // biography: the DBpedia side is drowned in verbose abstract
            // noise (Table I: 81 vs 325 average tokens), and more than
            // half of the artists share almost no biography tokens at
            // all (paper: BSL recall 36%).
            FieldSpec::new((8, 15), 0.35, [0.9, 0.55], [(2, 10), (60, 120)])
                .with_hard(0.9, [0.9, 0.0])
                .with_cluster_share(0.25)
                .with_noise_common_ratio(0.3),
            // genre-ish categorical anchors: single common words.
            FieldSpec::new((1, 1), 1.0, [0.92, 0.88], [(0, 0), (0, 0)]),
            FieldSpec::new((1, 1), 1.0, [0.92, 0.88], [(0, 0), (0, 0)]),
        ],
    };
    let place_spec = ClassSpec {
        name_words: (1, 3),
        name_exact_prob: 0.85,
        name_drop_prob: 0.3,
        fields: vec![FieldSpec::new((3, 6), 0.5, [0.9, 0.7], [(0, 2), (5, 15)])],
    };
    let mut world = World {
        gt_classes: vec![0],
        ..World::default()
    };
    let artists = add_class_clustered(
        &mut world,
        rng,
        0,
        &artist_spec,
        &artist_names,
        &pools,
        (scaled(700, scale), scaled(550, scale), scaled(1800, scale)),
        0.33,
        (2, 3),
    );
    let places = add_class(
        &mut world,
        rng,
        1,
        &place_spec,
        &pools,
        scaled(550, scale),
        scaled(60, scale),
        scaled(160, scale),
    );
    use rand::Rng;
    let places_by = ByPresence::split(&world, &places);
    let artists_by = ByPresence::split(&world, &artists);
    for &a in &artists {
        let presence = world.entities[a].presence;
        // Birthplace: a place present wherever the artist is described.
        let Some(p) = places_by.pick_for(rng, presence, 0.9) else {
            continue;
        };
        world.link(a, 0, p);
        // DBpedia-side structural heterogeneity: the second KB asserts
        // birthPlace at several granularities (district, city, country),
        // so the relation is far from functional there — the structural
        // mismatch the paper blames for PARIS's collapse on this
        // dataset.
        for _ in 0..2 {
            let country = pick(rng, &places);
            if country != p {
                world.link_on_side(a, 0, country, 1);
            }
        }
        // Artist-artist associations (bands, collaborations): the
        // discriminating relational evidence H3 leans on.
        for _ in 0..rng.gen_range(1..=2) {
            if rng.gen_bool(0.85) {
                if let Some(other) = artists_by.pick_for(rng, presence, 0.9) {
                    if other != a {
                        world.link(a, 1, other);
                    }
                }
            }
        }
    }
    let specs = [
        RenderSpec {
            kb_name: "BBCmusic".into(),
            uri_prefix: "bbc:e".into(),
            attr_prefix: "http://bbc/".into(),
            classes: vec![
                ClassRender {
                    name_attr: "name".into(),
                    field_attrs: vec!["bio".into(), "genre".into(), "era".into()],
                    type_assertion: Some(("type".into(), "MusicArtist".into())),
                    attr_scatter: 1,
                    name_punctuation_prob: 0.0,
                },
                ClassRender {
                    name_attr: "placeName".into(),
                    field_attrs: vec!["comment".into()],
                    type_assertion: Some(("type".into(), "Place".into())),
                    attr_scatter: 1,
                    name_punctuation_prob: 0.0,
                },
            ],
            relation_attrs: vec!["birthPlace".into(), "associatedWith".into()],
        },
        RenderSpec {
            kb_name: "DBpedia".into(),
            uri_prefix: "dbp:e".into(),
            attr_prefix: "http://dbpedia/".into(),
            classes: vec![
                ClassRender {
                    name_attr: "label".into(),
                    field_attrs: vec!["abstract".into(), "subject".into(), "period".into()],
                    type_assertion: Some(("type".into(), "Agent".into())),
                    // The DBpedia signature: one logical attribute hides
                    // behind dozens of concrete predicate names.
                    attr_scatter: 60,
                    // ...and labels carry BTC-style formatting noise that
                    // defeats exact-string matchers (the paper's PARIS
                    // collapse) but not tokenized name keys.
                    name_punctuation_prob: 0.9,
                },
                ClassRender {
                    name_attr: "placeLabel".into(),
                    field_attrs: vec!["placeAbstract".into()],
                    type_assertion: Some(("type".into(), "Location".into())),
                    attr_scatter: 15,
                    name_punctuation_prob: 0.0,
                },
            ],
            relation_attrs: vec!["birthPlace".into(), "associatedBand".into()],
        },
    ];
    (world, specs)
}

// ------------------------------------------------------------------ YAGO-IMDb

fn yago_imdb(rng: &mut StdRng, scale: f64) -> (World, [RenderSpec; 2]) {
    let pools = TokenPools::generate(rng, 30000, 60, 20000);
    // Names as (nearly) unique *combinations* of frequent words: exact
    // full-string matching (H1) works, token-level value similarity does
    // not — the YAGO-IMDb signature that collapses BSL to single-digit
    // F1 while MinoanER stays above 90%.
    // Pools scale with the entity counts so per-word entity frequencies
    // (the statistic everything depends on) are scale-invariant.
    let movie_names = WordPool::generate(rng, scaled(500, scale));
    let person_names = WordPool::generate(rng, scaled(700, scale));
    let movie_spec = ClassSpec {
        name_words: (2, 4),
        name_exact_prob: 0.8,
        name_drop_prob: 0.35,
        fields: vec![
            // Categorical genre/decade-ish fields: single common words,
            // so they anchor BT co-occurrence without strong value
            // similarity and with low attribute discriminability (a
            // multi-word combination would itself become a fingerprint
            // that value-only baselines key on, which the real
            // YAGO-IMDb does not offer — BSL recall there: 4.87%).
            FieldSpec::new((1, 1), 1.0, [0.92, 0.92], [(0, 0), (0, 0)]),
            FieldSpec::new((1, 1), 1.0, [0.92, 0.92], [(0, 0), (0, 0)]),
            // Side-private catalog junk: very low cross-side overlap
            // (Table I: 15.6 vs 12.5 average tokens, lowest value
            // similarity of all datasets).
            // The second side never keeps a canonical junk token, so the
            // junk never produces shared evidence.
            FieldSpec::new((3, 6), 0.1, [0.35, 0.0], [(2, 4), (1, 3)]),
        ],
    };
    let person_spec = ClassSpec {
        name_words: (2, 3),
        name_exact_prob: 0.82,
        name_drop_prob: 0.35,
        fields: vec![
            // Profession/era-style categorical anchors.
            FieldSpec::new((1, 1), 1.0, [0.9, 0.9], [(0, 0), (0, 0)]),
            FieldSpec::new((1, 1), 1.0, [0.9, 0.9], [(0, 0), (0, 0)]),
        ],
    };
    let mut world = World {
        gt_classes: vec![0, 1],
        ..World::default()
    };
    let movies = add_class_clustered(
        &mut world,
        rng,
        0,
        &movie_spec,
        &movie_names,
        &pools,
        (scaled(700, scale), scaled(90, scale), scaled(140, scale)),
        0.72,
        (2, 5),
    );
    let persons = add_class_clustered(
        &mut world,
        rng,
        1,
        &person_spec,
        &person_names,
        &pools,
        (scaled(1000, scale), scaled(130, scale), scaled(180, scale)),
        0.62,
        (2, 5),
    );
    use rand::Rng;
    let persons_by = ByPresence::split(&world, &persons);
    for &m in &movies {
        let presence = world.entities[m].presence;
        for _ in 0..rng.gen_range(2..=4) {
            if let Some(p) = persons_by.pick_for(rng, presence, 0.9) {
                world.link(m, 0, p); // starring
            }
        }
        if let Some(d) = persons_by.pick_for(rng, presence, 0.9) {
            world.link(m, 1, d); // directed by
        }
    }
    let specs = [
        RenderSpec {
            kb_name: "YAGO".into(),
            uri_prefix: "yago:e".into(),
            attr_prefix: "http://yago/".into(),
            classes: vec![
                ClassRender {
                    name_attr: "label".into(),
                    field_attrs: vec!["genre".into(), "decade".into(), "wikiPage".into()],
                    type_assertion: Some(("type".into(), "wordnet_movie".into())),
                    attr_scatter: 2,
                    name_punctuation_prob: 0.0,
                },
                ClassRender {
                    name_attr: "preferredName".into(),
                    field_attrs: vec!["profession".into(), "era".into()],
                    type_assertion: Some(("type".into(), "wordnet_person".into())),
                    attr_scatter: 1,
                    name_punctuation_prob: 0.0,
                },
            ],
            relation_attrs: vec!["actedIn".into(), "directed".into()],
        },
        RenderSpec {
            kb_name: "IMDb".into(),
            uri_prefix: "imdb:e".into(),
            attr_prefix: "http://imdb/".into(),
            classes: vec![
                ClassRender {
                    name_attr: "title".into(),
                    field_attrs: vec!["category".into(), "era".into(), "technical".into()],
                    type_assertion: Some(("type".into(), "movie".into())),
                    attr_scatter: 3,
                    name_punctuation_prob: 0.0,
                },
                ClassRender {
                    name_attr: "personName".into(),
                    field_attrs: vec!["jobCategory".into(), "activeYears".into()],
                    type_assertion: Some(("type".into(), "person".into())),
                    attr_scatter: 1,
                    name_punctuation_prob: 0.0,
                },
            ],
            relation_attrs: vec!["starring".into(), "director".into()],
        },
    ];
    (world, specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_generate_nonempty_datasets() {
        for kind in DatasetKind::ALL {
            let d = kind.generate_scaled(7, 0.1);
            assert!(d.pair.first.entity_count() > 0, "{}", d.name);
            assert!(d.pair.second.entity_count() > 0, "{}", d.name);
            assert!(!d.truth.is_empty(), "{}", d.name);
            assert!(d.truth.is_partial_matching(), "{}", d.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetKind::Restaurant.generate_scaled(42, 0.2);
        let b = DatasetKind::Restaurant.generate_scaled(42, 0.2);
        assert_eq!(a.pair.first.triple_count(), b.pair.first.triple_count());
        assert_eq!(a.truth.len(), b.truth.len());
        let ta: Vec<_> = a.truth.iter().collect();
        let tb: Vec<_> = b.truth.iter().collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetKind::Restaurant.generate_scaled(1, 0.2);
        let b = DatasetKind::Restaurant.generate_scaled(2, 0.2);
        assert_ne!(
            minoan_kb::parse::to_tsv(&a.pair.first),
            minoan_kb::parse::to_tsv(&b.pair.first)
        );
    }

    #[test]
    fn size_skew_matches_the_paper_direction() {
        let d = DatasetKind::RexaDblp.generate_scaled(7, 0.2);
        assert!(d.pair.second.entity_count() > 3 * d.pair.first.entity_count());
        let r = DatasetKind::Restaurant.generate_scaled(7, 0.3);
        assert!(r.pair.second.entity_count() > 3 * r.pair.first.entity_count());
    }

    #[test]
    fn bbc_dbpedia_side_two_has_scattered_schema() {
        let d = DatasetKind::BbcDbpedia.generate_scaled(7, 0.15);
        assert!(
            d.pair.second.attr_count() > 5 * d.pair.first.attr_count(),
            "{} vs {}",
            d.pair.second.attr_count(),
            d.pair.first.attr_count()
        );
    }

    #[test]
    fn yago_imdb_has_dense_relations() {
        let d = DatasetKind::YagoImdb.generate_scaled(7, 0.15);
        let rels1 = d.pair.first.relation_edge_counts();
        let total: usize = rels1.values().sum();
        assert!(
            total >= d.pair.first.entity_count(),
            "relation edges should be dense"
        );
    }

    #[test]
    fn scaling_changes_size() {
        let small = DatasetKind::Restaurant.generate_scaled(7, 0.1);
        let large = DatasetKind::Restaurant.generate_scaled(7, 0.5);
        assert!(large.pair.second.entity_count() > 2 * small.pair.second.entity_count());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        DatasetKind::Restaurant.generate_scaled(7, 0.0);
    }
}
