//! # minoaner — schema-agnostic, non-iterative entity resolution
//!
//! A Rust implementation of **MinoanER** (Efthymiou, Papadakis,
//! Stefanidis, Christophides: *"Simplifying Entity Resolution on Web
//! Data with Schema-agnostic, Non-iterative Matching"*, ICDE 2018),
//! together with every substrate it needs: a knowledge-base model,
//! schema-agnostic blocking, similarity measures, the baselines it is
//! evaluated against, synthetic benchmark datasets and an evaluation
//! harness.
//!
//! ## Architecture
//!
//! The workspace is layered bottom-up; this crate is a facade
//! re-exporting every member:
//!
//! - [`kb`] — entity descriptions, interning, parsing, statistics, plus
//!   the shared substrate: Fx hashing, CSR row storage ([`kb::Csr`])
//!   and minimal JSON;
//! - [`text`] — tokenization, n-grams, the tokenized pair view;
//! - [`exec`] — the **executor layer**: an [`exec::Executor`] with
//!   `Sequential` and `Rayon` backends that every hot stage fans out on.
//!   The paper's matching process is *massively parallel* by design
//!   (every similarity is a function of block statistics), and the
//!   executor realizes that: blocking builds per-thread partial inverted
//!   indexes merged in part order, the similarity index shards `valueSim`
//!   accumulation by `e1 % shards`, and the matching heuristics scan
//!   candidates in parallel. Parallel runs are **bit-identical** to
//!   sequential ones — per-pair floating-point sums keep block order,
//!   partials merge in part order, and ties break by entity id;
//! - [`blocking`] — token/name blocking, Block Purging, block metrics;
//! - [`sim`] — `valueSim` (ARCS variant) and vector-space measures;
//! - [`core`] — attribute/relation importance, the CSR-backed
//!   [`core::SimilarityIndex`], heuristics H1–H4, the non-iterative
//!   pipeline with per-stage [`core::Timings`];
//! - [`baselines`] — Unique Mapping Clustering, BSL, SiGMa-like,
//!   PARIS-like;
//! - [`datagen`] — the four synthetic benchmark profiles;
//! - [`eval`] — precision/recall/F1 and report tables.
//!
//! The executor is selected per run through
//! [`core::MinoanConfig::executor`] (and `--executor` / `--threads` on
//! the CLI); the default is the parallel backend on all cores.
//!
//! ```
//! use minoaner::core::MinoanEr;
//! use minoaner::kb::{KbBuilder, KbPair};
//!
//! let mut a = KbBuilder::new("E1");
//! a.add_literal("a:1", "name", "Palace of Knossos");
//! let mut b = KbBuilder::new("E2");
//! b.add_literal("b:1", "label", "Knossos Palace");
//! let pair = KbPair::new(a.finish(), b.finish());
//! let out = MinoanEr::with_defaults().run(&pair);
//! assert_eq!(out.matching.len(), 1);
//! ```

#![warn(missing_docs)]

pub use minoan_baselines as baselines;
pub use minoan_blocking as blocking;
pub use minoan_core as core;
pub use minoan_datagen as datagen;
pub use minoan_eval as eval;
pub use minoan_exec as exec;
pub use minoan_kb as kb;
pub use minoan_sim as sim;
pub use minoan_text as text;
