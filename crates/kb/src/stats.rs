//! Structural KB statistics (the schema-side columns of Table I).

use crate::hash::FxHashSet;
use crate::json::Json;
use crate::model::{KnowledgeBase, Value};

/// Structural statistics of one KB, mirroring the per-KB rows of the
/// paper's Table I (token statistics are computed by `minoan-text`, which
/// owns tokenization).
#[derive(Debug, Clone, PartialEq)]
pub struct KbStats {
    /// KB name.
    pub name: String,
    /// Number of entity descriptions.
    pub entities: usize,
    /// Number of triples (statements).
    pub triples: usize,
    /// Number of distinct attributes (predicates).
    pub attributes: usize,
    /// Number of distinct relations (entity-valued predicates).
    pub relations: usize,
    /// Number of distinct entity types (distinct objects of type-like
    /// predicates).
    pub types: usize,
    /// Number of distinct vocabularies (predicate namespace prefixes).
    pub vocabularies: usize,
}

impl KbStats {
    /// Computes structural statistics for `kb`.
    pub fn compute(kb: &KnowledgeBase) -> Self {
        let mut types: FxHashSet<&str> = FxHashSet::default();
        let mut type_entities: FxHashSet<u32> = FxHashSet::default();
        let type_attrs: Vec<_> = kb
            .attrs()
            .filter(|a| is_type_attr(kb.attr_name(*a)))
            .collect();
        for e in kb.entities() {
            for s in kb.statements(e) {
                if type_attrs.contains(&s.attr) {
                    match &s.value {
                        Value::Literal(l) => {
                            types.insert(l);
                        }
                        Value::Entity(t) => {
                            type_entities.insert(t.0);
                        }
                    }
                }
            }
        }
        let mut vocab: FxHashSet<String> = FxHashSet::default();
        for a in kb.attrs() {
            vocab.insert(namespace_prefix(kb.attr_name(a)).to_string());
        }
        KbStats {
            name: kb.name().to_string(),
            entities: kb.entity_count(),
            triples: kb.triple_count(),
            attributes: kb.attr_count(),
            relations: kb.relation_count(),
            types: types.len() + type_entities.len(),
            vocabularies: vocab.len(),
        }
    }

    /// The statistics as a JSON object (the CLI's `stats` output).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("entities", Json::num(self.entities as f64)),
            ("triples", Json::num(self.triples as f64)),
            ("attributes", Json::num(self.attributes as f64)),
            ("relations", Json::num(self.relations as f64)),
            ("types", Json::num(self.types as f64)),
            ("vocabularies", Json::num(self.vocabularies as f64)),
        ])
    }
}

/// Whether a predicate name denotes an entity-type assertion.
///
/// Schema-agnostic heuristic: `rdf:type`-style predicates end in `type`
/// (after the namespace separator), e.g. `http://www.w3.org/1999/02/22-rdf-syntax-ns#type`,
/// `wordnet_type`, `type`.
pub fn is_type_attr(name: &str) -> bool {
    local_name(name).eq_ignore_ascii_case("type")
}

/// The local name of a URI-like identifier (text after the last `#` or `/`).
pub fn local_name(name: &str) -> &str {
    let after_hash = name.rsplit('#').next().unwrap_or(name);
    after_hash.rsplit('/').next().unwrap_or(after_hash)
}

/// The namespace prefix of a URI-like identifier (text up to and including
/// the last `#` or `/`, or the empty string for plain names).
pub fn namespace_prefix(name: &str) -> &str {
    match name.rfind(['#', '/']) {
        Some(i) => &name[..=i],
        None => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::KbBuilder;

    #[test]
    fn local_name_and_prefix() {
        assert_eq!(local_name("http://x.org/v#name"), "name");
        assert_eq!(local_name("http://x.org/v/name"), "name");
        assert_eq!(local_name("name"), "name");
        assert_eq!(namespace_prefix("http://x.org/v#name"), "http://x.org/v#");
        assert_eq!(namespace_prefix("http://x.org/v/name"), "http://x.org/v/");
        assert_eq!(namespace_prefix("name"), "");
    }

    #[test]
    fn type_attr_detection() {
        assert!(is_type_attr(
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        ));
        assert!(is_type_attr("type"));
        assert!(is_type_attr("ns/Type"));
        assert!(!is_type_attr("subtype_of"));
        assert!(!is_type_attr("name"));
    }

    #[test]
    fn stats_on_small_kb() {
        let mut b = KbBuilder::new("s");
        b.add_literal("e1", "http://v1/name", "A");
        b.add_literal("e1", "http://v1/type", "Restaurant");
        b.add_uri("e1", "http://v2/address", "e2");
        b.add_literal("e2", "http://v1/type", "Address");
        let kb = b.finish();
        let st = KbStats::compute(&kb);
        assert_eq!(st.entities, 2);
        assert_eq!(st.triples, 4);
        assert_eq!(st.attributes, 3);
        assert_eq!(st.relations, 1);
        assert_eq!(st.types, 2);
        assert_eq!(st.vocabularies, 2);
    }

    #[test]
    fn entity_valued_types_are_counted() {
        let mut b = KbBuilder::new("s");
        b.add_uri("e1", "rdf:type-ish/type", "class:Movie");
        b.declare_entity("class:Movie");
        b.add_uri("e2", "rdf:type-ish/type", "class:Movie");
        let kb = b.finish();
        let st = KbStats::compute(&kb);
        assert_eq!(st.types, 1);
    }

    #[test]
    fn empty_kb_stats_are_zero() {
        let kb = KbBuilder::new("empty").finish();
        let st = KbStats::compute(&kb);
        assert_eq!(st.entities, 0);
        assert_eq!(st.triples, 0);
        assert_eq!(st.types, 0);
        assert_eq!(st.vocabularies, 0);
    }
}
