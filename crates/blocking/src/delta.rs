//! Mutable token-block membership for incremental delta resolution.
//!
//! [`crate::token_blocking`] builds an immutable [`BlockCollection`]
//! from scratch; a delta session instead keeps the raw `token →
//! entities` membership lists **mutable** so a dirty entity's tokens
//! can be spliced in O(its token count · log block size): remove the
//! entity from the tokens it lost, insert it into the tokens it gained,
//! keep every list sorted by entity id (the order a from-scratch
//! inversion produces). Materializing the purged collection in a given
//! token order then yields exactly what `token_blocking` + purging
//! would build over the mutated corpus.

use minoan_kb::{EntityId, KbSide, TokenId};
use minoan_text::TokenizedPair;

use crate::block::{Block, BlockCollection, BlockKind};

/// Mutable per-token membership lists for both sides of a pair.
#[derive(Debug, Clone, Default)]
pub struct MutableBlocks {
    /// `members[side][token]`, each list sorted ascending by entity id.
    members: [Vec<Vec<EntityId>>; 2],
}

impl MutableBlocks {
    /// Inverts a tokenized pair into mutable membership lists — the
    /// O(corpus) part, paid once when a delta session opens.
    pub fn from_tokenized(tokens: &TokenizedPair) -> Self {
        let n_tokens = tokens.dict().len();
        let mut members: [Vec<Vec<EntityId>>; 2] =
            [vec![Vec::new(); n_tokens], vec![Vec::new(); n_tokens]];
        for side in [KbSide::First, KbSide::Second] {
            let lists = &mut members[side.index()];
            for e in 0..tokens.entity_count(side) as u32 {
                let e = EntityId(e);
                // Entities are visited in ascending id order, so plain
                // appends leave every list sorted.
                for &t in tokens.tokens(side, e) {
                    lists[t.index()].push(e);
                }
            }
        }
        Self { members }
    }

    /// Number of tokens tracked.
    pub fn token_count(&self) -> usize {
        self.members[0].len()
    }

    /// Grows the table to cover token `t` (both sides, empty lists).
    pub fn ensure_token(&mut self, t: TokenId) {
        for side in &mut self.members {
            if side.len() <= t.index() {
                side.resize(t.index() + 1, Vec::new());
            }
        }
    }

    /// Inserts `e` into token `t` on `side`, keeping the list sorted.
    /// Returns `false` if it was already present.
    pub fn insert(&mut self, side: KbSide, t: TokenId, e: EntityId) -> bool {
        let list = &mut self.members[side.index()][t.index()];
        match list.binary_search(&e) {
            Ok(_) => false,
            Err(pos) => {
                list.insert(pos, e);
                true
            }
        }
    }

    /// Removes `e` from token `t` on `side`. Returns `false` if absent.
    pub fn remove(&mut self, side: KbSide, t: TokenId, e: EntityId) -> bool {
        let list = &mut self.members[side.index()][t.index()];
        match list.binary_search(&e) {
            Ok(pos) => {
                list.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The sorted member list of token `t` on `side`.
    pub fn members(&self, side: KbSide, t: TokenId) -> &[EntityId] {
        &self.members[side.index()][t.index()]
    }

    /// Whether token `t` has members on both sides (defines a block).
    pub fn is_both_sided(&self, t: TokenId) -> bool {
        !self.members[0][t.index()].is_empty() && !self.members[1][t.index()].is_empty()
    }

    /// The `(comparisons, assignments)` cardinality of token `t`'s
    /// block, or `None` if the token is not both-sided.
    pub fn card(&self, t: TokenId) -> Option<(u64, u64)> {
        let f = self.members[0][t.index()].len() as u64;
        let s = self.members[1][t.index()].len() as u64;
        (f > 0 && s > 0).then_some((f * s, f + s))
    }

    /// Cardinalities of every both-sided token, in token-id order (the
    /// purging criterion only consumes the multiset).
    pub fn cards(&self) -> Vec<(u64, u64)> {
        (0..self.token_count() as u32)
            .filter_map(|t| self.card(TokenId(t)))
            .collect()
    }

    /// Materializes the block collection: both-sided tokens within the
    /// comparison budget, emitted in the order of `token_order` (the
    /// delta session passes its lexicographically sorted token list,
    /// matching the canonical order of
    /// [`crate::token_blocking_with`]). `token_order` must cover every
    /// tracked token.
    pub fn materialize(
        &self,
        kind: BlockKind,
        token_order: &[TokenId],
        max_comparisons: Option<u64>,
        n_first: usize,
        n_second: usize,
    ) -> BlockCollection {
        debug_assert_eq!(token_order.len(), self.token_count());
        let mut blocks = Vec::new();
        for &t in token_order {
            let Some((comparisons, _)) = self.card(t) else {
                continue;
            };
            if max_comparisons.is_some_and(|max| comparisons > max) {
                continue;
            }
            blocks.push(Block {
                key: t.0,
                firsts: self.members[0][t.index()].clone(),
                seconds: self.members[1][t.index()].clone(),
            });
        }
        BlockCollection::new(kind, blocks, n_first, n_second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::purging::{threshold_from_cards, DEFAULT_SMOOTHING};
    use crate::token_blocking::token_blocking;
    use minoan_kb::{KbBuilder, KbPair};
    use minoan_text::Tokenizer;

    fn pair() -> KbPair {
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:1", "name", "kri kri taverna");
        a.add_literal("a:2", "name", "labyrinth grill");
        a.add_literal("a:3", "name", "palace");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:1", "title", "taverna kri");
        b.add_literal("b:2", "title", "knossos palace hotel");
        KbPair::new(a.finish(), b.finish())
    }

    fn lex_order(tokens: &TokenizedPair) -> Vec<TokenId> {
        let mut order: Vec<TokenId> = tokens.dict().tokens().collect();
        order.sort_unstable_by(|&a, &b| tokens.dict().token(a).cmp(tokens.dict().token(b)));
        order
    }

    #[test]
    fn materialize_matches_token_blocking() {
        let p = pair();
        let tokens = TokenizedPair::build(&p, &Tokenizer::default());
        let mb = MutableBlocks::from_tokenized(&tokens);
        let got = mb.materialize(
            BlockKind::Token,
            &lex_order(&tokens),
            None,
            tokens.entity_count(KbSide::First),
            tokens.entity_count(KbSide::Second),
        );
        let want = token_blocking(&tokens);
        assert_eq!(got.blocks(), want.blocks());
    }

    #[test]
    fn insert_remove_keeps_lists_sorted() {
        let p = pair();
        let tokens = TokenizedPair::build(&p, &Tokenizer::default());
        let mut mb = MutableBlocks::from_tokenized(&tokens);
        let kri = tokens.dict().token_id("kri").unwrap();
        assert!(mb.insert(KbSide::First, kri, EntityId(2)));
        assert!(!mb.insert(KbSide::First, kri, EntityId(2)));
        assert_eq!(mb.members(KbSide::First, kri), &[EntityId(0), EntityId(2)]);
        assert!(mb.remove(KbSide::First, kri, EntityId(0)));
        assert!(!mb.remove(KbSide::First, kri, EntityId(0)));
        assert_eq!(mb.members(KbSide::First, kri), &[EntityId(2)]);
    }

    #[test]
    fn cards_match_threshold_inputs() {
        let p = pair();
        let tokens = TokenizedPair::build(&p, &Tokenizer::default());
        let mb = MutableBlocks::from_tokenized(&tokens);
        let bt = token_blocking(&tokens);
        let mut from_blocks: Vec<(u64, u64)> = bt
            .blocks()
            .iter()
            .map(|b| (b.comparisons(), b.assignments()))
            .collect();
        let mut from_mb = mb.cards();
        from_blocks.sort_unstable();
        from_mb.sort_unstable();
        assert_eq!(from_mb, from_blocks);
        assert_eq!(
            threshold_from_cards(from_mb, DEFAULT_SMOOTHING),
            crate::purging::purging_threshold(&bt, DEFAULT_SMOOTHING)
        );
    }

    #[test]
    fn single_sided_tokens_produce_no_block() {
        let p = pair();
        let tokens = TokenizedPair::build(&p, &Tokenizer::default());
        let mut mb = MutableBlocks::from_tokenized(&tokens);
        let labyrinth = tokens.dict().token_id("labyrinth").unwrap();
        assert!(!mb.is_both_sided(labyrinth));
        assert_eq!(mb.card(labyrinth), None);
        // Giving it a second-side member creates the block.
        mb.insert(KbSide::Second, labyrinth, EntityId(0));
        assert_eq!(mb.card(labyrinth), Some((1, 2)));
    }

    #[test]
    fn ensure_token_grows_the_table() {
        let mut mb = MutableBlocks::default();
        assert_eq!(mb.token_count(), 0);
        mb.ensure_token(TokenId(3));
        assert_eq!(mb.token_count(), 4);
        mb.insert(KbSide::First, TokenId(3), EntityId(1));
        mb.insert(KbSide::Second, TokenId(3), EntityId(0));
        assert!(mb.is_both_sided(TokenId(3)));
    }

    #[test]
    fn materialize_applies_comparison_budget() {
        let p = pair();
        let tokens = TokenizedPair::build(&p, &Tokenizer::default());
        let mut mb = MutableBlocks::from_tokenized(&tokens);
        let kri = tokens.dict().token_id("kri").unwrap();
        // Inflate kri's block so it exceeds a 2-comparison budget.
        mb.insert(KbSide::First, kri, EntityId(1));
        mb.insert(KbSide::First, kri, EntityId(2));
        let got = mb.materialize(BlockKind::Token, &lex_order(&tokens), Some(2), 3, 2);
        assert!(got.blocks().iter().all(|b| b.key != kri.0));
    }
}
