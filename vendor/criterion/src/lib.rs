//! Vendored subset of the `criterion` crate API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion the benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is
//! plain wall-clock sampling (warm-up, then a fixed number of timed
//! sample batches) — no outlier analysis or HTML reports. Replacing this
//! shim with the real crate is a manifest change only.
//!
//! One extension over the real API: [`Criterion::take_results`] exposes
//! the measured statistics so benches can emit machine-readable
//! trajectory files (e.g. `BENCH_pipeline.json`).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` or `group/function/param`).
    pub id: String,
    /// Minimum observed per-iteration time, in nanoseconds.
    pub min_ns: f64,
    /// Median per-iteration time, in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time, in nanoseconds.
    pub mean_ns: f64,
    /// Maximum observed per-iteration time, in nanoseconds.
    pub max_ns: f64,
    /// Total iterations executed across all samples.
    pub iterations: u64,
}

/// The benchmark driver.
pub struct Criterion {
    results: Vec<BenchResult>,
    sample_size: usize,
    sample_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            results: Vec::new(),
            sample_size: 12,
            sample_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(30),
        }
    }
}

impl Criterion {
    /// Accepts and ignores harness CLI arguments (`--bench`, filters);
    /// present for drop-in compatibility with the real crate.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(name.to_string(), sample_size, f);
        self
    }

    /// Drains the results measured so far (shim extension).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_time: self.sample_time,
            warm_up_time: self.warm_up_time,
            sample_size,
            samples_ns: Vec::new(),
            iterations: 0,
        };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        if samples.is_empty() {
            samples.push(0.0);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let result = BenchResult {
            id: id.clone(),
            min_ns: samples[0],
            median_ns: samples[samples.len() / 2],
            mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
            max_ns: samples[samples.len() - 1],
            iterations: bencher.iterations,
        };
        println!(
            "{:<50} time: [{} {} {}]",
            result.id,
            fmt_ns(result.min_ns),
            fmt_ns(result.median_ns),
            fmt_ns(result.max_ns)
        );
        self.results.push(result);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(id, n, f);
        self
    }

    /// Benchmarks `f` with `input` under the given id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, n, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A function + parameter benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id rendered as the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Times closures on behalf of one benchmark.
pub struct Bencher {
    sample_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iterations: u64,
}

impl Bencher {
    /// Measures `f`: warm-up, then `sample_size` timed batches sized so
    /// each batch runs for roughly the configured sample time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((self.sample_time.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / batch as f64);
            self.iterations += batch;
        }
    }
}

/// Declares a benchmark entry function running the listed targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from one or more `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            sample_size: 3,
            sample_time: Duration::from_micros(200),
            warm_up_time: Duration::from_micros(200),
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "g/sum");
        assert_eq!(results[1].id, "g/param/7");
        assert!(results[0].median_ns > 0.0);
        assert!(results[0].iterations > 0);
        assert!(c.take_results().is_empty());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
