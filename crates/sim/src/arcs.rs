//! The paper's value similarity (an ARCS variant).
//!
//! ```text
//! valueSim(ei, ej) = Σ_{t ∈ tokens(ei) ∩ tokens(ej)}  1 / log2(EF_E1(t) · EF_E2(t) + 1)
//! ```
//!
//! where `EF_E(t)` is the *entity frequency* of token `t` in KB `E`.
//! Compared to the original ARCS it drops schema information entirely and
//! emphasizes the *number* of common tokens over their frequency: a token
//! unique to one entity on each side (`EF=1` both sides) contributes
//! exactly `1/log2(2) = 1`, so `valueSim ≥ 1` ("strongly similar", the H2
//! trigger) means the pair shares a mutually-unique token or several
//! infrequent ones.

use minoan_kb::{EntityId, KbSide, TokenId};
use minoan_text::TokenizedPair;

/// The weight of a shared token with the given per-side entity frequencies.
#[inline]
pub fn token_weight(ef1: u32, ef2: u32) -> f64 {
    1.0 / (ef1 as f64 * ef2 as f64 + 1.0).log2()
}

/// `valueSim` between `e1 ∈ E1` and `e2 ∈ E2` over the tokenized pair.
///
/// Token sets are sorted, so the intersection is a linear merge.
pub fn value_sim(tokens: &TokenizedPair, e1: EntityId, e2: EntityId) -> f64 {
    value_sim_slices(
        tokens,
        tokens.tokens(KbSide::First, e1),
        tokens.tokens(KbSide::Second, e2),
    )
}

/// `valueSim` over pre-fetched sorted token slices (first-side slice,
/// second-side slice). Exposed for callers that iterate blocks and
/// already hold the slices.
pub fn value_sim_slices(tokens: &TokenizedPair, a: &[TokenId], b: &[TokenId]) -> f64 {
    let dict = tokens.dict();
    let mut i = 0;
    let mut j = 0;
    let mut sum = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let t = a[i];
                sum += token_weight(dict.ef(KbSide::First, t), dict.ef(KbSide::Second, t));
                i += 1;
                j += 1;
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_kb::{KbBuilder, KbPair};
    use minoan_text::Tokenizer;

    fn pair_of(lits1: &[&str], lits2: &[&str]) -> TokenizedPair {
        let mut a = KbBuilder::new("E1");
        for (i, l) in lits1.iter().enumerate() {
            a.add_literal(&format!("a:{i}"), "v", l);
        }
        let mut b = KbBuilder::new("E2");
        for (i, l) in lits2.iter().enumerate() {
            b.add_literal(&format!("b:{i}"), "v", l);
        }
        TokenizedPair::build(&KbPair::new(a.finish(), b.finish()), &Tokenizer::default())
    }

    #[test]
    fn mutually_unique_token_weighs_one() {
        let t = pair_of(&["knossos"], &["knossos"]);
        let v = value_sim(&t, EntityId(0), EntityId(0));
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weight_formula_matches_definition() {
        assert!((token_weight(1, 1) - 1.0).abs() < 1e-12);
        assert!((token_weight(2, 3) - 1.0 / (7.0f64).log2()).abs() < 1e-12);
        assert!(token_weight(1000, 1000) < 0.06);
    }

    #[test]
    fn frequent_tokens_contribute_less() {
        // "heraklion" appears in 3 entities on each side, "kri" in one.
        let t = pair_of(
            &["kri heraklion", "heraklion", "heraklion"],
            &["kri heraklion", "heraklion", "heraklion"],
        );
        let v_rare_plus_freq = value_sim(&t, EntityId(0), EntityId(0));
        let v_freq_only = value_sim(&t, EntityId(1), EntityId(1));
        assert!(v_rare_plus_freq > 1.0);
        assert!(v_freq_only < 0.5);
        let expected_freq = token_weight(3, 3);
        assert!((v_freq_only - expected_freq).abs() < 1e-12);
    }

    #[test]
    fn no_common_tokens_is_zero() {
        let t = pair_of(&["alpha beta"], &["gamma delta"]);
        assert_eq!(value_sim(&t, EntityId(0), EntityId(0)), 0.0);
    }

    #[test]
    fn more_common_tokens_increase_similarity() {
        let t = pair_of(&["a b c", "a"], &["a b c", "a"]);
        let full = value_sim(&t, EntityId(0), EntityId(0));
        let partial = value_sim(&t, EntityId(1), EntityId(0));
        assert!(full > partial);
    }

    #[test]
    fn sim_is_symmetric_in_token_content() {
        // valueSim(e1,e2) uses EF of each side; swapping entities with the
        // same token sets across sides gives the same value.
        let t = pair_of(&["x y z"], &["x y z"]);
        let v = value_sim(&t, EntityId(0), EntityId(0));
        let t2 = pair_of(&["z y x"], &["y z x"]);
        let v2 = value_sim(&t2, EntityId(0), EntityId(0));
        assert!((v - v2).abs() < 1e-12);
    }
}
