//! The queue-fronting request layer shared by the protocol front-ends.
//!
//! Both intake protocols — the line-JSON socket ([`crate::daemon`]) and
//! HTTP/1.1 ([`crate::http`]) — expose the same five operations over
//! the same live [`JobQueue`]: submit, status, cancel, wait, shutdown.
//! This module is the one implementation of those operations, returning
//! protocol-neutral JSON bodies and domain errors; each front-end only
//! adds its own framing (an `"ok"` envelope on the socket, status codes
//! and headers over HTTP). Response shapes therefore cannot drift
//! between protocols, and a job submitted over either one goes through
//! the identical parse → validate → admit path.

use minoan_kb::Json;

use crate::manifest::JobSpec;
use crate::report::JobStatus;
use crate::scheduler::{CancelToken, JobId, JobQueue, JobSnapshot, SubmitError};

/// How a shutdown request treats jobs still in the queue: `drain` lets
/// queued jobs run to completion, `cancel` flips queued jobs to
/// `Cancelled` and sets the tokens of running ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShutdownMode {
    /// Queued jobs still run; the server exits once the queue drains.
    Drain,
    /// Queued jobs flip to `Cancelled`; running jobs unwind at their
    /// next cooperative checkpoint.
    Cancel,
}

impl ShutdownMode {
    /// Parses the wire spelling (`None` defaults to drain).
    pub(crate) fn parse(label: Option<&str>) -> Result<ShutdownMode, String> {
        match label {
            None | Some("drain") => Ok(ShutdownMode::Drain),
            Some("cancel") => Ok(ShutdownMode::Cancel),
            Some(other) => Err(format!("unknown shutdown mode {other:?}")),
        }
    }
}

/// Why [`submit_job`] refused a job, with enough structure for each
/// front-end to pick its own framing (HTTP status code and
/// `Retry-After`, line-JSON `"retryable"` flag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SubmitRejection {
    /// Malformed or invalid job spec: the client's fault, never
    /// retryable as-is.
    Invalid(String),
    /// The queue is closed (shutdown in progress): not retryable.
    Closed,
    /// Overload shed: retryable after backing off.
    Overloaded(String),
}

impl SubmitRejection {
    /// Whether resubmitting the identical request later can succeed.
    pub(crate) fn retryable(&self) -> bool {
        matches!(self, SubmitRejection::Overloaded(_))
    }
}

impl std::fmt::Display for SubmitRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitRejection::Invalid(e) => f.write_str(e),
            SubmitRejection::Closed => SubmitError::Closed.fmt(f),
            SubmitRejection::Overloaded(detail) => write!(f, "overloaded: {detail}"),
        }
    }
}

/// Parses, validates and submits one job given in the manifest job
/// schema; returns the new id and the job's name.
pub(crate) fn submit_job(queue: &JobQueue, job: &Json) -> Result<(JobId, String), SubmitRejection> {
    let spec = JobSpec::from_json(job)
        .and_then(|s| s.validate().map(|()| s))
        .map_err(|e| SubmitRejection::Invalid(format!("bad job: {e}")))?;
    let name = spec.name.clone();
    let id = queue.submit(spec).map_err(|e| match e {
        SubmitError::Closed => SubmitRejection::Closed,
        SubmitError::Overloaded(detail) => SubmitRejection::Overloaded(detail),
    })?;
    Ok((id, name))
}

/// One queue entry as the JSON object both protocols list: id, name,
/// phase, and — exactly when terminal — status (plus the error message
/// for failures).
pub(crate) fn snapshot_json(snap: &JobSnapshot) -> Json {
    let mut fields = vec![
        ("id".to_string(), Json::num(snap.id as f64)),
        ("name".to_string(), Json::str(&snap.name)),
        ("phase".to_string(), Json::str(snap.phase.label())),
    ];
    if let Some(status) = &snap.status {
        fields.push(("status".to_string(), Json::str(status.label())));
        if let JobStatus::Failed(e) = status {
            fields.push(("error".to_string(), Json::str(e)));
        }
    }
    Json::Obj(fields)
}

/// The common status body: accepting flag, phase counts, live queue
/// telemetry ([`JobQueue::stats`]) and the job list, optionally
/// filtered to one id (an unknown filter id is an error).
pub(crate) fn status_json(
    queue: &JobQueue,
    accepting: bool,
    filter: Option<JobId>,
) -> Result<Json, String> {
    // One lock acquisition for both views: counts taken separately
    // from the job list could contradict it when a job finishes
    // between the two reads.
    let (snapshot, stats) = queue.snapshot_and_stats();
    if let Some(id) = filter {
        if id >= snapshot.len() {
            return Err(format!("unknown job id {id}"));
        }
    }
    let jobs: Vec<Json> = snapshot
        .iter()
        .filter(|s| filter.is_none_or(|id| s.id == id))
        .map(snapshot_json)
        .collect();
    Ok(Json::obj([
        ("accepting", Json::Bool(accepting)),
        ("queued", Json::num(stats.queued as f64)),
        ("running", Json::num(stats.running as f64)),
        ("done", Json::num(stats.done() as f64)),
        ("telemetry", stats.to_json()),
        ("jobs", Json::Arr(jobs)),
    ]))
}

/// Blocks until job `id` is terminal, then returns the body shared by
/// the socket's `wait` op and HTTP's `?wait=true`: id, the raw
/// deterministic fingerprint, and the full report. `None` for an
/// unknown id.
pub(crate) fn wait_json(queue: &JobQueue, id: JobId) -> Option<Json> {
    let report = queue.wait(id)?;
    Some(Json::obj([
        ("id", Json::num(id as f64)),
        ("fingerprint", Json::str(report.fingerprint())),
        ("report", report.to_json(true)),
    ]))
}

/// One job's current state: the snapshot fields, plus the fingerprint
/// and full report once the job is terminal. With `wait`, blocks until
/// terminal first. `None` for an unknown id.
pub(crate) fn job_json(queue: &JobQueue, id: JobId, wait: bool) -> Option<Json> {
    // At most one report clone: the blocking wait's result is reused
    // for the response instead of being fetched a second time.
    let waited = if wait { Some(queue.wait(id)?) } else { None };
    let snap = queue.job_snapshot(id)?;
    let body = snapshot_json(&snap);
    if snap.status.is_none() {
        return Some(body);
    }
    let report = match waited {
        Some(report) => report,
        // Terminal, so this wait() returns immediately.
        None => queue.wait(id)?,
    };
    let Json::Obj(mut fields) = body else {
        unreachable!("snapshot_json builds an object");
    };
    fields.push(("fingerprint".into(), Json::str(report.fingerprint())));
    fields.push(("report".into(), report.to_json(true)));
    Some(Json::Obj(fields))
}

/// Executes a shutdown. The queue is closed *here*, synchronously with
/// the request, not merely when an accept loop notices the flag: a
/// submit racing that window on another connection would otherwise be
/// admitted after a cancel-mode sweep and run to completion. The
/// shared `shutdown` flag then stops every accept loop and connection
/// handler.
pub(crate) fn shutdown(queue: &JobQueue, flag: &CancelToken, mode: ShutdownMode) {
    queue.close();
    if mode == ShutdownMode::Cancel {
        queue.cancel_all();
    }
    flag.cancel();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::JobInput;
    use minoan_datagen::DatasetKind;

    fn queue_with_one_queued_job() -> (JobQueue, JobId) {
        let queue = JobQueue::new(1, 1, 0);
        let id = queue
            .submit(JobSpec {
                name: "j".into(),
                input: JobInput::Synthetic {
                    kind: DatasetKind::Restaurant,
                    seed: 1,
                    scale: 0.05,
                },
                truth: None,
                theta: None,
                candidates_k: None,
                purge_blocks: None,
                timeout_ms: None,
                max_retries: None,
            })
            .unwrap();
        (queue, id)
    }

    #[test]
    fn shutdown_mode_parses_wire_labels() {
        assert_eq!(ShutdownMode::parse(None), Ok(ShutdownMode::Drain));
        assert_eq!(ShutdownMode::parse(Some("drain")), Ok(ShutdownMode::Drain));
        assert_eq!(
            ShutdownMode::parse(Some("cancel")),
            Ok(ShutdownMode::Cancel)
        );
        assert!(ShutdownMode::parse(Some("explode"))
            .unwrap_err()
            .contains("unknown shutdown mode"));
    }

    #[test]
    fn status_body_carries_counts_and_telemetry() {
        let (queue, id) = queue_with_one_queued_job();
        let body = status_json(&queue, true, None).unwrap();
        assert_eq!(body.get("accepting"), Some(&Json::Bool(true)));
        assert_eq!(body.get("queued").unwrap().as_usize(), Some(1));
        assert_eq!(body.get("done").unwrap().as_usize(), Some(0));
        let telemetry = body.get("telemetry").expect("telemetry object");
        assert_eq!(telemetry.get("queued").unwrap().as_usize(), Some(1));
        assert!(telemetry.get("stage_ms").is_some());
        assert!(status_json(&queue, true, Some(id)).is_ok());
        let err = status_json(&queue, true, Some(7)).unwrap_err();
        assert!(err.contains("unknown job id"), "{err}");
    }

    #[test]
    fn job_body_grows_a_report_once_terminal() {
        let (queue, id) = queue_with_one_queued_job();
        let body = job_json(&queue, id, false).unwrap();
        assert_eq!(body.get("phase").unwrap().as_str(), Some("queued"));
        assert!(body.get("report").is_none(), "no report before terminal");
        queue.cancel(id);
        let body = job_json(&queue, id, false).unwrap();
        assert_eq!(body.get("status").unwrap().as_str(), Some("cancelled"));
        assert!(body.get("report").is_some());
        assert!(body.get("fingerprint").is_some());
        assert!(job_json(&queue, 9, false).is_none(), "unknown id");
    }

    #[test]
    fn cancel_mode_shutdown_flips_queued_jobs() {
        let (queue, id) = queue_with_one_queued_job();
        let flag = CancelToken::new();
        shutdown(&queue, &flag, ShutdownMode::Cancel);
        assert!(flag.is_cancelled());
        let report = queue.wait(id).unwrap();
        assert_eq!(report.status, JobStatus::Cancelled);
        let job = Json::parse(r#"{"name":"late","dataset":"restaurant","scale":0.05}"#).unwrap();
        let err = submit_job(&queue, &job).unwrap_err();
        assert_eq!(err, SubmitRejection::Closed);
        assert!(!err.retryable());
        assert!(err.to_string().contains("closed"), "{err}");
    }
}
