//! Cross-crate integration tests: the full pipeline over generated
//! datasets, the paper's qualitative claims at test scale, and the
//! interplay of blocking, similarity and matching.

use minoaner::baselines::{run_paris, run_sigma, ParisConfig, SigmaConfig};
use minoaner::blocking::{block_metrics, unique_name_pairs};
use minoaner::core::{build_blocks, MinoanConfig, MinoanEr};
use minoaner::datagen::DatasetKind;
use minoaner::eval::MatchQuality;
use minoaner::kb::KbStats;
use minoaner::text::{TokenizedPair, Tokenizer};

const SEED: u64 = 20180416;
const SCALE: f64 = 0.15;

#[test]
fn minoaner_resolves_every_benchmark_profile_decently() {
    for kind in DatasetKind::ALL {
        let d = kind.generate_scaled(SEED, SCALE);
        let out = MinoanEr::with_defaults().run(&d.pair);
        let q = MatchQuality::evaluate(&out.matching, &d.truth);
        assert!(
            q.f1() > 0.6,
            "{}: F1 {:.3} too low (P {:.3} R {:.3})",
            d.name,
            q.f1(),
            q.precision(),
            q.recall()
        );
    }
}

#[test]
fn restaurant_is_solved_perfectly() {
    let d = DatasetKind::Restaurant.generate_scaled(SEED, 0.5);
    let out = MinoanEr::with_defaults().run(&d.pair);
    let q = MatchQuality::evaluate(&out.matching, &d.truth);
    assert!(q.f1() > 0.99, "F1 {:.3}", q.f1());
}

#[test]
fn blocking_recall_is_high_and_comparisons_are_bounded() {
    for kind in DatasetKind::ALL {
        let d = kind.generate_scaled(SEED, SCALE);
        let art = build_blocks(&d.pair, &MinoanConfig::default());
        let m = block_metrics(&[&art.name_blocks, &art.token_blocks], &d.truth);
        assert!(
            m.recall() > 0.97,
            "{}: block recall {:.3}",
            d.name,
            m.recall()
        );
        let total = art.name_blocks.total_comparisons() + art.token_blocks.total_comparisons();
        assert!(
            (total as f64) < d.pair.cartesian_comparisons() as f64,
            "{}: blocking must beat brute force",
            d.name
        );
    }
}

#[test]
fn purging_preserves_almost_all_block_recall() {
    let d = DatasetKind::RexaDblp.generate_scaled(SEED, SCALE);
    let unpurged = build_blocks(
        &d.pair,
        &MinoanConfig {
            purge_blocks: false,
            ..Default::default()
        },
    );
    let purged = build_blocks(&d.pair, &MinoanConfig::default());
    let r_un = block_metrics(&[&unpurged.token_blocks], &d.truth).recall();
    let r_pu = block_metrics(&[&purged.token_blocks], &d.truth).recall();
    assert!(
        r_un - r_pu < 0.02,
        "purging lost too much recall: {r_un:.3} -> {r_pu:.3}"
    );
    assert!(purged.token_blocks.total_comparisons() <= unpurged.token_blocks.total_comparisons());
}

#[test]
fn heuristics_decompose_additively() {
    let d = DatasetKind::BbcDbpedia.generate_scaled(SEED, SCALE);
    let out = MinoanEr::with_defaults().run(&d.pair);
    let r = &out.report;
    assert_eq!(
        out.matching.len() + r.h4_removed,
        r.h1_matches + r.h2_matches + r.h3_matches,
        "H1+H2+H3 minus H4 removals must equal the final matching"
    );
}

#[test]
fn name_matches_survive_formatting_differences() {
    // H1 keys on the token sequence, so punctuation-decorated labels
    // (DBpedia style) still match.
    let d = DatasetKind::BbcDbpedia.generate_scaled(SEED, SCALE);
    let art = build_blocks(&d.pair, &MinoanConfig::default());
    let h1 = unique_name_pairs(&art.name_blocks);
    let correct = h1.iter().filter(|&&(a, b)| d.truth.contains(a, b)).count();
    assert!(
        correct * 10 >= h1.len() * 7,
        "H1 precision collapsed: {correct}/{}",
        h1.len()
    );
    assert!(correct > 0, "H1 found nothing despite exact names");
}

#[test]
fn sigma_and_paris_run_end_to_end() {
    let d = DatasetKind::Restaurant.generate_scaled(SEED, 0.3);
    let art = build_blocks(&d.pair, &MinoanConfig::default());
    let tokens = TokenizedPair::build(&d.pair, &Tokenizer::default());
    let seeds = unique_name_pairs(&art.name_blocks);
    let sigma = run_sigma(
        &d.pair,
        &tokens,
        &art.token_blocks,
        &seeds,
        SigmaConfig::default(),
    );
    assert!(MatchQuality::evaluate(&sigma, &d.truth).f1() > 0.9);
    let paris = run_paris(&d.pair, ParisConfig::default());
    assert!(MatchQuality::evaluate(&paris, &d.truth).f1() > 0.9);
    assert!(sigma.is_partial_matching());
    assert!(paris.is_partial_matching());
}

#[test]
fn dataset_statistics_have_the_papers_signature() {
    let bbc = DatasetKind::BbcDbpedia.generate_scaled(SEED, SCALE);
    let s1 = KbStats::compute(&bbc.pair.first);
    let s2 = KbStats::compute(&bbc.pair.second);
    assert!(
        s2.attributes > 5 * s1.attributes,
        "DBpedia schema must be scattered"
    );
    let tokens = TokenizedPair::build(&bbc.pair, &Tokenizer::default());
    assert!(
        tokens.avg_tokens(minoaner::kb::KbSide::Second)
            > 1.5 * tokens.avg_tokens(minoaner::kb::KbSide::First)
    );
}

#[test]
fn matching_is_deterministic_across_runs() {
    let d = DatasetKind::YagoImdb.generate_scaled(SEED, SCALE);
    let a = MinoanEr::with_defaults().run(&d.pair);
    let b = MinoanEr::with_defaults().run(&d.pair);
    let pa: Vec<_> = a.matching.iter().collect();
    let pb: Vec<_> = b.matching.iter().collect();
    assert_eq!(pa, pb);
}

#[test]
fn theta_extremes_are_worse_than_default_on_relational_data() {
    let d = DatasetKind::YagoImdb.generate_scaled(SEED, SCALE);
    let default = MinoanEr::with_defaults().run(&d.pair);
    let f_default = MatchQuality::evaluate(&default.matching, &d.truth).f1();
    let values_only = MinoanEr::new(MinoanConfig {
        theta: 0.99,
        ..Default::default()
    })
    .unwrap()
    .run(&d.pair);
    let f_values = MatchQuality::evaluate(&values_only.matching, &d.truth).f1();
    assert!(
        f_default >= f_values,
        "neighbor evidence must help on YAGO-IMDb: {f_default:.3} vs values-only {f_values:.3}"
    );
}
