//! A dependency-free HTTP/1.1 client for the `minoaner serve
//! --listen-http` front-end.
//!
//! ```text
//! cargo run --release --example http_client -- <host:port> [--token T] submit '<job json>'
//! cargo run --release --example http_client -- <host:port> [--token T] jobs
//! cargo run --release --example http_client -- <host:port> [--token T] get <id> [--wait]
//! cargo run --release --example http_client -- <host:port> [--token T] cancel <id>
//! cargo run --release --example http_client -- <host:port> [--token T] index-build '<job json>' [--wait]
//! cargo run --release --example http_client -- <host:port> [--token T] indexes
//! cargo run --release --example http_client -- <host:port> [--token T] index-get <name>
//! cargo run --release --example http_client -- <host:port> [--token T] index-delete <name>
//! cargo run --release --example http_client -- <host:port> [--token T] index-match <name> <iri> [--k N]
//! cargo run --release --example http_client -- <host:port> [--token T] metrics
//! cargo run --release --example http_client -- <host:port> [--token T] trace <id>
//! cargo run --release --example http_client -- <host:port> [--token T] events [--level L] [--job N]
//! cargo run --release --example http_client -- <host:port> [--token T] shutdown [drain|cancel]
//! cargo run --release --example http_client -- <host:port> [--token T] smoke
//! ```
//!
//! Each mode performs one request and prints the response body; see
//! `minoan_serve::http` for the endpoint table, auth and limits.
//! `submit` and `index-build` take the manifest job schema, e.g.
//! `'{"name":"r","dataset":"restaurant","scale":0.1}'`. With `--token`
//! every request carries `Authorization: Bearer <token>`. The
//! `index-*` verbs drive the resource-oriented `/v1/indexes` API
//! (needs a server started with `--index-dir`); `index-match` answers
//! from the persisted artifact without re-running the pipeline.
//!
//! On any unexpected status the client prints the server's unified
//! error object — `{"error":{"code","message","retryable"}}` — before
//! exiting non-zero, so failures are self-describing.
//!
//! `smoke` is the end-to-end scenario CI runs against a live server:
//! submit a small job, submit a heavy job and cancel it mid-run, assert
//! the first resolves and the second reports `cancelled`, exercise the
//! index build → inspect → match → delete round trip (skipped politely
//! when index serving is disabled), subscribe to `GET /v1/events` and
//! assert a freshly submitted job streams its queued → running → done
//! lifecycle over SSE, check the metrics endpoint parses, then shut the
//! server down. Exits non-zero on any violated expectation.

use std::io::{Read, Write};
use std::process::exit;

use minoaner::kb::Json;

#[path = "shared/retry.rs"]
mod retry;
use retry::connect_retry;

fn fail(message: &str) -> ! {
    eprintln!("http_client: {message}");
    exit(1);
}

/// One parsed HTTP response.
struct Response {
    status: u16,
    body: String,
}

impl Response {
    /// The body as JSON, failing loudly on anything unparseable.
    fn json(&self) -> Json {
        Json::parse(&self.body)
            .unwrap_or_else(|e| fail(&format!("bad response body {:?}: {e}", self.body)))
    }
}

/// The server endpoint plus the optional bearer token.
struct Api {
    addr: String,
    token: Option<String>,
}

impl Api {
    /// Performs one request on a fresh connection (`Connection: close`)
    /// and parses the status line and body.
    fn request(&self, method: &str, path: &str, body: Option<&Json>) -> Response {
        let mut stream =
            connect_retry(&self.addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));
        let payload = body.map(Json::compact).unwrap_or_default();
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n",
            self.addr
        );
        if let Some(token) = &self.token {
            head += &format!("Authorization: Bearer {token}\r\n");
        }
        if !payload.is_empty() {
            head += &format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                payload.len()
            );
        }
        head += "\r\n";
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(payload.as_bytes()))
            .and_then(|()| stream.flush())
            .unwrap_or_else(|e| fail(&format!("send request: {e}")));

        let mut raw = String::new();
        stream
            .read_to_string(&mut raw)
            .unwrap_or_else(|e| fail(&format!("read response: {e}")));
        let (head, body) = raw
            .split_once("\r\n\r\n")
            .unwrap_or_else(|| fail(&format!("no header/body split in {raw:?}")));
        let status_line = head.lines().next().unwrap_or("");
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .unwrap_or_else(|| fail(&format!("bad status line {status_line:?}")));
        Response {
            status,
            body: body.to_string(),
        }
    }

    /// Like [`Api::request`] but failing unless the status is expected.
    /// Failures print the server's unified error object when present.
    fn expect(&self, method: &str, path: &str, body: Option<&Json>, expected: u16) -> Response {
        let response = self.request(method, path, body);
        if response.status != expected {
            if let Some(err) = Json::parse(&response.body).ok().and_then(|b| {
                b.get("error").map(|e| {
                    format!(
                        "[{}] {} (retryable: {})",
                        e.get("code").and_then(Json::as_str).unwrap_or("?"),
                        e.get("message").and_then(Json::as_str).unwrap_or("?"),
                        e.get("retryable").and_then(Json::as_bool).unwrap_or(false),
                    )
                })
            }) {
                fail(&format!(
                    "{method} {path}: expected {expected}, got {}: {err}",
                    response.status
                ));
            }
            fail(&format!(
                "{method} {path}: expected {expected}, got {} with body {:?}",
                response.status, response.body
            ));
        }
        response
    }

    fn submit(&self, job: &Json) -> usize {
        let r = self.expect("POST", "/v1/jobs", Some(job), 201);
        r.json()
            .get("id")
            .and_then(Json::as_usize)
            .unwrap_or_else(|| fail(&format!("submit response lacks an id: {}", r.body)))
    }

    /// Blocks server-side until the job is terminal; returns the body.
    fn wait(&self, id: usize) -> Json {
        self.expect("GET", &format!("/v1/jobs/{id}?wait=true"), None, 200)
            .json()
    }
}

/// Opens a streaming subscription to `GET /v1/events` and returns the
/// socket (read timeout armed, positioned past the response headers)
/// plus whatever stream bytes arrived in the same read as the header
/// block.
fn open_events(api: &Api, query: &str) -> (std::net::TcpStream, String) {
    let mut stream = connect_retry(&api.addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));
    let mut head = format!(
        "GET /v1/events{query} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n",
        api.addr
    );
    if let Some(token) = &api.token {
        head += &format!("Authorization: Bearer {token}\r\n");
    }
    head += "\r\n";
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.flush())
        .unwrap_or_else(|e| fail(&format!("send events request: {e}")));
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(500)))
        .expect("arm events read timeout");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut raw = Vec::new();
    loop {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => fail("events stream closed before the headers arrived"),
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => fail(&format!("read events headers: {e}")),
        }
        if let Some(split) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&raw[..split]).into_owned();
            if !head.starts_with("HTTP/1.1 200") {
                fail(&format!("events subscription refused: {head:?}"));
            }
            if !head.to_ascii_lowercase().contains("text/event-stream") {
                fail(&format!("events response is not an SSE stream: {head:?}"));
            }
            let leftover = String::from_utf8_lossy(&raw[split + 4..]).into_owned();
            return (stream, leftover);
        }
        if std::time::Instant::now() >= deadline {
            fail("timed out waiting for the events subscription headers");
        }
    }
}

/// Drains SSE frames off an events subscription, invoking `finished`
/// on each named frame, until it returns true, the server closes the
/// stream, or the deadline passes. Returns every named frame seen, in
/// arrival order. Comment frames (keep-alives) are skipped.
fn read_events(
    mut stream: std::net::TcpStream,
    leftover: String,
    deadline: std::time::Instant,
    mut finished: impl FnMut(&str, &Json) -> bool,
) -> Vec<(String, Json)> {
    let mut buffer = leftover.into_bytes();
    let mut frames: Vec<(String, Json)> = Vec::new();
    loop {
        while let Some(end) = buffer.windows(2).position(|w| w == b"\n\n") {
            let frame: Vec<u8> = buffer.drain(..end + 2).collect();
            let frame = String::from_utf8_lossy(&frame);
            let mut name = None;
            let mut data = None;
            for line in frame.lines() {
                if let Some(rest) = line.strip_prefix("event: ") {
                    name = Some(rest.to_string());
                } else if let Some(rest) = line.strip_prefix("data: ") {
                    data = Json::parse(rest).ok();
                }
            }
            let (Some(name), Some(data)) = (name, data) else {
                continue;
            };
            let hit = finished(&name, &data);
            frames.push((name, data));
            if hit {
                return frames;
            }
        }
        if std::time::Instant::now() >= deadline {
            return frames;
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return frames,
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => fail(&format!("read events stream: {e}")),
        }
    }
}

/// Percent-encodes everything outside the URL-safe unreserved set, so
/// entity IRIs survive the query string.
fn percent_encode(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for byte in raw.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char)
            }
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

/// A synthetic job spec in the manifest job schema.
fn synthetic_job(name: &str, dataset: &str, scale: f64) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("dataset", Json::str(dataset)),
        ("scale", Json::Num(scale)),
    ])
}

fn report_status(body: &Json) -> String {
    body.get("report")
        .and_then(|r| r.get("status"))
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string()
}

/// The CI smoke scenario: resolve one job, cancel another mid-run,
/// check metrics, shut down cleanly.
fn smoke(api: &Api) {
    // A small job that must resolve…
    let quick = api.submit(&synthetic_job("smoke-quick", "restaurant", 0.1));
    // …and a heavy one we cancel immediately: still queued (flips
    // without running) or already running (unwinds at the next pipeline
    // checkpoint) — both must end `cancelled` without disturbing the
    // quick job.
    let doomed = api.submit(&synthetic_job("smoke-doomed", "yago", 1.0));
    let r = api
        .expect("DELETE", &format!("/v1/jobs/{doomed}"), None, 200)
        .json();
    let outcome = r.get("outcome").and_then(Json::as_str).unwrap_or("?");
    if !matches!(outcome, "cancelled" | "cancelling") {
        fail(&format!("unexpected cancel outcome {outcome:?}"));
    }
    eprintln!("smoke: cancel acknowledged ({outcome})");

    let body = api.wait(doomed);
    if report_status(&body) != "cancelled" {
        fail(&format!("doomed job ended {:?}", report_status(&body)));
    }
    eprintln!("smoke: doomed job reported cancelled");

    let body = api.wait(quick);
    if report_status(&body) != "ok" {
        fail(&format!("quick job did not resolve: {:?}", body.compact()));
    }
    let matches = body
        .get("report")
        .and_then(|r| r.get("matches"))
        .and_then(Json::as_usize)
        .unwrap_or(0);
    if matches == 0 {
        fail("quick job resolved zero matches");
    }
    eprintln!("smoke: quick job ok with {matches} matches");

    let listing = api.expect("GET", "/v1/jobs", None, 200).json();
    if listing.get("done").and_then(Json::as_usize) != Some(2) {
        fail(&format!(
            "expected 2 terminal jobs, got {}",
            listing.compact()
        ));
    }

    index_smoke(api);
    events_smoke(api);

    // The metrics endpoint must be parseable Prometheus text.
    let metrics = api.expect("GET", "/v1/metrics", None, 200);
    let mut seen = 0;
    for line in metrics.body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some((_, value)) = line.rsplit_once(' ') else {
            fail(&format!("metric line without a value: {line:?}"));
        };
        if value.parse::<f64>().is_err() {
            fail(&format!("unparseable metric value: {line:?}"));
        }
        seen += 1;
    }
    if seen == 0
        || !metrics
            .body
            .contains("minoan_jobs_done_total{status=\"cancelled\"} 1")
    {
        fail(&format!("unexpected metrics:\n{}", metrics.body));
    }
    eprintln!("smoke: metrics parse ({seen} samples)");

    api.expect("POST", "/v1/shutdown", None, 200);
    eprintln!("smoke: shutdown acknowledged");
}

/// The index half of the smoke scenario: build an index through the
/// job queue, inspect it, answer a match query from the persisted
/// artifact, reject a duplicate build, delete it. Skipped (with a
/// note) when the server runs without `--index-dir`.
fn index_smoke(api: &Api) {
    let listing = api.request("GET", "/v1/indexes", None);
    if listing.status == 503 {
        eprintln!("smoke: index serving disabled, skipping the index round-trip");
        return;
    }
    if listing.status != 200 {
        fail(&format!(
            "GET /v1/indexes: {} {}",
            listing.status, listing.body
        ));
    }
    let job = synthetic_job("smoke-index", "restaurant", 0.1);
    // ?wait=true blocks the 201 until the build job is terminal, so the
    // artifact is on disk when the response arrives.
    let built = api
        .expect("POST", "/v1/indexes?wait=true", Some(&job), 201)
        .json();
    if built.get("index").and_then(Json::as_str) != Some("smoke-index") {
        fail(&format!("unexpected build response {}", built.compact()));
    }
    // Rebuilding an existing index is a conflict, in the unified
    // error schema.
    let dup = api.request("POST", "/v1/indexes", Some(&job));
    let dup_code = dup
        .json()
        .get("error")
        .and_then(|e| e.get("code").and_then(Json::as_str).map(str::to_string));
    if dup.status != 409 || dup_code.as_deref() != Some("conflict") {
        fail(&format!("duplicate build: {} {}", dup.status, dup.body));
    }
    let meta = api
        .expect("GET", "/v1/indexes/smoke-index", None, 200)
        .json();
    if meta.get("matched_pairs").and_then(Json::as_usize) == Some(0) {
        fail(&format!(
            "index metadata reports zero matches: {}",
            meta.compact()
        ));
    }
    // The entity IRI is percent-encoded (`:` → `%3A`), exercising the
    // query decoder; `r1:e0` is the restaurant profile's first entity.
    let answer = api
        .expect(
            "GET",
            "/v1/indexes/smoke-index/match?entity=r1%3Ae0&k=3",
            None,
            200,
        )
        .json();
    if answer.get("side").and_then(Json::as_str) != Some("first") {
        fail(&format!("unexpected match answer {}", answer.compact()));
    }
    let ingest_ms = answer
        .get("stage_timings_ms")
        .and_then(|t| t.get("ingest"))
        .and_then(Json::as_f64);
    if ingest_ms != Some(0.0) {
        fail(&format!(
            "match query reported nonzero ingest time: {}",
            answer.compact()
        ));
    }
    eprintln!(
        "smoke: index round-trip ok ({} candidates, zero ingest)",
        answer
            .get("candidates")
            .map(|c| match c {
                Json::Arr(items) => items.len(),
                _ => 0,
            })
            .unwrap_or(0)
    );
    api.expect("DELETE", "/v1/indexes/smoke-index", None, 200);
    let gone = api.request("GET", "/v1/indexes/smoke-index", None);
    if gone.status != 404 {
        fail(&format!("deleted index still answers: {}", gone.status));
    }
    eprintln!("smoke: index deleted");
}

/// The live-stream half of the smoke scenario: subscribe to
/// `GET /v1/events` first, then submit a job and assert its
/// queued → running → done lifecycle arrives over SSE, in order. The
/// subscription only carries events emitted after it opened, so the
/// ordering check is over exactly this job's transitions.
fn events_smoke(api: &Api) {
    let (stream, leftover) = open_events(api, "?level=info");
    let id = api.submit(&synthetic_job("smoke-events", "restaurant", 0.1));
    let body = api.wait(id);
    if report_status(&body) != "ok" {
        fail(&format!("events job did not resolve: {:?}", body.compact()));
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let frames = read_events(stream, leftover, deadline, |name, data| {
        name == "job.done" && data.get("job").and_then(Json::as_usize) == Some(id)
    });
    let lifecycle: Vec<&str> = frames
        .iter()
        .filter(|(_, data)| data.get("job").and_then(Json::as_usize) == Some(id))
        .map(|(name, _)| name.as_str())
        .collect();
    let mut expected = ["job.queued", "job.running", "job.done"]
        .into_iter()
        .peekable();
    for name in &lifecycle {
        if expected.peek() == Some(name) {
            expected.next();
        }
    }
    if expected.peek().is_some() {
        fail(&format!(
            "SSE lifecycle incomplete for job {id}: saw {lifecycle:?}"
        ));
    }
    eprintln!(
        "smoke: SSE streamed the job lifecycle ({} frames, {} for job {id})",
        frames.len(),
        lifecycle.len()
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: http_client <host:port> [--token T] \
                 (submit <job-json> | jobs | get <id> [--wait] | cancel <id> | \
                 index-build <job-json> [--wait] | indexes | index-get <name> | \
                 index-delete <name> | index-match <name> <iri> [--k N] | \
                 metrics | trace <id> | events [--level L] [--job N] | \
                 shutdown [drain|cancel] | smoke)";
    let mut token = None;
    if let Some(i) = args.iter().position(|a| a == "--token") {
        if i + 1 >= args.len() {
            fail(usage);
        }
        token = Some(args.remove(i + 1));
        args.remove(i);
    }
    let wait = if let Some(i) = args.iter().position(|a| a == "--wait") {
        args.remove(i);
        true
    } else {
        false
    };
    let (Some(addr), Some(mode)) = (args.first(), args.get(1)) else {
        fail(usage);
    };
    let api = Api {
        addr: addr.clone(),
        token,
    };
    match mode.as_str() {
        "smoke" => smoke(&api),
        "jobs" => println!(
            "{}",
            api.expect("GET", "/v1/jobs", None, 200).json().pretty()
        ),
        "metrics" => print!("{}", api.expect("GET", "/v1/metrics", None, 200).body),
        "trace" => {
            let Some(id) = args.get(2).and_then(|v| v.parse::<usize>().ok()) else {
                fail(usage)
            };
            println!(
                "{}",
                api.expect("GET", &format!("/v1/jobs/{id}/trace"), None, 200)
                    .json()
                    .pretty()
            );
        }
        "events" => {
            let mut query = String::new();
            for (flag, key) in [("--level", "level"), ("--job", "job")] {
                if let Some(i) = args.iter().position(|a| a == flag) {
                    let Some(value) = args.get(i + 1) else {
                        fail(usage)
                    };
                    query += if query.is_empty() { "?" } else { "&" };
                    query += &format!("{key}={value}");
                }
            }
            let (stream, leftover) = open_events(&api, &query);
            // Print frames as they arrive until the server closes the
            // stream (e.g. at shutdown) or the process is interrupted.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(86_400);
            read_events(stream, leftover, deadline, |name, data| {
                println!("{name} {}", data.compact());
                false
            });
        }
        "submit" => {
            let Some(job) = args.get(2) else { fail(usage) };
            let job = Json::parse(job).unwrap_or_else(|e| fail(&format!("bad job JSON: {e}")));
            println!("{}", api.submit(&job));
        }
        "get" | "cancel" => {
            let Some(id) = args.get(2).and_then(|v| v.parse::<usize>().ok()) else {
                fail(usage)
            };
            let (method, path) = match mode.as_str() {
                "cancel" => ("DELETE", format!("/v1/jobs/{id}")),
                _ if wait => ("GET", format!("/v1/jobs/{id}?wait=true")),
                _ => ("GET", format!("/v1/jobs/{id}")),
            };
            println!("{}", api.expect(method, &path, None, 200).json().pretty());
        }
        "index-build" => {
            let Some(job) = args.get(2) else { fail(usage) };
            let job = Json::parse(job).unwrap_or_else(|e| fail(&format!("bad job JSON: {e}")));
            let path = if wait {
                "/v1/indexes?wait=true"
            } else {
                "/v1/indexes"
            };
            println!(
                "{}",
                api.expect("POST", path, Some(&job), 201).json().pretty()
            );
        }
        "indexes" => println!(
            "{}",
            api.expect("GET", "/v1/indexes", None, 200).json().pretty()
        ),
        "index-get" | "index-delete" => {
            let Some(name) = args.get(2) else { fail(usage) };
            let method = if mode.as_str() == "index-delete" {
                "DELETE"
            } else {
                "GET"
            };
            println!(
                "{}",
                api.expect(method, &format!("/v1/indexes/{name}"), None, 200)
                    .json()
                    .pretty()
            );
        }
        "index-match" => {
            let (Some(name), Some(iri)) = (args.get(2), args.get(3)) else {
                fail(usage)
            };
            let k = args
                .iter()
                .position(|a| a == "--k")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(10);
            let path = format!(
                "/v1/indexes/{name}/match?entity={}&k={k}",
                percent_encode(iri)
            );
            println!("{}", api.expect("GET", &path, None, 200).json().pretty());
        }
        "shutdown" => {
            let body = args
                .get(2)
                .map(|mode| Json::obj([("mode", Json::str(mode.clone()))]));
            println!(
                "{}",
                api.expect("POST", "/v1/shutdown", body.as_ref(), 200)
                    .json()
                    .pretty()
            );
        }
        _ => fail(usage),
    }
}
