//! Ingest-path benchmarks: streaming chunked parse vs whole-string
//! parse, sequential vs parallel tokenization, and sequential vs
//! parallel attribute/relation importance — the serial prefix that used
//! to starve the executor (Amdahl) before the ingest pipeline went
//! parallel. Emits `BENCH_ingest.json` at the workspace root with the
//! thread count recorded per result and peak RSS where available.
//!
//! `MINOAN_BENCH_SMOKE=1` shrinks scale and iterations for CI.

use criterion::{BenchmarkId, Criterion};
use minoan_bench::benchutil;
use minoan_core::{attribute_importance_with, relation_importance_with, top_neighbors_with};
use minoan_datagen::DatasetKind;
use minoan_exec::{Executor, ExecutorKind};
use minoan_kb::parse::{parse_tsv, parse_tsv_reader, to_tsv, StreamOptions};
use minoan_kb::Json;
use minoan_text::{TokenizedPair, Tokenizer};

const SEED: u64 = 20180416;
const DATASET: DatasetKind = DatasetKind::RexaDblp;
/// Worker-chunk size for the streamed parse: small enough that even the
/// smoke dataset splits into multiple chunks per batch.
const CHUNK_BYTES: usize = 64 << 10;

fn bench_ingest(c: &mut Criterion, scale: f64, samples: usize) {
    let d = DATASET.generate_scaled(SEED, scale);
    // Serialize both sides to the TSV exchange format: the parse input.
    let text1 = to_tsv(&d.pair.first);
    let text2 = to_tsv(&d.pair.second);
    let tokenizer = Tokenizer::default();

    let mut group = c.benchmark_group("ingest");
    group.sample_size(samples);

    group.bench_function("parse/whole_string", |b| {
        b.iter(|| {
            (
                parse_tsv("E1", &text1).expect("parse E1"),
                parse_tsv("E2", &text2).expect("parse E2"),
            )
        })
    });
    for t in benchutil::thread_sweep() {
        let exec = Executor::new(ExecutorKind::Rayon, t);
        let opts = StreamOptions {
            chunk_bytes: CHUNK_BYTES,
        };
        group.bench_with_input(
            BenchmarkId::new("parse/streamed", format!("rayon-{t}")),
            &exec,
            |b, exec| {
                b.iter(|| {
                    (
                        parse_tsv_reader("E1", text1.as_bytes(), exec, opts).expect("parse E1"),
                        parse_tsv_reader("E2", text2.as_bytes(), exec, opts).expect("parse E2"),
                    )
                })
            },
        );
    }
    for (name, exec) in benchutil::sweep_executors() {
        group.bench_with_input(BenchmarkId::new("tokenize", &name), &exec, |b, exec| {
            b.iter(|| TokenizedPair::build_with(&d.pair, &tokenizer, exec))
        });
    }
    for (name, exec) in benchutil::sweep_executors() {
        group.bench_with_input(BenchmarkId::new("importance", &name), &exec, |b, exec| {
            b.iter(|| {
                (
                    attribute_importance_with(&d.pair.first, exec),
                    attribute_importance_with(&d.pair.second, exec),
                    relation_importance_with(&d.pair.first, exec),
                    relation_importance_with(&d.pair.second, exec),
                    top_neighbors_with(&d.pair.first, 3, 32, exec),
                    top_neighbors_with(&d.pair.second, 3, 32, exec),
                )
            })
        });
    }
    group.finish();
}

fn main() {
    let scale = benchutil::smoke_scaled(1.0, 0.05);
    let samples = benchutil::smoke_scaled(10, 2);
    let mut criterion = Criterion::default().configure_from_args();
    bench_ingest(&mut criterion, scale, samples);
    let results = criterion.take_results();

    let sweep = benchutil::thread_sweep();
    // Speedup of each parallel variant over its sequential baseline.
    let speedups = |bench: &str, baseline: &str| -> Json {
        benchutil::speedup_map(&results, &sweep, &format!("ingest/{baseline}"), |t| {
            format!("ingest/{bench}/rayon-{t}")
        })
    };
    let mut fields = benchutil::trajectory_fields("ingest_parallel", DATASET.name(), scale, &sweep);
    fields.push(("stream_chunk_bytes".into(), Json::num(CHUNK_BYTES as f64)));
    fields.push((
        "speedup".into(),
        Json::obj([
            (
                "parse_streamed",
                speedups("parse/streamed", "parse/whole_string"),
            ),
            ("tokenize", speedups("tokenize", "tokenize/sequential")),
            (
                "importance",
                speedups("importance", "importance/sequential"),
            ),
        ]),
    ));
    fields.push(("results".into(), benchutil::results_json(&results)));
    benchutil::emit_checked(
        env!("CARGO_MANIFEST_DIR"),
        "BENCH_ingest.json",
        &Json::obj(fields),
    );
}
