//! # minoaner — schema-agnostic, non-iterative entity resolution
//!
//! A Rust implementation of **MinoanER** (Efthymiou, Papadakis,
//! Stefanidis, Christophides: *"Simplifying Entity Resolution on Web
//! Data with Schema-agnostic, Non-iterative Matching"*, ICDE 2018),
//! together with every substrate it needs: a knowledge-base model,
//! schema-agnostic blocking, similarity measures, the baselines it is
//! evaluated against, synthetic benchmark datasets and an evaluation
//! harness.
//!
//! ## Architecture
//!
//! The workspace is layered bottom-up; this crate is a facade
//! re-exporting every member:
//!
//! - [`obs`] — the **observability layer**: leveled structured tracing
//!   into a bounded drop-oldest ring ([`obs::trace`]), log-bucketed
//!   latency histograms ([`obs::hist`]), and the `MINOAN_LOG` console
//!   sink — dependency-free, threaded through every layer above;
//! - [`exec`] — the **executor layer**: an [`exec::Executor`] with
//!   `Sequential` and `Rayon` backends that every hot stage fans out on,
//!   providing ordered fan-out over index ranges (`map_parts`,
//!   `map_range`), ownership shards (`map_shards`) and boundary-aligned
//!   byte ranges (`map_chunks` — the primitive behind streaming ingest);
//! - [`kb`] — entity descriptions, arena-backed interning, statistics,
//!   the shared substrate (Fx hashing, CSR row storage ([`kb::Csr`]),
//!   minimal JSON) and **ingest**: each input format has a whole-string
//!   parser and a streaming chunked parser
//!   ([`kb::parse::parse_ntriples_reader`], [`kb::parse::parse_tsv_reader`])
//!   that never materializes the file as one `String` — line-aligned
//!   byte blocks fan out over the executor into per-thread
//!   [`kb::KbChunk`] partials (chunk-local interners, no shared state)
//!   that merge in input order, reproducing the sequential parser's
//!   output byte for byte;
//! - [`text`] — tokenization, n-grams, the tokenized pair view; the
//!   tokenizer fans out over entity ranges with part-local token
//!   dictionaries merged in first-seen order;
//! - [`blocking`] — token/name blocking, Block Purging, block metrics;
//! - [`sim`] — `valueSim` (ARCS variant) and vector-space measures;
//! - [`core`] — attribute/relation importance (data-parallel passes with
//!   order-independent integer merges), the CSR-backed
//!   [`core::SimilarityIndex`] (valueSim sharded by `e1 % shards` with
//!   per-block pre-grouped shard scans), heuristics H1–H4, the
//!   non-iterative pipeline with per-stage [`core::Timings`];
//! - [`serve`] — the **multi-pair serving layer**: a live
//!   bounded-memory admission queue ([`serve::JobQueue`]) scheduling
//!   pairs-first (intra-pair threads widen for stragglers) with
//!   pre-load footprint estimates, failure isolation and **cooperative
//!   mid-job cancellation** through pipeline checkpoints; drained
//!   either by `minoaner batch` (TOML/JSON manifests) or by the
//!   long-running `minoaner serve` daemon, whose line-delimited JSON
//!   socket protocol (submit / status / cancel / wait / shutdown, see
//!   [`serve::daemon`]) feeds jobs in as they arrive — with per-job
//!   results bit-identical to solo sequential runs either way;
//! - [`baselines`] — Unique Mapping Clustering, BSL, SiGMa-like,
//!   PARIS-like;
//! - [`datagen`] — the four synthetic benchmark profiles;
//! - [`eval`] — precision/recall/F1 and report tables.
//!
//! The paper's matching process is *massively parallel* by design
//! (every similarity is a function of block statistics), and since the
//! ingest pipeline went chunked there is no serial prefix left: parse,
//! tokenize, importance, blocking, similarity indexing and the H2–H4
//! scans all run on the executor. Parallel runs are **bit-identical**
//! to sequential ones — per-pair floating-point sums keep block order,
//! partials merge in part/chunk order, dictionaries merge in first-seen
//! order, and ties break by entity id.
//!
//! The executor is selected per run through
//! [`core::MinoanConfig::executor`] (and `--executor` / `--threads` on
//! the CLI); the default is the parallel backend on all cores. The CLI
//! streams input files through the chunked parsers with
//! [`core::MinoanConfig::ingest_chunk_kib`]-sized worker chunks.
//!
//! ```
//! use minoaner::core::MinoanEr;
//! use minoaner::kb::{KbBuilder, KbPair};
//!
//! let mut a = KbBuilder::new("E1");
//! a.add_literal("a:1", "name", "Palace of Knossos");
//! let mut b = KbBuilder::new("E2");
//! b.add_literal("b:1", "label", "Knossos Palace");
//! let pair = KbPair::new(a.finish(), b.finish());
//! let out = MinoanEr::with_defaults().run(&pair);
//! assert_eq!(out.matching.len(), 1);
//! ```

#![warn(missing_docs)]

pub use minoan_baselines as baselines;
pub use minoan_blocking as blocking;
pub use minoan_core as core;
pub use minoan_datagen as datagen;
pub use minoan_eval as eval;
pub use minoan_exec as exec;
pub use minoan_kb as kb;
pub use minoan_obs as obs;
pub use minoan_serve as serve;
pub use minoan_sim as sim;
pub use minoan_text as text;
