//! Plain-text report tables.
//!
//! The `repro_*` binaries print tables shaped like the paper's, with a
//! `paper` and a `measured` row per metric so the reader can compare the
//! reproduction at a glance.

/// A simple right-aligned ASCII table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row of string slices.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Appends a horizontal separator.
    pub fn separator(&mut self) -> &mut Self {
        self.rows.push(Vec::new());
        self
    }

    /// Number of data rows (separators included).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table. The first column is left-aligned, the rest
    /// right-aligned.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let print_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    out.push_str(&format!("{:<width$}", cell, width = widths[0]));
                } else {
                    out.push_str(&format!("  {:>width$}", cell, width = widths[i]));
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        print_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            if row.is_empty() {
                out.push_str(&"-".repeat(total));
                out.push('\n');
            } else {
                print_row(&mut out, row);
            }
        }
        out
    }
}

/// Formats large counts the way the paper does (`6.54·10^8` style for
/// values above 10^5, plain integers below).
pub fn scientific(v: u128) -> String {
    if v < 100_000 {
        return v.to_string();
    }
    let f = v as f64;
    let exp = f.log10().floor() as i32;
    let mantissa = f / 10f64.powi(exp);
    format!("{mantissa:.2}e{exp}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["dataset", "P", "R"]);
        t.row_str(&["Restaurant", "100.0", "100.0"]);
        t.row_str(&["Rexa-DBLP", "96.7", "95.3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[2].contains("100.0"));
        // All data lines align on the last column.
        let w = lines[2].len();
        assert_eq!(lines[3].len(), w);
    }

    #[test]
    fn separator_draws_a_line() {
        let mut t = Table::new(&["a", "b"]);
        t.row_str(&["x", "y"]).separator().row_str(&["z", "w"]);
        let s = t.render();
        assert_eq!(s.lines().filter(|l| l.starts_with('-')).count(), 2);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row_str(&["only"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn scientific_formatting() {
        assert_eq!(scientific(83), "83");
        assert_eq!(scientific(1800), "1800");
        assert_eq!(scientific(654_000_000), "6.54e8");
        assert_eq!(scientific(27_800_000_000_000), "2.78e13");
    }
}
