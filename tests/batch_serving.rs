//! Batch serving layer tests: scheduler determinism, the example
//! manifests, and batch-vs-solo bit-identity (the serving acceptance
//! criterion: per-job outputs must match running each pair alone,
//! sequentially, regardless of fleet shape or manifest order).

use std::path::Path;

use minoaner::exec::ExecutorKind;
use minoaner::serve::{run_batch, JobInput, JobSpec, Manifest, ServeOptions};

fn example_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
}

/// A fast four-profile manifest for determinism sweeps.
fn four_profile_manifest() -> Manifest {
    let jobs = minoaner::datagen::DatasetKind::ALL
        .into_iter()
        .map(|kind| JobSpec {
            name: format!("{kind:?}"),
            input: JobInput::Synthetic {
                kind,
                seed: 20180416,
                scale: 0.08,
            },
            truth: None,
            theta: None,
            candidates_k: None,
            purge_blocks: None,
            timeout_ms: None,
            max_retries: None,
            persist: None,
        })
        .collect();
    Manifest {
        slots: 0,
        threads: 0,
        memory_budget_mib: 0,
        timeout_ms: 0,
        max_retries: 0,
        jobs,
    }
}

/// Fingerprints keyed by job name (order-independent comparison).
fn fingerprints(manifest: &Manifest, opts: &ServeOptions) -> Vec<(String, String)> {
    let mut fp: Vec<(String, String)> = run_batch(manifest, opts)
        .jobs
        .iter()
        .map(|j| (j.name.clone(), j.fingerprint()))
        .collect();
    fp.sort();
    fp
}

#[test]
fn example_manifests_parse_and_agree() {
    let toml = Manifest::load(&example_path("fleet.toml")).expect("fleet.toml parses");
    let json = Manifest::load(&example_path("fleet.json")).expect("fleet.json parses");
    assert_eq!(toml, json, "the two example spellings describe one fleet");
    assert!(toml.jobs.len() >= 4, "the example serves at least 4 pairs");
    assert!(
        toml.slots >= 4,
        "the example runs at least 4 pairs concurrently"
    );
}

#[test]
fn example_fleet_resolves_every_pair_concurrently() {
    let manifest = Manifest::load(&example_path("fleet.toml")).unwrap();
    let report = run_batch(&manifest, &ServeOptions::default());
    assert_eq!(report.ok_count(), manifest.jobs.len());
    for job in &report.jobs {
        assert!(!job.matches.is_empty(), "{} matched nothing", job.name);
        let q = job.quality.as_ref().expect("synthetic jobs carry truth");
        assert!(q.f1() > 0.5, "{}: F1 {:.3}", job.name, q.f1());
    }
    // All slots were actually exercised: with as many jobs as slots
    // ready and no memory pressure, the fleet reaches full width.
    assert!(
        report.peak_concurrent_jobs >= 4.min(report.slots),
        "peak concurrency {} below fleet width {}",
        report.peak_concurrent_jobs,
        report.slots
    );
}

#[test]
fn batch_output_is_bit_identical_to_solo_sequential_runs() {
    let manifest = four_profile_manifest();
    let batch = fingerprints(&manifest, &ServeOptions::default());
    for job in &manifest.jobs {
        let solo = Manifest {
            slots: 1,
            threads: 1,
            memory_budget_mib: 0,
            timeout_ms: 0,
            max_retries: 0,
            jobs: vec![job.clone()],
        };
        let solo_opts = ServeOptions {
            slots: Some(1),
            threads: Some(1),
            executor: ExecutorKind::Sequential,
            ..ServeOptions::default()
        };
        let solo_fp = fingerprints(&solo, &solo_opts);
        let batch_fp = batch.iter().find(|(n, _)| *n == job.name).unwrap();
        assert_eq!(
            solo_fp[0], *batch_fp,
            "{}: batch result differs from the solo sequential run",
            job.name
        );
    }
}

#[test]
fn scheduling_shape_never_changes_results() {
    let manifest = four_profile_manifest();
    let base = fingerprints(
        &manifest,
        &ServeOptions {
            slots: Some(1),
            threads: Some(1),
            ..ServeOptions::default()
        },
    );
    for (slots, threads) in [(1, 2), (2, 2), (2, 7), (4, 7)] {
        let got = fingerprints(
            &manifest,
            &ServeOptions {
                slots: Some(slots),
                threads: Some(threads),
                ..ServeOptions::default()
            },
        );
        assert_eq!(base, got, "slots={slots} threads={threads}");
    }
}

#[test]
fn manifest_order_never_changes_results() {
    let manifest = four_profile_manifest();
    let base = fingerprints(&manifest, &ServeOptions::default());
    let mut shuffled = manifest.clone();
    shuffled.jobs.reverse();
    assert_eq!(base, fingerprints(&shuffled, &ServeOptions::default()));
    // An interleaving that is neither forward nor reversed.
    let mut mixed = manifest.clone();
    mixed.jobs.swap(0, 2);
    mixed.jobs.swap(1, 3);
    assert_eq!(base, fingerprints(&mixed, &ServeOptions::default()));
}

#[test]
fn memory_pressure_never_changes_results() {
    let manifest = four_profile_manifest();
    let base = fingerprints(&manifest, &ServeOptions::default());
    let strangled = ServeOptions {
        memory_budget_mib: Some(1),
        ..ServeOptions::default()
    };
    assert_eq!(base, fingerprints(&manifest, &strangled));
}
