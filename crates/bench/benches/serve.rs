//! Batch serving benchmarks: one fixed 8-job fleet (the four benchmark
//! profiles × two seeds) scheduled at fleet sizes 1/2/4/8, emitting the
//! `BENCH_serve.json` trajectory file at the workspace root.
//!
//! The sweep varies **pair-level parallelism** (`slots`) while every
//! slot submits its waves to the one process-wide work-stealing pool,
//! so the speedup map measures what the serving layer adds over
//! resolving the pairs one after another — without ever putting more
//! runnable threads on the machine than it has cores. Every
//! run also cross-checks determinism: per-job fingerprints must be
//! byte-identical at every fleet size, or the bench aborts. Peak RSS is
//! recorded where the platform exposes it. `MINOAN_BENCH_SMOKE=1`
//! shrinks scale and iterations for CI, which then validates the
//! emitted JSON via [`minoan_bench::benchutil::check_bench_json`].

use criterion::{BenchmarkId, Criterion};
use minoan_bench::benchutil;
use minoan_datagen::DatasetKind;
use minoan_kb::Json;
use minoan_serve::{run_batch, JobInput, JobSpec, Manifest, ServeOptions};

const SEEDS: [u64; 2] = [20180416, 7];
const FLEET_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The benchmarked fleet: every profile at `scale`, under two seeds.
fn fleet_manifest(scale: f64) -> Manifest {
    let mut jobs = Vec::new();
    for seed in SEEDS {
        for kind in DatasetKind::ALL {
            jobs.push(JobSpec {
                name: format!("{}-{seed}", kind.name()),
                input: JobInput::Synthetic { kind, seed, scale },
                truth: None,
                theta: None,
                candidates_k: None,
                purge_blocks: None,
                timeout_ms: None,
                max_retries: None,
                persist: None,
            });
        }
    }
    Manifest {
        slots: 0,
        threads: 0,
        memory_budget_mib: 0,
        timeout_ms: 0,
        max_retries: 0,
        jobs,
    }
}

fn options(slots: usize) -> ServeOptions {
    ServeOptions {
        slots: Some(slots),
        ..ServeOptions::default()
    }
}

fn bench_serve(c: &mut Criterion, manifest: &Manifest, samples: usize) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(samples);
    for slots in FLEET_SWEEP {
        group.bench_with_input(
            BenchmarkId::new("fleet8", format!("slots-{slots}")),
            &slots,
            |b, &slots| b.iter(|| run_batch(manifest, &options(slots))),
        );
    }
    group.finish();
}

/// Determinism gate: per-job fingerprints must not depend on the fleet
/// size. Aborts the bench (non-zero exit) on divergence — a bench whose
/// work varies per configuration measures nothing. Compares the serial
/// fleet against the widest one only (two extra fleet runs, not one per
/// swept size — `tests/batch_serving.rs` covers the exhaustive sweep).
fn check_determinism(manifest: &Manifest) {
    let fingerprints = |slots: usize| -> Vec<String> {
        run_batch(manifest, &options(slots))
            .jobs
            .iter()
            .map(|j| j.fingerprint())
            .collect()
    };
    let widest = FLEET_SWEEP[FLEET_SWEEP.len() - 1];
    if fingerprints(1) != fingerprints(widest) {
        eprintln!("per-job results differ between slots-1 and slots-{widest}");
        std::process::exit(1);
    }
}

/// Fleet-scaling gate: with every slot submitting its waves to the one
/// process-wide pool, adding slots must never *cost* throughput — on a
/// multi-core machine a `fleet_over_sequential` below 0.95x at any
/// slots>1 point means slot scheduling is oversubscribing or starving
/// the pool, and the bench aborts (non-zero exit). On a 1-core machine
/// the gate is a no-op: scheduling jitter around the 1.0x hardware
/// ceiling is not a scaling signal.
fn check_fleet_scaling(speedups: &[(usize, Option<f64>)]) {
    if benchutil::available_cores() <= 1 {
        return;
    }
    for &(slots, speedup) in speedups {
        if let Some(v) = speedup {
            if slots > 1 && v < 0.95 {
                eprintln!(
                    "fleet_over_sequential at slots-{slots} is {v:.3}x (< 0.95x): \
                     fleet scheduling regressed below the sequential baseline"
                );
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    // Full scale is modest: the bench measures scheduling over 8 real
    // pipeline runs, not single-pair throughput (benches/parallel.rs
    // owns that).
    let scale = benchutil::smoke_scaled(0.3, 0.05);
    let samples = benchutil::smoke_scaled(5, 2);
    let manifest = fleet_manifest(scale);
    check_determinism(&manifest);

    let mut criterion = Criterion::default().configure_from_args();
    bench_serve(&mut criterion, &manifest, samples);
    let results = criterion.take_results();

    // The speedup map compares *best observed* times (`min_ns`), not
    // medians: the sweep's configurations run minutes apart on a shared
    // container whose throughput drifts by double-digit percentages, and
    // a one-sided noise source can only ever make a sample slower. The
    // full per-sample medians stay in `results` below.
    let speedups: Vec<(usize, Option<f64>)> = FLEET_SWEEP
        .iter()
        .map(|&slots| {
            let seq = benchutil::find(&results, "serve/fleet8/slots-1");
            let par = benchutil::find(&results, &format!("serve/fleet8/slots-{slots}"));
            let v = match (seq, par) {
                (Some(s), Some(p)) if p.min_ns > 0.0 => Some(s.min_ns / p.min_ns),
                _ => None,
            };
            (slots, v)
        })
        .collect();
    check_fleet_scaling(&speedups);

    let sweep = benchutil::thread_sweep();
    let mut fields = benchutil::trajectory_fields("batch_serve", "fleet8", scale, &sweep);
    // The generic 1-core note is about rayon thread sweeps; the serve
    // sweep scales *slots* over one process-wide work-stealing pool, so
    // document that instead (and where the sweep is worth re-running).
    let note = if benchutil::available_cores() == 1 {
        "pool backend, 1 CPU core: the queue's execution width caps dispatch at \
         one job at a time, so ~1.0x at every slot count is both the hardware \
         ceiling and the scheduling goal (slots beyond the width only buy queue \
         residency); re-run this sweep on a multi-core machine to measure real \
         fleet scaling"
    } else {
        "pool backend: jobs dispatch up to the execution width \
         (min(slots, cores)) and every wave runs on the one process-wide \
         work-stealing pool, so slots never oversubscribe the machine"
    };
    if let Some(entry) = fields.iter_mut().find(|(k, _)| k == "note") {
        entry.1 = Json::str(note);
    }
    fields.push((
        "fleet_sweep".into(),
        Json::arr(FLEET_SWEEP.iter().map(|&s| Json::num(s as f64))),
    ));
    fields.push(("jobs".into(), Json::num(manifest.jobs.len() as f64)));
    fields.push((
        "speedup".into(),
        Json::obj([(
            "fleet_over_sequential",
            Json::obj(
                speedups
                    .iter()
                    .map(|&(slots, v)| (slots.to_string(), v.map_or(Json::Null, Json::Num))),
            ),
        )]),
    ));
    // Per-result array: serve ids carry the fleet size (`slots-N`), not
    // a `rayon-N` thread label, so the shared `results_json` field
    // `rayon_threads` would be wrong here.
    fields.push((
        "results".into(),
        Json::arr(results.iter().map(|r| {
            let slots =
                r.id.rsplit_once("/slots-")
                    .and_then(|(_, s)| s.parse::<usize>().ok())
                    .unwrap_or(1);
            Json::obj([
                ("id", Json::str(&r.id)),
                ("slots", Json::num(slots as f64)),
                ("median_ns", Json::Num(r.median_ns)),
                ("mean_ns", Json::Num(r.mean_ns)),
                ("min_ns", Json::Num(r.min_ns)),
                ("iterations", Json::num(r.iterations as f64)),
            ])
        })),
    ));
    benchutil::emit_checked(
        env!("CARGO_MANIFEST_DIR"),
        "BENCH_serve.json",
        &Json::obj(fields),
    );
}
