//! Long-running daemon intake: a line-delimited JSON socket protocol
//! feeding the same live [`JobQueue`] the batch scheduler drains.
//!
//! `minoaner serve --listen <addr>` turns the one-shot batch fleet into
//! a service: jobs arrive over time, are admitted strictly in
//! submission order under the bounded-memory budget, run pairs-first
//! with straggler widening, and stream terminal reports in completion
//! order — exactly like a manifest batch, including per-job
//! bit-identity with solo sequential runs. A *running* job can be
//! cancelled: its [`CancelToken`] makes the pipeline unwind at the next
//! cooperative checkpoint (see
//! [`minoan_core::MinoanEr::run_cancellable`]) to a `Cancelled` report
//! within one executor wave, without disturbing other in-flight jobs.
//!
//! ## Wire protocol
//!
//! One JSON document per line in each direction (UTF-8, LF-terminated;
//! the writer escapes embedded newlines, so framing is unambiguous).
//! Requests are objects with an `op` field; every response carries
//! `"ok": true|false`, with `"error"` describing a failure. Requests on
//! one connection are processed strictly in order; concurrent
//! connections are independent.
//!
//! | op | request fields | response |
//! |----|----------------|----------|
//! | `submit` | `job`: a manifest job object (same schema as a `[[job]]` table / `jobs` element, see [`crate::manifest`]) | `{"ok":true,"id":N,"name":"…"}` — `id` is the submission index |
//! | `status` | optional `id` | `{"ok":true,"accepting":B,"queued":N,"running":N,"done":N,"jobs":[{"id":N,"name":"…","phase":"queued\|running\|done","status":"ok\|failed\|cancelled"?,"error":"…"?}]}` (`jobs` has one element with `id`) |
//! | `cancel` | `id` | `{"ok":true,"id":N,"outcome":"cancelled\|cancelling\|done\|unknown"}` — `cancelled`: flipped before dispatch; `cancelling`: token set, the running job unwinds at its next checkpoint; `done`: already terminal, report unchanged |
//! | `wait` | `id` | blocks until the job is terminal, then `{"ok":true,"id":N,"fingerprint":"…","report":{…}}` — `report` is [`JobReport::to_json`] with pairs, `fingerprint` the raw deterministic [`JobReport::fingerprint`] |
//! | `shutdown` | optional `mode`: `"drain"` (default: queued jobs still run) or `"cancel"` (queued jobs flip to `Cancelled`, running jobs are cancelled) | `{"ok":true}`; the daemon then stops accepting, drains and exits |
//!
//! A `status`/`done` job is never reported `running` and `cancelled` at
//! once: phase transitions are atomic under the queue lock
//! ([`JobQueue::cancel`]), and `status` is present exactly when `phase`
//! is `done`.
//!
//! ## Checkpoint granularity
//!
//! Cancellation is cooperative. The pipeline observes the job's token
//! **between executor waves** — after ingest chunk waves and between
//! the tokenize / name / blocking / purge / H1 / top-neighbor /
//! similarity-index / H2 / H3 / H4 stages — never mid-wave (tearing a
//! wave down could not stay bit-identical with sequential runs). A
//! cancelled job therefore reaches its `Cancelled` report after at most
//! one wave of residual work.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use minoan_kb::Json;

use crate::manifest::JobSpec;
use crate::report::{peak_rss_bytes, JobReport, JobStatus, ServeReport};
use crate::scheduler::{resolve_fleet_knobs, CancelToken, JobQueue, ServeOptions};

/// How often blocked daemon loops (accept, per-connection reads) check
/// the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Runs the daemon on an already-bound listener until a client sends
/// `shutdown`, then drains the queue and returns the fleet report
/// (jobs in submission order, like a batch run). `on_done` fires once
/// per terminal job report, in completion order.
///
/// Fleet knobs come from `opts` with zeros meaning "all cores" /
/// "unlimited", exactly like a manifest with no limits; there is no
/// job-count clamp because the job count is unknown up front.
pub fn run_daemon(
    listener: TcpListener,
    opts: &ServeOptions,
    on_done: impl Fn(&JobReport) + Sync,
) -> std::io::Result<ServeReport> {
    let t0 = Instant::now();
    let (slots, threads, budget_bytes) = resolve_fleet_knobs(opts, 0, 0, 0, usize::MAX);
    let queue = JobQueue::new(slots, threads, budget_bytes);
    let shutdown = CancelToken::new();
    // The daemon has no fleet-level cancel; per-job cancellation goes
    // through the queue.
    let never = CancelToken::new();
    listener.set_nonblocking(true)?;

    std::thread::scope(|scope| -> std::io::Result<()> {
        for _ in 0..slots {
            scope.spawn(|| queue.worker(opts, &never, &on_done));
        }
        let result = loop {
            if shutdown.is_cancelled() {
                break Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let queue = &queue;
                    let shutdown = &shutdown;
                    scope.spawn(move || handle_connection(stream, queue, shutdown));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => break Err(e),
            }
        };
        // Release every scoped thread before returning — including on
        // a fatal accept error, where skipping this would leave workers
        // parked in the admission wait and the scope joining forever:
        // the shutdown flag stops connection handlers, closing the
        // queue lets workers exit once it drains (a `shutdown` with
        // mode "cancel" has already flipped/cancelled everything, so
        // that drain is immediate).
        shutdown.cancel();
        queue.close();
        result
    })?;

    let peak_active = queue.peak_concurrent();
    Ok(ServeReport {
        jobs: queue.into_reports(),
        slots,
        threads,
        memory_budget_bytes: budget_bytes,
        peak_concurrent_jobs: peak_active,
        wall: t0.elapsed(),
        peak_rss_bytes: peak_rss_bytes(),
    })
}

/// Serves one client connection: read a request line, answer it, repeat
/// until EOF or daemon shutdown. Read timeouts keep the handler
/// responsive to the shutdown flag even with an idle client.
fn handle_connection(stream: TcpStream, queue: &JobQueue, shutdown: &CancelToken) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL * 4));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let request = line.trim();
                if !request.is_empty() {
                    let response = handle_request(request, queue, shutdown);
                    if writer
                        .write_all((response.compact() + "\n").as_bytes())
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                line.clear();
            }
            // Timeout (partial input, if any, stays buffered in `line`
            // and the next read continues it): check the flag and keep
            // listening.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.is_cancelled() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Answers one request line. Never panics: malformed input becomes an
/// `{"ok":false,...}` response.
fn handle_request(line: &str, queue: &JobQueue, shutdown: &CancelToken) -> Json {
    let request = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return error(format!("bad request JSON: {e}")),
    };
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return error("request needs a string `op` field".to_string());
    };
    match op {
        "submit" => {
            let Some(job) = request.get("job") else {
                return error("submit needs a `job` object".to_string());
            };
            let spec = match JobSpec::from_json(job).and_then(|s| s.validate().map(|()| s)) {
                Ok(s) => s,
                Err(e) => return error(format!("bad job: {e}")),
            };
            let name = spec.name.clone();
            match queue.submit(spec) {
                Ok(id) => Json::obj([
                    ("ok", Json::Bool(true)),
                    ("id", Json::num(id as f64)),
                    ("name", Json::str(name)),
                ]),
                Err(e) => error(e),
            }
        }
        "status" => {
            let snapshot = queue.snapshot();
            let filter = match optional_id(&request) {
                Ok(f) => f,
                Err(e) => return error(e),
            };
            if let Some(id) = filter {
                if id >= snapshot.len() {
                    return error(format!("unknown job id {id}"));
                }
            }
            let counts = |phase: crate::scheduler::JobPhase| {
                snapshot.iter().filter(|s| s.phase == phase).count() as f64
            };
            let jobs: Vec<Json> = snapshot
                .iter()
                .filter(|s| filter.is_none_or(|id| s.id == id))
                .map(|s| {
                    let mut fields = vec![
                        ("id".to_string(), Json::num(s.id as f64)),
                        ("name".to_string(), Json::str(&s.name)),
                        ("phase".to_string(), Json::str(s.phase.label())),
                    ];
                    if let Some(status) = &s.status {
                        fields.push(("status".to_string(), Json::str(status.label())));
                        if let JobStatus::Failed(e) = status {
                            fields.push(("error".to_string(), Json::str(e)));
                        }
                    }
                    Json::Obj(fields)
                })
                .collect();
            Json::obj([
                ("ok", Json::Bool(true)),
                ("accepting", Json::Bool(!shutdown.is_cancelled())),
                (
                    "queued",
                    Json::num(counts(crate::scheduler::JobPhase::Queued)),
                ),
                (
                    "running",
                    Json::num(counts(crate::scheduler::JobPhase::Running)),
                ),
                ("done", Json::num(counts(crate::scheduler::JobPhase::Done))),
                ("jobs", Json::Arr(jobs)),
            ])
        }
        "cancel" => match required_id(&request) {
            Err(e) => error(e),
            Ok(id) => {
                let outcome = queue.cancel(id);
                Json::obj([
                    ("ok", Json::Bool(true)),
                    ("id", Json::num(id as f64)),
                    ("outcome", Json::str(outcome.label())),
                ])
            }
        },
        "wait" => match required_id(&request) {
            Err(e) => error(e),
            Ok(id) => match queue.wait(id) {
                None => error(format!("unknown job id {id}")),
                Some(report) => Json::obj([
                    ("ok", Json::Bool(true)),
                    ("id", Json::num(id as f64)),
                    ("fingerprint", Json::str(report.fingerprint())),
                    ("report", report.to_json(true)),
                ]),
            },
        },
        "shutdown" => {
            let cancel_jobs = match request.get("mode").and_then(Json::as_str) {
                None | Some("drain") => false,
                Some("cancel") => true,
                Some(other) => return error(format!("unknown shutdown mode {other:?}")),
            };
            // Close the queue here, not just in the accept loop once it
            // notices the flag: a submit racing that window on another
            // connection would be admitted after cancel_all's snapshot
            // and run to completion, defeating an immediate shutdown.
            // Post-shutdown submits now fail with "queue is closed".
            queue.close();
            if cancel_jobs {
                queue.cancel_all();
            }
            shutdown.cancel();
            Json::obj([("ok", Json::Bool(true))])
        }
        other => error(format!("unknown op {other:?}")),
    }
}

fn error(message: String) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::str(message))])
}

fn required_id(request: &Json) -> Result<usize, String> {
    optional_id(request)?.ok_or_else(|| "request needs a numeric `id` field".to_string())
}

fn optional_id(request: &Json) -> Result<Option<usize>, String> {
    match request.get("id") {
        None => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| "`id` must be a non-negative integer".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::CancelOutcome;
    use std::net::SocketAddr;

    /// Sends one request line, returns the parsed response.
    fn roundtrip(addr: SocketAddr, request: &str) -> Json {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all((request.to_string() + "\n").as_bytes())
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(line.trim()).expect("response parses")
    }

    fn tiny_opts() -> ServeOptions {
        ServeOptions {
            slots: Some(2),
            threads: Some(2),
            ..ServeOptions::default()
        }
    }

    #[test]
    fn daemon_serves_submit_status_wait_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let opts = tiny_opts();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| run_daemon(listener, &opts, |_| {}).unwrap());

            let r = roundtrip(
                addr,
                r#"{"op":"submit","job":{"name":"a","dataset":"restaurant","scale":0.05}}"#,
            );
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
            assert_eq!(r.get("id").unwrap().as_usize(), Some(0));

            let r = roundtrip(addr, r#"{"op":"wait","id":0}"#);
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
            let report = r.get("report").unwrap();
            assert_eq!(report.get("status").unwrap().as_str(), Some("ok"));
            assert!(r.get("fingerprint").unwrap().as_str().unwrap().len() > 1);

            let r = roundtrip(addr, r#"{"op":"status"}"#);
            assert_eq!(r.get("done").unwrap().as_usize(), Some(1));

            let r = roundtrip(addr, r#"{"op":"shutdown"}"#);
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)));

            let report = daemon.join().unwrap();
            assert_eq!(report.jobs.len(), 1);
            assert_eq!(report.jobs[0].status, JobStatus::Ok);
        });
    }

    #[test]
    fn daemon_rejects_malformed_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let opts = tiny_opts();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| run_daemon(listener, &opts, |_| {}).unwrap());
            for (request, needle) in [
                ("not json", "bad request JSON"),
                ("{}", "op"),
                (r#"{"op":"warp"}"#, "unknown op"),
                (r#"{"op":"submit"}"#, "job"),
                (r#"{"op":"submit","job":{"name":"x"}}"#, "either dataset or"),
                (
                    r#"{"op":"submit","job":{"name":"x","dataset":"rexa","theta":9}}"#,
                    "theta",
                ),
                (r#"{"op":"cancel"}"#, "id"),
                (r#"{"op":"wait","id":7}"#, "unknown job id"),
                (
                    r#"{"op":"shutdown","mode":"explode"}"#,
                    "unknown shutdown mode",
                ),
            ] {
                let r = roundtrip(addr, request);
                assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{request}");
                let e = r.get("error").unwrap().as_str().unwrap();
                assert!(e.contains(needle), "{request} -> {e}");
            }
            roundtrip(addr, r#"{"op":"shutdown"}"#);
            let report = daemon.join().unwrap();
            assert!(report.jobs.is_empty());
        });
    }

    #[test]
    fn shutdown_cancel_mode_flips_queued_jobs() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // One slot, so the second and third submissions queue behind
        // the first.
        let opts = ServeOptions {
            slots: Some(1),
            threads: Some(1),
            ..ServeOptions::default()
        };
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| run_daemon(listener, &opts, |_| {}).unwrap());
            for name in ["a", "b", "c"] {
                let r = roundtrip(
                    addr,
                    &format!(
                        r#"{{"op":"submit","job":{{"name":"{name}","dataset":"restaurant","scale":0.05}}}}"#
                    ),
                );
                assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
            }
            let r = roundtrip(addr, r#"{"op":"shutdown","mode":"cancel"}"#);
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
            let report = daemon.join().unwrap();
            assert_eq!(report.jobs.len(), 3);
            // Every job is terminal; at least the tail of the queue was
            // flipped to Cancelled without running.
            assert!(report
                .jobs
                .iter()
                .all(|j| j.status == JobStatus::Cancelled || j.status.is_ok()));
            assert!(report.jobs.iter().any(|j| j.status == JobStatus::Cancelled));
        });
    }

    #[test]
    fn shutdown_closes_the_queue_in_the_handler_itself() {
        // The close must happen in handle_request, not only when the
        // accept loop notices the flag: a submit racing that window
        // would slip past cancel_all and run to completion.
        let queue = JobQueue::new(1, 1, 0);
        let shutdown = CancelToken::new();
        let r = handle_request(r#"{"op":"shutdown","mode":"cancel"}"#, &queue, &shutdown);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert!(shutdown.is_cancelled());
        let spec = JobSpec::from_json(
            &Json::parse(r#"{"name":"late","dataset":"restaurant","scale":0.05}"#).unwrap(),
        )
        .unwrap();
        let err = queue.submit(spec).unwrap_err();
        assert!(err.contains("closed"), "{err}");
    }

    #[test]
    fn cancel_outcome_labels_are_wire_stable() {
        assert_eq!(CancelOutcome::CancelledQueued.label(), "cancelled");
        assert_eq!(CancelOutcome::Cancelling.label(), "cancelling");
        assert_eq!(CancelOutcome::AlreadyDone.label(), "done");
        assert_eq!(CancelOutcome::Unknown.label(), "unknown");
    }
}
