//! Persistent-index query benchmark: build → persist → load → query
//! round trip on the Restaurant profile, emitting `BENCH_query.json` at
//! the workspace root. The build phase runs the full pipeline on the
//! process-wide pool; the load and query phases measure what the
//! serving hot path pays — artifact deserialisation and per-entity
//! match lookups — with p50/p99 latency over thousands of calls.
//! `MINOAN_BENCH_SMOKE=1` shrinks scale and iteration counts for CI,
//! which then validates the emitted JSON via
//! [`minoan_bench::benchutil::check_bench_json`].

use std::time::Instant;

use minoan_bench::benchutil;
use minoan_core::{IndexArtifact, MinoanEr};
use minoan_datagen::DatasetKind;
use minoan_exec::CancelToken;
use minoan_kb::Json;

fn ms(elapsed: std::time::Duration) -> f64 {
    elapsed.as_secs_f64() * 1e3
}

/// Percentile over an already-sorted latency vector (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn main() {
    let scale = benchutil::smoke_scaled(0.5, 0.08);
    let load_iters = benchutil::smoke_scaled(20, 3);
    let query_rounds = benchutil::smoke_scaled(200, 10);

    // Build: the full pipeline (ingest → blocking → similarities →
    // H1-H4) plus index construction, on the process-wide pool.
    let kind = DatasetKind::Restaurant;
    let d = kind.generate_scaled(20180416, scale);
    let matcher = MinoanEr::with_defaults();
    let exec = matcher.config().executor();
    let t = Instant::now();
    let indexed = matcher
        .run_cancellable_indexed(&d.pair, &exec, &CancelToken::new())
        .expect("nothing cancels this run");
    let build_ms = ms(t.elapsed());
    let artifact = IndexArtifact::from_run(kind.name(), &d.pair, indexed, matcher.config());

    // Persist: atomic temp+rename write of the versioned container.
    let dir = std::env::temp_dir().join(format!("minoan-bench-query-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let path = dir.join("query-bench.idx");
    let t = Instant::now();
    let artifact_bytes = artifact.write_to(&path).expect("persist artifact");
    let persist_ms = ms(t.elapsed());

    // Load: full deserialisation, checksums verified every time. The
    // serving registry pays this once per cache miss.
    let mut load_samples = Vec::with_capacity(load_iters);
    for _ in 0..load_iters {
        let t = Instant::now();
        let loaded = IndexArtifact::read_from(&path).expect("load artifact");
        load_samples.push(ms(t.elapsed()));
        std::hint::black_box(&loaded);
    }
    load_samples.sort_by(|a, b| a.total_cmp(b));
    let loaded = IndexArtifact::read_from(&path).expect("load artifact");

    // Query: per-entity match lookups against the loaded artifact —
    // the `/v1/indexes/{id}/match` hot path with the HTTP layer peeled
    // off. Every matched entity on both sides, `query_rounds` times.
    let pairs = loaded.matched_uri_pairs();
    assert!(!pairs.is_empty(), "bench profile resolved zero matches");
    let mut query_samples = Vec::with_capacity(2 * pairs.len() * query_rounds);
    let mut answered = 0usize;
    for _ in 0..query_rounds {
        for (first, second) in &pairs {
            for uri in [first, second] {
                let t = Instant::now();
                let answer = loaded.match_query(uri, 10);
                query_samples.push(ms(t.elapsed()));
                if std::hint::black_box(answer).is_some() {
                    answered += 1;
                }
            }
        }
    }
    assert_eq!(
        answered,
        query_samples.len(),
        "matched entity had no answer"
    );
    query_samples.sort_by(|a, b| a.total_cmp(b));
    let mean_ms = query_samples.iter().sum::<f64>() / query_samples.len() as f64;

    let _ = std::fs::remove_dir_all(&dir);

    let sweep = benchutil::thread_sweep();
    let mut fields = benchutil::trajectory_fields("index_query", kind.name(), scale, &sweep);
    fields.push((
        "entities".into(),
        Json::arr(
            loaded
                .meta()
                .entity_counts
                .iter()
                .map(|&n| Json::num(n as f64)),
        ),
    ));
    fields.push(("matched_pairs".into(), Json::num(pairs.len() as f64)));
    fields.push(("artifact_bytes".into(), Json::num(artifact_bytes as f64)));
    fields.push(("build_ms".into(), Json::Num(build_ms)));
    fields.push(("persist_ms".into(), Json::Num(persist_ms)));
    fields.push((
        "load_ms".into(),
        Json::obj([
            ("iterations", Json::num(load_samples.len() as f64)),
            ("p50", Json::Num(percentile(&load_samples, 50.0))),
            ("p99", Json::Num(percentile(&load_samples, 99.0))),
            ("min", Json::Num(load_samples[0])),
        ]),
    ));
    fields.push((
        "query_ms".into(),
        Json::obj([
            ("calls", Json::num(query_samples.len() as f64)),
            ("p50", Json::Num(percentile(&query_samples, 50.0))),
            ("p99", Json::Num(percentile(&query_samples, 99.0))),
            ("max", Json::Num(query_samples[query_samples.len() - 1])),
            ("mean", Json::Num(mean_ms)),
        ]),
    ));
    benchutil::emit_checked(
        env!("CARGO_MANIFEST_DIR"),
        "BENCH_query.json",
        &Json::obj(fields),
    );
}
