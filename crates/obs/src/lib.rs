//! # minoan-obs — the observability layer of MinoanER
//!
//! A registry-free, dependency-free (std-only) observability kernel the
//! whole workspace can sit on — it lives *below* `minoan-exec` in the
//! dependency graph, so the executor, the KB layer, the pipeline and
//! the serving daemon all thread through the same three primitives:
//!
//! - **Leveled console logging** ([`Level`], the [`error!`]/[`warn!`]/
//!   [`info!`]/[`debug!`] macros): one stderr sink whose threshold comes
//!   from `MINOAN_LOG=error|warn|info|debug` (default `info`) or an
//!   explicit [`set_console_level`] (the CLI's `--log-level`). This is
//!   the replacement for the ad-hoc `eprintln!`s that used to be
//!   scattered through cli/serve/exec: `MINOAN_LOG=error` silences all
//!   non-essential output.
//! - **Structured tracing** ([`trace`]): per-job/request trace IDs,
//!   span enter/exit records for pipeline stages, executor waves,
//!   artifact I/O and registry loads, plus discrete events (job
//!   lifecycle transitions, shed decisions, patch completions) — all
//!   buffered in one lock-cheap bounded ring (drop-oldest, with an
//!   exported drop counter) that live subscribers (`GET /v1/events`)
//!   and the span-tree endpoint (`GET /v1/jobs/{id}/trace`) read from.
//!   A **disabled** collector costs exactly one relaxed atomic load per
//!   span/event site.
//! - **Log-bucketed latency histograms** ([`hist::Histogram`]):
//!   power-of-two microsecond buckets updated with relaxed atomics,
//!   merged on read into [`hist::Snapshot`]s that yield quantiles and
//!   Prometheus `_bucket`/`_sum`/`_count` families. Registry-free by
//!   design: each owner (the serving layer, a bench) holds its own
//!   histograms and renders them itself.
//!
//! None of this may perturb results: observation records what happened,
//! it never participates in it — the bit-identity gates run with
//! tracing enabled at `debug` and compare fingerprints against
//! untraced runs.

#![warn(missing_docs)]

pub mod hist;
pub mod trace;

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Severity of a log line, event or span. Ordered: `Error` is the most
/// severe (and always printed), `Debug` the least.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error,
    /// Degraded behavior worth a human's attention (mis-estimates,
    /// retries, shedding, dropped subscribers).
    Warn,
    /// Normal operational milestones (job lifecycle, server start).
    Info,
    /// High-volume diagnostics (spans, waves, artifact I/O).
    Debug,
}

impl Level {
    /// Canonical lower-case name.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// The level as a small integer (`error` = 0 … `debug` = 3).
    pub fn rank(self) -> u8 {
        match self {
            Level::Error => 0,
            Level::Warn => 1,
            Level::Info => 2,
            Level::Debug => 3,
        }
    }

    /// The inverse of [`Level::rank`]; `None` for out-of-range values.
    pub fn from_rank(rank: u8) -> Option<Level> {
        match rank {
            0 => Some(Level::Error),
            1 => Some(Level::Warn),
            2 => Some(Level::Info),
            3 => Some(Level::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!(
                "unknown log level {other:?} (expected error|warn|info|debug)"
            )),
        }
    }
}

/// The console threshold, packed into one atomic: `u8::MAX` means "not
/// yet resolved from the environment".
static CONSOLE_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

/// Default console threshold when neither `MINOAN_LOG` nor
/// [`set_console_level`] says otherwise.
pub const DEFAULT_CONSOLE_LEVEL: Level = Level::Info;

/// Resolves the console threshold: an explicit [`set_console_level`]
/// wins, then `MINOAN_LOG`, then [`DEFAULT_CONSOLE_LEVEL`].
pub fn console_level() -> Level {
    let raw = CONSOLE_LEVEL.load(Ordering::Relaxed);
    if let Some(level) = Level::from_rank(raw) {
        return level;
    }
    let level = std::env::var("MINOAN_LOG")
        .ok()
        .and_then(|v| v.parse::<Level>().ok())
        .unwrap_or(DEFAULT_CONSOLE_LEVEL);
    CONSOLE_LEVEL.store(level.rank(), Ordering::Relaxed);
    level
}

/// Overrides the console threshold (the CLI's `--log-level`); wins over
/// `MINOAN_LOG`.
pub fn set_console_level(level: Level) {
    CONSOLE_LEVEL.store(level.rank(), Ordering::Relaxed);
}

/// Whether a message at `level` would reach the console sink. The log
/// macros check this before building their message, so a silenced line
/// costs no formatting.
pub fn console_enabled(level: Level) -> bool {
    level <= console_level()
}

/// Writes one formatted line to the console sink (stderr). Called by
/// the log macros after their level check; direct callers should prefer
/// the macros.
pub fn console_write(level: Level, name: &str, message: &fmt::Arguments<'_>) {
    eprintln!("[{level}] {name}: {message}");
}

/// Logs at [`Level::Error`]: `error!("site.name", "format {}", args)`.
/// The line goes to the console sink when the threshold admits it and
/// into the trace ring as an event when the collector is enabled.
#[macro_export]
macro_rules! error {
    ($name:expr, $($arg:tt)*) => {
        $crate::trace::log_event($crate::Level::Error, $name, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`]; see [`error!`].
#[macro_export]
macro_rules! warn {
    ($name:expr, $($arg:tt)*) => {
        $crate::trace::log_event($crate::Level::Warn, $name, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`]; see [`error!`].
#[macro_export]
macro_rules! info {
    ($name:expr, $($arg:tt)*) => {
        $crate::trace::log_event($crate::Level::Info, $name, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`]; see [`error!`].
#[macro_export]
macro_rules! debug {
    ($name:expr, $($arg:tt)*) => {
        $crate::trace::log_event($crate::Level::Debug, $name, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!("warn".parse::<Level>(), Ok(Level::Warn));
        assert_eq!("WARNING".parse::<Level>(), Ok(Level::Warn));
        assert_eq!("debug".parse::<Level>(), Ok(Level::Debug));
        assert!("loud".parse::<Level>().is_err());
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::from_rank(level.rank()), Some(level));
            assert_eq!(level.label().parse::<Level>(), Ok(level));
        }
        assert_eq!(Level::from_rank(9), None);
    }

    #[test]
    fn console_threshold_is_settable() {
        set_console_level(Level::Error);
        assert!(console_enabled(Level::Error));
        assert!(!console_enabled(Level::Warn));
        set_console_level(Level::Debug);
        assert!(console_enabled(Level::Debug));
        set_console_level(DEFAULT_CONSOLE_LEVEL);
    }
}
