//! Resolving highly heterogeneous Web KBs — the scenario the paper's
//! introduction motivates.
//!
//! Generates the BBCmusic–DBpedia analogue (extreme schema heterogeneity:
//! one side scatters its attributes over dozens of predicate names and
//! buries values in verbose abstracts), runs MinoanER and the value-only
//! BSL baseline, and shows why names + neighbors beat values alone.
//!
//! Run with `cargo run --release --example web_kbs`.

use minoaner::baselines::run_bsl;
use minoaner::core::{build_blocks, MinoanConfig, MinoanEr};
use minoaner::datagen::DatasetKind;
use minoaner::eval::MatchQuality;

fn main() {
    let d = DatasetKind::BbcDbpedia.generate_scaled(42, 0.2);
    println!(
        "{}: |E1|={} ({} attrs), |E2|={} ({} attrs), {} ground-truth matches",
        d.name,
        d.pair.first.entity_count(),
        d.pair.first.attr_count(),
        d.pair.second.entity_count(),
        d.pair.second.attr_count(),
        d.truth.len()
    );

    let out = MinoanEr::with_defaults().run(&d.pair);
    let q = MatchQuality::evaluate(&out.matching, &d.truth);
    println!(
        "MinoanER   P {:5.1}%  R {:5.1}%  F1 {:5.1}%   (H1 {} / H2 {} / H3 {} / H4 -{})",
        q.precision() * 100.0,
        q.recall() * 100.0,
        q.f1() * 100.0,
        out.report.h1_matches,
        out.report.h2_matches,
        out.report.h3_matches,
        out.report.h4_removed
    );

    // BSL gets the same blocks but only value similarity — and an oracle
    // picking its best of 480 configurations.
    let art = build_blocks(&d.pair, &MinoanConfig::default());
    let bsl = run_bsl(
        &d.pair.first,
        &d.pair.second,
        &[&art.name_blocks, &art.token_blocks],
        &d.truth,
    );
    println!(
        "BSL        P {:5.1}%  R {:5.1}%  F1 {:5.1}%   (best of {} configs: {})",
        bsl.quality.precision() * 100.0,
        bsl.quality.recall() * 100.0,
        bsl.quality.f1() * 100.0,
        bsl.configs_evaluated,
        bsl.config
    );
    println!("\nEven oracle-tuned value similarity cannot resolve homonym artists;");
    println!("MinoanER's neighbor evidence (birthplaces, collaborations) can.");
}
