//! # minoan-exec — the executor layer of MinoanER
//!
//! MinoanER is a *massively parallel* ER method: the paper's efficiency
//! argument (§III) is that every similarity is a function of block
//! statistics computed in one data-parallel pass over blocks. This crate
//! provides the executor abstraction the hot layers (blocking, similarity
//! indexing, matching) run on:
//!
//! - [`Executor`] with a [`Sequential`](ExecutorKind::Sequential), a
//!   [`Rayon`](ExecutorKind::Rayon) (scoped threads per wave) and a
//!   [`Pool`](ExecutorKind::Pool) backend (waves submitted as
//!   quantum-bounded task batches into the process-wide work-stealing
//!   [`pool`]), selected by configuration;
//! - ordered fan-out primitives ([`Executor::map_parts`],
//!   [`Executor::map_range`]) whose merged output is **independent of the
//!   thread count** (and, for the pool backend, of the task count), so
//!   parallel runs are bit-identical to sequential ones by construction;
//! - [`SharedSlice`], the unsafe-but-audited escape hatch for writing
//!   disjoint index ranges of one buffer from multiple threads (CSR
//!   fills and transposes);
//! - [`CancelToken`], cooperative cancellation observed at
//!   [checkpoints](CancelToken::checkpoint) **between** waves — and, on
//!   the pool backend, between the quantum-bounded *tasks* of a wave:
//!   an [`Executor::with_cancel`] executor stops claiming tasks once the
//!   token fires and unwinds with [`Cancelled`] (catch it at a stage
//!   boundary with [`catch_cancel`]), so cancellation latency is one
//!   task quantum, not one unbounded wave.
//!
//! Design rule for all call sites: a parallel algorithm must produce the
//! *same bytes* as its one-part sequential specialization. Partial
//! results are always merged in part order, floating-point accumulation
//! order per key is kept identical across shard counts, and ties are
//! broken by entity id — never by thread arrival order.

#![warn(missing_docs)]

pub mod backoff;
pub mod cancel;
pub mod faults;
pub mod pool;
pub mod shared;

pub use cancel::{catch_cancel, CancelReason, CancelToken, Cancelled};
pub use pool::PoolStats;
pub use shared::SharedSlice;

use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Which backend an [`Executor`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutorKind {
    /// Everything on the calling thread, one part per fan-out.
    Sequential,
    /// Data-parallel over the rayon backend (structured scoped threads,
    /// spawned per wave).
    Rayon,
    /// Data-parallel over the process-wide work-stealing [`pool`]: waves
    /// become batches of quantum-bounded tasks, so concurrent jobs share
    /// one fixed worker set instead of oversubscribing the machine.
    #[default]
    Pool,
}

impl ExecutorKind {
    /// Canonical lower-case name (`"sequential"` / `"rayon"` / `"pool"`).
    pub fn name(self) -> &'static str {
        match self {
            ExecutorKind::Sequential => "sequential",
            ExecutorKind::Rayon => "rayon",
            ExecutorKind::Pool => "pool",
        }
    }
}

impl fmt::Display for ExecutorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ExecutorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sequential" | "seq" | "serial" => Ok(ExecutorKind::Sequential),
            "rayon" | "parallel" | "par" => Ok(ExecutorKind::Rayon),
            "pool" => Ok(ExecutorKind::Pool),
            other => Err(format!(
                "unknown executor {other:?} (expected sequential|rayon|pool)"
            )),
        }
    }
}

/// Hard cap on worker threads. The rayon backend spawns one scoped OS
/// thread per part, so an absurd `--threads` request must not translate
/// into an absurd spawn count. (The pool backend never spawns past
/// `available_parallelism()`; for it this only caps [`Executor::threads`]
/// as a partition hint.)
pub const MAX_THREADS: usize = 256;

/// Upper bound on items per pool task: [`ExecutorKind::Pool`] waves over
/// `n` items are split into at least `n / POOL_TASK_ITEMS` tasks, so a
/// cancel request is observed within roughly this many items of work.
pub const POOL_TASK_ITEMS: usize = 1024;

/// Upper bound on bytes per pool task for byte-range waves
/// ([`Executor::map_chunks`]); the byte-domain analogue of
/// [`POOL_TASK_ITEMS`]. Boundary alignment may still produce a larger
/// chunk when a single unsplittable line dominates the input.
pub const POOL_TASK_BYTES: usize = 256 << 10;

/// A configured executor: backend, thread budget, and an optional
/// cancellation token observed mid-wave by the pool backend.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    kind: ExecutorKind,
    threads: usize,
    cancel: Option<CancelToken>,
}

impl Executor {
    /// An executor of `kind` with a thread budget (`0` = all available).
    pub fn new(kind: ExecutorKind, threads: usize) -> Self {
        Self {
            kind,
            threads,
            cancel: None,
        }
    }

    /// The sequential executor.
    pub fn sequential() -> Self {
        Self::new(ExecutorKind::Sequential, 1)
    }

    /// The rayon executor using all available parallelism.
    pub fn rayon() -> Self {
        Self::new(ExecutorKind::Rayon, 0)
    }

    /// The pool executor using the whole process-wide pool.
    pub fn pool() -> Self {
        Self::new(ExecutorKind::Pool, 0)
    }

    /// This executor with `cancel` observed between pool tasks: a pool
    /// wave stops claiming tasks once the token fires and unwinds with
    /// [`Cancelled`] (recover at a stage boundary via [`catch_cancel`]).
    /// The sequential and rayon backends ignore the token mid-wave;
    /// their cancellation latency stays one full wave.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The cancellation token observed by pool waves, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The backend kind.
    pub fn kind(&self) -> ExecutorKind {
        self.kind
    }

    /// Effective number of worker threads (always in
    /// `1..=`[`MAX_THREADS`]; `Sequential` is 1). For the pool backend
    /// this is the partition hint — `0` means the pool's worker count,
    /// i.e. `available_parallelism()` — and reading it never starts the
    /// pool.
    pub fn threads(&self) -> usize {
        match self.kind {
            ExecutorKind::Sequential => 1,
            ExecutorKind::Rayon => {
                let requested = if self.threads == 0 {
                    rayon::current_num_threads()
                } else {
                    self.threads
                };
                requested.clamp(1, MAX_THREADS)
            }
            ExecutorKind::Pool => {
                let requested = if self.threads == 0 {
                    pool::default_workers()
                } else {
                    self.threads
                };
                requested.clamp(1, MAX_THREADS)
            }
        }
    }

    /// Splits `0..n` into at most [`Executor::threads`] contiguous,
    /// balanced, ascending ranges. Deterministic in `n` and the thread
    /// count; never returns an empty range (and returns no ranges for
    /// `n == 0`).
    pub fn part_ranges(&self, n: usize) -> Vec<Range<usize>> {
        balanced_ranges(n, self.threads())
    }

    /// How many quantum-bounded tasks a pool wave over `n` items splits
    /// into: enough that no task exceeds [`POOL_TASK_ITEMS`] items,
    /// never fewer than the thread hint, never more than `n`.
    fn pool_task_count(&self, n: usize) -> usize {
        n.div_ceil(POOL_TASK_ITEMS).max(self.threads()).min(n)
    }

    /// Runs `f` over each range, one scoped thread per range (or inline
    /// when there is at most one), returning results **in range order**.
    /// The rayon/sequential fan-out behind [`Executor::map_parts`] and
    /// [`Executor::map_chunks`].
    fn run_ranges<R, F>(ranges: Vec<Range<usize>>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        if ranges.len() <= 1 {
            return ranges.into_iter().map(f).collect();
        }
        let mut out: Vec<Option<R>> = ranges.iter().map(|_| None).collect();
        rayon::scope(|s| {
            let f = &f;
            for (slot, range) in out.iter_mut().zip(ranges) {
                s.spawn(move || {
                    *slot = Some(f(range));
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("executor range did not run"))
            .collect()
    }

    /// The pool fan-out: the submitting thread runs a claim loop over
    /// the wave itself (**help-first**, like rayon's `join`) while one
    /// helper claim loop per pool worker is injected into the
    /// process-wide pool. Claim loops pick ranges off an ascending
    /// atomic cursor and write result slots indexed by range position,
    /// so the output order — and therefore every downstream merge — is
    /// independent of which thread ran what.
    ///
    /// Helping instead of parking matters twice over: a wave makes
    /// progress immediately even when every pool worker is busy with
    /// other jobs' waves, and a fleet of concurrent jobs degrades to
    /// the OS timeslicing `slots` working threads (plus the fixed
    /// worker set donating to whichever wave was submitted last) rather
    /// than funnelling every job's quanta through the workers with a
    /// park/wake per wave. Helpers that arrive after the cursor is
    /// drained exit immediately.
    ///
    /// If a cancel token fires mid-wave, claim loops stop picking up
    /// tasks and the wave unwinds by panicking with [`Cancelled`] —
    /// never by returning a partial result vector.
    fn run_tasks_pool<R, F>(&self, ranges: Vec<Range<usize>>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let n = ranges.len();
        if n <= 1 {
            return ranges.into_iter().map(f).collect();
        }
        let mut slots: Vec<Option<R>> = ranges.iter().map(|_| None).collect();
        let slots_view = SharedSlice::new(&mut slots);
        let cursor = AtomicUsize::new(0);
        let aborted = AtomicBool::new(false);
        let cancel = self.cancel.as_ref();
        let workpool = pool::global();
        let claim_loop = {
            let (ranges, f, cursor, aborted, slots_view) =
                (&ranges, &f, &cursor, &aborted, &slots_view);
            move || {
                let mut ran = 0u64;
                loop {
                    if aborted.load(Ordering::Relaxed) || cancel.is_some_and(|c| c.is_cancelled()) {
                        aborted.store(true, Ordering::Relaxed);
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(ranges[i].clone()))) {
                        Ok(value) => {
                            // SAFETY: slot `i` was claimed by exactly
                            // this claim loop via the cursor.
                            unsafe { slots_view.write(i, Some(value)) };
                            ran += 1;
                        }
                        Err(payload) => {
                            // Stop sibling loops from burning work,
                            // then let the scope rethrow.
                            aborted.store(true, Ordering::Relaxed);
                            pool::note_tasks(workpool, ran);
                            resume_unwind(payload);
                        }
                    }
                }
                pool::note_tasks(workpool, ran);
            }
        };
        // The submitter claims one range up front, so at most `n - 1`
        // helpers can ever find work.
        let helpers = workpool.workers().min(n - 1);
        workpool.scope(|s| {
            for _ in 0..helpers {
                s.spawn(claim_loop);
            }
            claim_loop();
        });
        if slots.iter().any(Option::is_none) {
            // Only a cancelled wave leaves gaps (a panicking wave
            // rethrows out of the scope above before reaching here).
            std::panic::panic_any(Cancelled);
        }
        slots
            .into_iter()
            .map(|r| r.expect("pool wave task did not run"))
            .collect()
    }

    /// Dispatches a wave of index ranges to the backend. Each wave is
    /// a debug-level span in the trace collector (a disabled collector
    /// reduces this to one relaxed atomic load); observation never
    /// influences partitioning or merge order.
    fn run_wave<R, F>(&self, ranges: Vec<Range<usize>>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let tasks = ranges.len();
        let _wave = minoan_obs::trace::span(minoan_obs::Level::Debug, "exec.wave", || {
            format!("{tasks} tasks on {}", self.kind.name())
        });
        match self.kind {
            ExecutorKind::Pool => self.run_tasks_pool(ranges, f),
            ExecutorKind::Sequential | ExecutorKind::Rayon => Self::run_ranges(ranges, f),
        }
    }

    /// Fans `f` out over the part ranges of `0..n`, returning one result
    /// per part **in part order**. The sequential backend runs a single
    /// part covering the whole range, so `map_parts` callers that merge
    /// partials by concatenation degrade to the plain sequential
    /// algorithm. The pool backend splits into quantum-bounded tasks
    /// (often more parts than threads — see [`POOL_TASK_ITEMS`]); merge
    /// logic must stay part-count-independent, which the equivalence
    /// suite enforces.
    pub fn map_parts<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = match self.kind {
            ExecutorKind::Pool => balanced_ranges(n, self.pool_task_count(n.max(1))),
            _ => self.part_ranges(n),
        };
        self.run_wave(ranges, f)
    }

    /// Maps `f` over `0..n`, returning results in index order.
    pub fn map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut parts = self.map_parts(n, |range| range.map(&f).collect::<Vec<R>>());
        if parts.len() == 1 {
            return parts.pop().expect("one part");
        }
        let mut out = Vec::with_capacity(n);
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Runs `f` once per shard id in `0..shards`, returning results in
    /// shard order. Exactly [`Executor::map_range`], named for call sites
    /// that fan out over ownership shards (`key % shards`) rather than
    /// index ranges.
    pub fn map_shards<R, F>(&self, shards: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.map_range(shards, f)
    }

    /// Splits `0..len` into at most [`Executor::threads`] contiguous
    /// ranges whose interior boundaries are adjusted by `align`: each
    /// proposed boundary `p` is moved to `align(p)`, which must return a
    /// position in `p..=len` that is safe to cut at (for line-oriented
    /// byte input: the position just after the next `\n`). Degenerate
    /// (empty) ranges produced by colliding boundaries are dropped, so
    /// the result is a partition of `0..len` into non-empty ranges.
    ///
    /// Deterministic in `len`, the thread count and `align` — and for a
    /// single thread it returns the whole range, so chunked callers
    /// degrade to the plain sequential algorithm.
    pub fn chunk_ranges<B>(&self, len: usize, align: B) -> Vec<Range<usize>>
    where
        B: Fn(usize) -> usize,
    {
        chunk_ranges_for(len, self.threads(), align)
    }

    /// Fans `f` out over boundary-aligned chunks of `0..len` (see
    /// [`Executor::chunk_ranges`]), returning one result per chunk **in
    /// chunk order**. This is the byte-range fan-out primitive behind the
    /// streaming parsers: `align` keeps every chunk line-complete, each
    /// worker parses its chunk into a partial, and the caller merges the
    /// partials in chunk order. The pool backend bounds chunks to
    /// roughly [`POOL_TASK_BYTES`] each.
    pub fn map_chunks<R, B, F>(&self, len: usize, align: B, f: F) -> Vec<R>
    where
        R: Send,
        B: Fn(usize) -> usize,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = match self.kind {
            ExecutorKind::Pool => {
                let parts = len.div_ceil(POOL_TASK_BYTES).max(self.threads()).min(len);
                chunk_ranges_for(len, parts, align)
            }
            _ => self.chunk_ranges(len, align),
        };
        self.run_wave(ranges, f)
    }
}

/// Splits `0..n` into at most `parts` contiguous, balanced, ascending
/// non-empty ranges (no ranges for `n == 0`).
fn balanced_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Splits `0..len` into at most `parts` boundary-aligned non-empty
/// ranges; the partition behind [`Executor::chunk_ranges`].
fn chunk_ranges_for<B>(len: usize, parts: usize, align: B) -> Vec<Range<usize>>
where
    B: Fn(usize) -> usize,
{
    let mut ranges = Vec::new();
    let mut start = 0usize;
    for r in balanced_ranges(len, parts) {
        if r.end >= len {
            if start < len {
                ranges.push(start..len);
            }
            break;
        }
        let end = align(r.end).min(len);
        debug_assert!(end >= r.end, "align must not move a boundary backwards");
        if end > start {
            ranges.push(start..end);
            start = end;
        }
        if start >= len {
            break;
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [Executor; 5] {
        [
            Executor::sequential(),
            Executor::new(ExecutorKind::Rayon, 3),
            Executor::new(ExecutorKind::Rayon, 16),
            Executor::new(ExecutorKind::Pool, 3),
            Executor::new(ExecutorKind::Pool, 16),
        ]
    }

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!("seq".parse::<ExecutorKind>(), Ok(ExecutorKind::Sequential));
        assert_eq!("RAYON".parse::<ExecutorKind>(), Ok(ExecutorKind::Rayon));
        assert_eq!("par".parse::<ExecutorKind>(), Ok(ExecutorKind::Rayon));
        assert_eq!("pool".parse::<ExecutorKind>(), Ok(ExecutorKind::Pool));
        assert_eq!("Pool".parse::<ExecutorKind>(), Ok(ExecutorKind::Pool));
        assert!("gpu".parse::<ExecutorKind>().is_err());
        assert_eq!(ExecutorKind::Sequential.to_string(), "sequential");
        assert_eq!(ExecutorKind::Pool.to_string(), "pool");
    }

    #[test]
    fn pool_is_the_default_backend() {
        assert_eq!(ExecutorKind::default(), ExecutorKind::Pool);
        assert_eq!(Executor::default().kind(), ExecutorKind::Pool);
    }

    #[test]
    fn threads_are_effective() {
        assert_eq!(Executor::sequential().threads(), 1);
        assert_eq!(Executor::new(ExecutorKind::Rayon, 5).threads(), 5);
        assert_eq!(Executor::new(ExecutorKind::Pool, 5).threads(), 5);
        assert!(Executor::rayon().threads() >= 1);
        assert!(Executor::pool().threads() >= 1);
    }

    #[test]
    fn absurd_thread_requests_are_clamped() {
        for kind in [ExecutorKind::Rayon, ExecutorKind::Pool] {
            let exec = Executor::new(kind, 1_000_000);
            assert_eq!(exec.threads(), MAX_THREADS);
            // And the fan-out still works at the cap.
            assert_eq!(exec.map_range(10, |i| i).len(), 10);
        }
    }

    #[test]
    fn part_ranges_partition_the_input() {
        for exec in both() {
            for n in [0usize, 1, 2, 7, 100] {
                let ranges = exec.part_ranges(n);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "contiguous ascending");
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                assert_eq!(expect, n);
            }
        }
    }

    #[test]
    fn map_range_is_ordered_regardless_of_backend() {
        let expected: Vec<usize> = (0..101).map(|i| i * i).collect();
        for exec in both() {
            assert_eq!(exec.map_range(101, |i| i * i), expected);
        }
    }

    #[test]
    fn map_range_is_ordered_across_many_pool_quanta() {
        // Enough items that the pool wave splits into many more tasks
        // than workers; order must still be exact.
        let n = POOL_TASK_ITEMS * 7 + 13;
        let expected: Vec<usize> = (0..n).map(|i| i ^ 0xA5).collect();
        let exec = Executor::pool();
        assert_eq!(exec.map_range(n, |i| i ^ 0xA5), expected);
    }

    #[test]
    fn map_parts_merges_in_part_order() {
        for exec in both() {
            let parts = exec.map_parts(50, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_shards_runs_every_shard() {
        for exec in both() {
            assert_eq!(exec.map_shards(5, |s| s), vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn zero_items_is_fine() {
        for exec in both() {
            assert!(exec.map_parts(0, |_| 0u8).is_empty());
            assert!(exec.map_range(0, |_| 0u8).is_empty());
            assert!(exec.map_chunks(0, |p| p, |_| 0u8).is_empty());
        }
    }

    #[test]
    fn cancelled_pool_wave_unwinds_with_cancelled() {
        let token = CancelToken::new();
        let exec = Executor::new(ExecutorKind::Pool, 2).with_cancel(token.clone());
        let n = POOL_TASK_ITEMS * 64;
        let cancel_at = AtomicUsize::new(0);
        let result = catch_cancel(|| {
            exec.map_range(n, |i| {
                // Fire the token from inside the wave once it is
                // clearly mid-flight.
                if cancel_at.fetch_add(1, Ordering::Relaxed) == POOL_TASK_ITEMS {
                    token.cancel();
                }
                i as u64
            });
            Ok(())
        });
        assert_eq!(result, Err(Cancelled));
    }

    #[test]
    fn uncancelled_token_does_not_disturb_results() {
        let token = CancelToken::new();
        let exec = Executor::pool().with_cancel(token);
        let expected: Vec<usize> = (0..5000).map(|i| i * 2).collect();
        assert_eq!(exec.map_range(5000, |i| i * 2), expected);
    }

    #[test]
    fn pool_wave_panics_propagate() {
        let exec = Executor::new(ExecutorKind::Pool, 4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.map_range(10_000, |i| {
                if i == 4321 {
                    panic!("wave boom");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must cross the wave");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"wave boom"));
        // The executor (and pool) remain usable afterwards.
        assert_eq!(exec.map_range(3, |i| i), vec![0, 1, 2]);
    }

    /// Boundary alignment for line-oriented bytes: cut just after the
    /// next newline at or past the proposed position.
    fn after_newline(data: &[u8]) -> impl Fn(usize) -> usize + '_ {
        move |p| {
            data[p..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|off| p + off + 1)
                .unwrap_or(data.len())
        }
    }

    #[test]
    fn chunk_ranges_partition_and_respect_boundaries() {
        let data = b"alpha\nbeta\ngamma\ndelta\nepsilon\nzeta\n";
        for exec in both() {
            let ranges = exec.chunk_ranges(data.len(), after_newline(data));
            let mut expect = 0;
            for r in &ranges {
                assert_eq!(r.start, expect, "contiguous ascending");
                assert!(!r.is_empty());
                // Every chunk ends just after a newline (or at EOF).
                assert!(r.end == data.len() || data[r.end - 1] == b'\n');
                expect = r.end;
            }
            assert_eq!(expect, data.len());
        }
    }

    #[test]
    fn chunk_ranges_collapse_when_one_line_dominates() {
        // A single long line: every boundary aligns to EOF, so exactly
        // one chunk covers everything regardless of the thread count.
        let data = vec![b'x'; 1000];
        for exec in both() {
            let ranges = exec.chunk_ranges(data.len(), after_newline(&data));
            assert_eq!(ranges, vec![0..data.len()]);
        }
    }

    #[test]
    fn map_chunks_merges_in_chunk_order() {
        let text: String = (0..200).map(|i| format!("line{i}\n")).collect();
        let data = text.as_bytes();
        let expected: Vec<&str> = text.lines().collect();
        for exec in both() {
            let parts = exec.map_chunks(data.len(), after_newline(data), |r| {
                std::str::from_utf8(&data[r])
                    .unwrap()
                    .lines()
                    .map(String::from)
                    .collect::<Vec<_>>()
            });
            let flat: Vec<String> = parts.into_iter().flatten().collect();
            assert_eq!(flat, expected);
        }
    }
}
