//! Deterministic delta streams drawn from a rendered profile.
//!
//! The delta-equivalence tests and the patch benchmarks both need the
//! same thing: a reproducible sequence of entity upserts and deletes
//! that exercises an *existing* dataset — renames of live entities,
//! brand-new descriptions, and tombstones — without hand-writing
//! fixtures per profile. [`mutate_stream`] derives that sequence from
//! `(kind, seed, scale, mutate_seed)` alone, so a test and a bench
//! that pass the same four numbers replay byte-identical streams.
//!
//! The generator never inspects pipeline output; it only reads the
//! rendered [`KbPair`]. That keeps the stream a pure function of the
//! dataset, independent of matcher configuration.

use minoan_kb::delta::DeltaOp;
use minoan_kb::{KbSide, KnowledgeBase, Object, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datasets::DatasetKind;
use crate::words::synth_word;

/// Upsert share of the stream, in percent; the rest splits between
/// fresh inserts and deletes (see `mutate_stream`).
const RENAME_PCT: u32 = 55;
const INSERT_PCT: u32 = 25;

/// Generates `n_ops` deterministic delta ops against the dataset that
/// `kind.generate_scaled(seed, scale)` renders.
///
/// The mix is roughly 55% rewrites of live entities (one literal
/// perturbed), 25% fresh descriptions cloned from a live donor, and
/// 20% tombstones. `mutate_seed` varies the stream without touching
/// the base dataset, so one rendered pair can serve many streams.
pub fn mutate_stream(
    kind: DatasetKind,
    seed: u64,
    scale: f64,
    mutate_seed: u64,
    n_ops: usize,
) -> Vec<DeltaOp> {
    let pair = kind.generate_scaled(seed, scale).pair;
    let mut rng = StdRng::seed_from_u64(mutate_seed ^ (kind as u64).rotate_left(17) ^ 0x6d69_6e6f);
    let mut ops = Vec::with_capacity(n_ops);
    let mut fresh = 0usize;
    for _ in 0..n_ops {
        let side = if rng.gen_bool(0.5) {
            KbSide::First
        } else {
            KbSide::Second
        };
        let kb = pair.kb(side);
        let roll = rng.gen_range(0..100u32);
        let op = if roll < RENAME_PCT {
            rename_op(kb, side, &mut rng)
        } else if roll < RENAME_PCT + INSERT_PCT {
            fresh += 1;
            insert_op(kb, side, fresh, &mut rng)
        } else {
            delete_op(kb, side, &mut rng)
        };
        ops.push(op);
    }
    ops
}

/// Picks an entity uniformly; generation only, so a tombstoned or
/// previously-deleted URI reappearing in the stream is fine — the
/// apply semantics make those well-defined.
fn pick_entity(kb: &KnowledgeBase, rng: &mut StdRng) -> minoan_kb::EntityId {
    let n = kb.entity_count();
    kb.entities()
        .nth(rng.gen_range(0..n))
        .expect("non-empty KB")
}

/// Reads an entity's description back out as raw wire statements.
fn raw_statements(kb: &KnowledgeBase, e: minoan_kb::EntityId) -> Vec<(String, Object)> {
    kb.statements(e)
        .iter()
        .map(|s| {
            let attr = kb.attr_name(s.attr).to_string();
            let obj = match &s.value {
                Value::Literal(l) => Object::Literal(l.to_string()),
                Value::Entity(t) => Object::Uri(kb.entity_uri(*t).to_string()),
            };
            (attr, obj)
        })
        .collect()
}

/// Upsert that keeps the URI but perturbs one literal — the "a source
/// record was corrected" case that moves tokens without moving edges.
fn rename_op(kb: &KnowledgeBase, side: KbSide, rng: &mut StdRng) -> DeltaOp {
    let e = pick_entity(kb, rng);
    let mut statements = raw_statements(kb, e);
    let literal_slots: Vec<usize> = statements
        .iter()
        .enumerate()
        .filter(|(_, (_, obj))| matches!(obj, Object::Literal(_)))
        .map(|(i, _)| i)
        .collect();
    let syllables = 1 + rng.gen_range(0..2usize);
    let extra = synth_word(rng, syllables);
    match literal_slots.as_slice() {
        [] => statements.push(("note".to_string(), Object::Literal(extra))),
        slots => {
            let slot = slots[rng.gen_range(0..slots.len())];
            if let (_, Object::Literal(l)) = &mut statements[slot] {
                l.push(' ');
                l.push_str(&extra);
            }
        }
    }
    DeltaOp::Upsert {
        side,
        uri: kb.entity_uri(e).to_string(),
        statements,
    }
}

/// Upsert of a brand-new URI whose description is cloned from a live
/// donor and then perturbed — new records that should block near (and
/// sometimes match) existing ones.
fn insert_op(kb: &KnowledgeBase, side: KbSide, serial: usize, rng: &mut StdRng) -> DeltaOp {
    let donor = pick_entity(kb, rng);
    let mut statements = raw_statements(kb, donor);
    let tag = synth_word(rng, 2);
    for (_, obj) in statements.iter_mut() {
        if let Object::Literal(l) = obj {
            if rng.gen_bool(0.5) {
                l.push(' ');
                l.push_str(&tag);
            }
        }
    }
    DeltaOp::Upsert {
        side,
        uri: format!("http://delta.minoan/{}/{serial}-{tag}", kb.name()),
        statements,
    }
}

fn delete_op(kb: &KnowledgeBase, side: KbSide, rng: &mut StdRng) -> DeltaOp {
    let e = pick_entity(kb, rng);
    DeltaOp::Delete {
        side,
        uri: kb.entity_uri(e).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a = mutate_stream(DatasetKind::Restaurant, 7, 0.2, 42, 60);
        let b = mutate_stream(DatasetKind::Restaurant, 7, 0.2, 42, 60);
        assert_eq!(a, b);
        assert_eq!(a.len(), 60);
    }

    #[test]
    fn mutate_seed_varies_the_stream_without_touching_the_base() {
        let a = mutate_stream(DatasetKind::Restaurant, 7, 0.2, 1, 40);
        let b = mutate_stream(DatasetKind::Restaurant, 7, 0.2, 2, 40);
        assert_ne!(a, b);
    }

    #[test]
    fn every_profile_yields_a_mixed_stream() {
        for kind in DatasetKind::ALL {
            let ops = mutate_stream(kind, 20180416, 0.15, 9, 80);
            assert_eq!(ops.len(), 80);
            let upserts = ops
                .iter()
                .filter(|op| matches!(op, DeltaOp::Upsert { .. }))
                .count();
            let deletes = ops.len() - upserts;
            assert!(upserts > 0 && deletes > 0, "{kind:?} stream is one-sided");
            // Ops must target entities of the pair (or fresh URIs), on
            // both sides, so downstream re-resolution has real work.
            assert!(ops.iter().any(|op| op.side() == KbSide::First));
            assert!(ops.iter().any(|op| op.side() == KbSide::Second));
        }
    }
}
