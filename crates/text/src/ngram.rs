//! Token n-grams.
//!
//! The BSL baseline represents every description by the token
//! uni-/bi-/tri-grams of its values (paper §IV, "Baselines"). An n-gram
//! is `n` consecutive tokens of one value, joined by a space; n-grams
//! never span value boundaries.

/// Emits the `n`-grams of one token sequence into `out`.
///
/// For `n == 1` this is the tokens themselves. Sequences shorter than `n`
/// emit nothing.
pub fn token_ngrams_into(tokens: &[String], n: usize, out: &mut Vec<String>) {
    assert!(n >= 1, "n-gram size must be at least 1");
    if tokens.len() < n {
        return;
    }
    if n == 1 {
        out.extend(tokens.iter().cloned());
        return;
    }
    for window in tokens.windows(n) {
        let mut gram = String::with_capacity(window.iter().map(|t| t.len() + 1).sum());
        for (i, tok) in window.iter().enumerate() {
            if i > 0 {
                gram.push(' ');
            }
            gram.push_str(tok);
        }
        out.push(gram);
    }
}

/// Returns the `n`-grams of one token sequence.
pub fn token_ngrams(tokens: &[String], n: usize) -> Vec<String> {
    let mut out = Vec::new();
    token_ngrams_into(tokens, n, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn unigrams_are_tokens() {
        assert_eq!(
            token_ngrams(&toks(&["a", "b", "c"]), 1),
            toks(&["a", "b", "c"])
        );
    }

    #[test]
    fn bigrams_and_trigrams() {
        assert_eq!(
            token_ngrams(&toks(&["kri", "kri", "taverna"]), 2),
            toks(&["kri kri", "kri taverna"])
        );
        assert_eq!(
            token_ngrams(&toks(&["kri", "kri", "taverna"]), 3),
            toks(&["kri kri taverna"])
        );
    }

    #[test]
    fn short_sequences_emit_nothing() {
        assert!(token_ngrams(&toks(&["solo"]), 2).is_empty());
        assert!(token_ngrams(&[], 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "n-gram size")]
    fn zero_n_panics() {
        token_ngrams(&[], 0);
    }
}
