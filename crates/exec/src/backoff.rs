//! Bounded exponential backoff with deterministic jitter.
//!
//! One helper shared by every retry loop in the workspace: the
//! scheduler's transient-failure re-queues, and the example clients'
//! connect-retry loops (`examples/shared/retry.rs`). Delays double per
//! attempt from `base` up to `cap`; the jittered variant derives its
//! spread from a caller-provided seed — **never** wall-clock or OS
//! randomness — so retry schedules are reproducible run to run, which
//! the fingerprint bit-identity gates require.

use std::time::Duration;

/// The backoff delay before retry attempt `attempt` (0-based):
/// `base × 2^attempt`, saturating, capped at `cap`.
pub fn delay(base: Duration, attempt: u32, cap: Duration) -> Duration {
    let factor = 1u32.checked_shl(attempt.min(31)).unwrap_or(u32::MAX);
    base.saturating_mul(factor).min(cap)
}

/// [`delay`] with deterministic jitter: the full exponential delay is
/// scaled into `[1/2, 1)` of itself by a hash of `seed` and `attempt`.
/// Jitter decorrelates retry storms without sacrificing
/// reproducibility — the same `(seed, attempt)` always waits the same.
pub fn jittered_delay(base: Duration, attempt: u32, cap: Duration, seed: u64) -> Duration {
    let full = delay(base, attempt, cap);
    let mut h = seed.wrapping_add(0x9e3779b97f4a7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h = (h ^ (h >> 31)) ^ u64::from(attempt).wrapping_mul(0x100000001b3);
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    full.mul_f64(0.5 + unit / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn delay_doubles_and_caps() {
        let base = 50 * MS;
        let cap = 400 * MS;
        assert_eq!(delay(base, 0, cap), 50 * MS);
        assert_eq!(delay(base, 1, cap), 100 * MS);
        assert_eq!(delay(base, 2, cap), 200 * MS);
        assert_eq!(delay(base, 3, cap), 400 * MS);
        assert_eq!(delay(base, 4, cap), 400 * MS, "capped");
        assert_eq!(delay(base, 63, cap), 400 * MS, "huge attempts saturate");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let base = 100 * MS;
        let cap = Duration::from_secs(5);
        for attempt in 0..8 {
            let a = jittered_delay(base, attempt, cap, 42);
            let b = jittered_delay(base, attempt, cap, 42);
            assert_eq!(a, b, "same seed and attempt wait the same");
            let full = delay(base, attempt, cap);
            assert!(a >= full / 2 && a < full, "within [full/2, full): {a:?}");
        }
        let x = jittered_delay(base, 3, cap, 1);
        let y = jittered_delay(base, 3, cap, 2);
        assert_ne!(x, y, "different seeds decorrelate");
    }
}
