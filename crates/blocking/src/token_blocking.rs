//! Token Blocking — the schema-agnostic blocking method behind `BT`.
//!
//! Every distinct token appearing in the values of *both* KBs defines one
//! block containing every entity (of either side) whose values contain
//! that token. No schema knowledge is used, which is exactly why the
//! method achieves the >99% recall the paper reports on highly
//! heterogeneous KBs.

use minoan_exec::Executor;
use minoan_kb::{EntityId, FxHashMap, KbSide, TokenId};
use minoan_text::TokenizedPair;

use crate::block::{Block, BlockCollection, BlockKind};

/// Builds the token block collection `BT` sequentially.
///
/// Blocks whose key occurs on only one side are dropped: they can never
/// produce a comparison.
pub fn token_blocking(tokens: &TokenizedPair) -> BlockCollection {
    token_blocking_with(tokens, &Executor::sequential())
}

/// Builds `BT` on `exec`: each part inverts an entity range into a
/// partial `token -> entities` index; partials are merged in part order,
/// so every block's entity list is in ascending entity order — exactly
/// the sequential result — for any thread count.
///
/// Blocks are emitted in **lexicographic token-string order**. Token
/// *ids* are first-seen ids and therefore differ between a from-scratch
/// build and an incrementally grown dictionary; the string order is the
/// canonical order both agree on, which is what makes incremental delta
/// resolution bit-identical to a rebuild (floating-point similarity
/// sums accumulate in block-scan order).
pub fn token_blocking_with(tokens: &TokenizedPair, exec: &Executor) -> BlockCollection {
    let n_tokens = tokens.dict().len();
    let n1 = tokens.entity_count(KbSide::First);
    let n2 = tokens.entity_count(KbSide::Second);
    let firsts = invert_side(tokens, KbSide::First, n_tokens, exec);
    let seconds = invert_side(tokens, KbSide::Second, n_tokens, exec);
    // Assemble blocks in parallel over token ranges; concatenating the
    // parts preserves ascending token order, then one sort establishes
    // the canonical lexicographic order (keys are distinct, so the
    // order is total and thread-count independent).
    let block_parts = exec.map_parts(n_tokens, |range| {
        let mut blocks = Vec::new();
        for t in range {
            let (f, s) = (&firsts[t], &seconds[t]);
            if !f.is_empty() && !s.is_empty() {
                blocks.push(Block {
                    key: t as u32,
                    firsts: f.clone(),
                    seconds: s.clone(),
                });
            }
        }
        blocks
    });
    let mut blocks = block_parts.concat();
    let dict = tokens.dict();
    blocks.sort_unstable_by(|a, b| dict.token(TokenId(a.key)).cmp(dict.token(TokenId(b.key))));
    BlockCollection::new(BlockKind::Token, blocks, n1, n2)
}

/// Inverts one side's `entity -> tokens` lists into `token -> entities`
/// via per-part partial indexes merged in part order.
fn invert_side(
    tokens: &TokenizedPair,
    side: KbSide,
    n_tokens: usize,
    exec: &Executor,
) -> Vec<Vec<EntityId>> {
    let n = tokens.entity_count(side);
    let partials = exec.map_parts(n, |range| {
        let mut partial: FxHashMap<u32, Vec<EntityId>> = FxHashMap::default();
        for e in range {
            let e = EntityId(e as u32);
            for &t in tokens.tokens(side, e) {
                partial.entry(t.0).or_default().push(e);
            }
        }
        partial
    });
    let mut inverted: Vec<Vec<EntityId>> = vec![Vec::new(); n_tokens];
    for partial in partials {
        // Per-part lists are in ascending entity order and parts cover
        // ascending entity ranges, so appending keeps each token's list
        // sorted regardless of the partial map's iteration order.
        for (t, mut list) in partial {
            let slot = &mut inverted[t as usize];
            if slot.is_empty() {
                *slot = list;
            } else {
                slot.append(&mut list);
            }
        }
    }
    inverted
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_exec::ExecutorKind;
    use minoan_kb::{KbBuilder, KbPair, TokenId};
    use minoan_text::Tokenizer;

    fn build() -> (TokenizedPair, BlockCollection) {
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:1", "name", "kri kri taverna");
        a.add_literal("a:2", "name", "labyrinth grill");
        a.add_literal("a:3", "name", "palace");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:1", "title", "taverna kri");
        b.add_literal("b:2", "title", "knossos palace hotel");
        let pair = KbPair::new(a.finish(), b.finish());
        let toks = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&toks);
        (toks, bt)
    }

    #[test]
    fn only_shared_tokens_create_blocks() {
        let (toks, bt) = build();
        // Shared tokens: kri, taverna, palace.
        assert_eq!(bt.len(), 3);
        let keys: Vec<&str> = bt
            .blocks()
            .iter()
            .map(|b| toks.dict().token(TokenId(b.key)))
            .collect();
        assert!(keys.contains(&"kri"));
        assert!(keys.contains(&"taverna"));
        assert!(keys.contains(&"palace"));
        assert!(!keys.contains(&"labyrinth"));
    }

    #[test]
    fn block_membership_is_correct() {
        let (toks, bt) = build();
        let kri = toks.dict().token_id("kri").unwrap();
        let block = bt.blocks().iter().find(|b| b.key == kri.0).unwrap();
        assert_eq!(block.firsts, vec![EntityId(0)]);
        assert_eq!(block.seconds, vec![EntityId(0)]);
    }

    #[test]
    fn candidate_sets_follow_blocks() {
        let (_, bt) = build();
        // a:1 shares kri+taverna with b:1 only.
        let cands = bt.co_occurring(KbSide::First, EntityId(0));
        assert_eq!(cands, vec![EntityId(0)]);
        // a:2 shares nothing.
        assert!(bt.co_occurring(KbSide::First, EntityId(1)).is_empty());
        // a:3 shares palace with b:2.
        assert_eq!(
            bt.co_occurring(KbSide::First, EntityId(2)),
            vec![EntityId(1)]
        );
    }

    #[test]
    fn matching_pair_always_shares_a_block_if_it_shares_a_token() {
        let (_, bt) = build();
        assert!(bt.pair_co_occurs(EntityId(0), EntityId(0)));
        assert!(!bt.pair_co_occurs(EntityId(1), EntityId(0)));
    }

    #[test]
    fn parallel_blocking_matches_sequential_exactly() {
        let mut a = KbBuilder::new("E1");
        let mut b = KbBuilder::new("E2");
        for i in 0..40 {
            a.add_literal(
                &format!("a:{i}"),
                "name",
                &format!("shared token{} word{} tail", i % 7, i % 3),
            );
            b.add_literal(
                &format!("b:{i}"),
                "label",
                &format!("shared token{} other{}", i % 7, i % 5),
            );
        }
        let pair = KbPair::new(a.finish(), b.finish());
        let toks = TokenizedPair::build(&pair, &Tokenizer::default());
        let seq = token_blocking(&toks);
        for threads in [2, 3, 8] {
            let par = token_blocking_with(&toks, &Executor::new(ExecutorKind::Rayon, threads));
            assert_eq!(seq.blocks(), par.blocks(), "threads={threads}");
        }
    }
}
