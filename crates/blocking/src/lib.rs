//! # minoan-blocking — schema-agnostic blocking for MinoanER
//!
//! Implements the blocking layer the whole MinoanER pipeline runs on:
//!
//! - bilateral [`BlockCollection`]s with per-entity indices;
//! - [`token_blocking`] (`BT`) over the shared token dictionary;
//! - [`name_blocking`] (`BN`) over distinctive entity names, plus the
//!   H1-level [`unique_name_pairs`] decision;
//! - comparison-based [`purge`] (Block Purging, smoothing 1.025);
//! - [`block_metrics`]: the recall/precision/F1 rows of Table II.

#![warn(missing_docs)]

pub mod block;
pub mod delta;
pub mod filtering;
pub mod metrics;
pub mod name_blocking;
pub mod purging;
pub mod token_blocking;

pub use block::{Block, BlockCollection, BlockKind};
pub use delta::MutableBlocks;
pub use filtering::block_filtering;
pub use metrics::{block_metrics, BlockMetrics};
pub use name_blocking::{canonical_name, name_blocking, name_blocking_with, unique_name_pairs};
pub use purging::{
    purge, purge_with, purge_with_exec, purging_threshold, purging_threshold_with,
    threshold_from_cards, PurgeReport, DEFAULT_SMOOTHING,
};
pub use token_blocking::{token_blocking, token_blocking_with};
