//! Structured tracing: trace IDs, span enter/exit records, discrete
//! events, and the bounded ring buffer subscribers read from.
//!
//! ## Model
//!
//! A **trace** is one attempt of one unit of work — a job attempt, a
//! batch run, a request. Trace IDs are process-unique `u64`s from
//! [`new_trace_id`]; a retried job gets a **fresh trace ID per
//! attempt**, so the attempts' span trees never interleave. A **span**
//! is a named, leveled interval inside a trace ([`span`] returns an
//! RAII guard; dropping it closes the span and records its duration).
//! Spans nest through a thread-local context: a span opened while
//! another is active becomes its child. An **event** is a point record
//! ([`event`], [`emit_job`], the `error!`/`warn!`/`info!`/`debug!`
//! macros) — job lifecycle transitions, shed decisions, patch
//! completions, log lines.
//!
//! ## The ring
//!
//! All records land in one process-wide bounded ring (the
//! [`Collector`]): a mutex-guarded `VecDeque` with drop-oldest
//! overflow and a monotone sequence number. Producers never block on
//! consumers — a slow subscriber sees a *gap* (its cursor falls behind
//! the oldest retained record) which [`Batch::dropped`] reports, and
//! the global [`Collector::dropped_total`] counter is exported as a
//! metric. When the collector is disabled ([`set_enabled`]) every
//! span/event site costs exactly one relaxed atomic load and records
//! nothing.
//!
//! Observation never participates in the result: nothing in this
//! module feeds back into pipeline or scheduler decisions, so the
//! bit-identity gates hold with tracing enabled at `debug`.

use std::cell::Cell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::{console_enabled, console_write, Level};

/// How many records the global ring retains before dropping the
/// oldest. At ~100 bytes a record this bounds the ring around a few
/// MiB while holding the full span history of any recent job.
pub const RING_CAPACITY: usize = 65_536;

/// What a [`Record`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened.
    Enter,
    /// A span closed; [`Record::dur_micros`] holds its duration.
    Exit,
    /// A point event (lifecycle transition, log line, …).
    Event,
}

impl RecordKind {
    /// Canonical lower-case name.
    pub fn label(self) -> &'static str {
        match self {
            RecordKind::Enter => "enter",
            RecordKind::Exit => "exit",
            RecordKind::Event => "event",
        }
    }
}

/// One entry in the ring.
#[derive(Debug, Clone)]
pub struct Record {
    /// Monotone sequence number (the subscriber cursor space).
    pub seq: u64,
    /// Microseconds since the collector was created.
    pub micros: u64,
    /// Severity.
    pub level: Level,
    /// Enter / exit / event.
    pub kind: RecordKind,
    /// The trace this record belongs to (`0` = none).
    pub trace: u64,
    /// The span this record belongs to or closes (`0` = none).
    pub span: u64,
    /// The parent span at the time the span opened (`0` = root).
    pub parent: u64,
    /// The job id this record belongs to (`-1` = none).
    pub job: i64,
    /// Site name, e.g. `"stage.blocking"` or `"job.retry"`.
    pub name: &'static str,
    /// Free-form human-readable detail.
    pub detail: String,
    /// For [`RecordKind::Exit`]: the span's duration.
    pub dur_micros: u64,
}

/// One read from the ring.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The records at or after the requested cursor, in seq order.
    pub records: Vec<Record>,
    /// The cursor to pass next time (one past the last record seen, or
    /// the unchanged cursor when nothing was ready).
    pub next: u64,
    /// How many records between the requested cursor and the oldest
    /// retained one were already evicted (a slow-consumer gap).
    pub dropped: u64,
}

struct RingInner {
    buf: VecDeque<Record>,
    /// Sequence number the *next* pushed record receives; the oldest
    /// retained record has `next_seq - buf.len()`.
    next_seq: u64,
}

/// The bounded drop-oldest record ring plus its counters. One global
/// instance ([`collector`]) serves the whole process; tests construct
/// private ones.
pub struct Collector {
    inner: Mutex<RingInner>,
    grew: Condvar,
    dropped: AtomicU64,
    epoch: Instant,
    capacity: usize,
}

impl Collector {
    /// A collector retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Collector {
            inner: Mutex::new(RingInner {
                buf: VecDeque::new(),
                next_seq: 0,
            }),
            grew: Condvar::new(),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            capacity: capacity.max(1),
        }
    }

    /// Microseconds since this collector was created.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Appends one record (assigning its `seq`), dropping the oldest on
    /// overflow, and wakes waiting subscribers. Returns the assigned
    /// sequence number.
    pub fn push(&self, mut record: Record) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        if inner.buf.len() >= self.capacity {
            inner.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let seq = inner.next_seq;
        record.seq = seq;
        inner.next_seq += 1;
        inner.buf.push_back(record);
        drop(inner);
        self.grew.notify_all();
        seq
    }

    /// Total records evicted before any subscriber read them.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The sequence number the next record will receive (== total
    /// records ever pushed).
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Reads up to `max` records with `seq >= from`. Never blocks; an
    /// empty `records` with `next == from` means nothing new yet.
    pub fn read_since(&self, from: u64, max: usize) -> Batch {
        let inner = self.inner.lock().unwrap();
        let oldest = inner.next_seq - inner.buf.len() as u64;
        let start = from.max(oldest);
        let dropped = start - from.min(start);
        let skip = (start - oldest) as usize;
        let records: Vec<Record> = inner.buf.iter().skip(skip).take(max).cloned().collect();
        let next = records.last().map(|r| r.seq + 1).unwrap_or(start);
        Batch {
            records,
            next,
            dropped,
        }
    }

    /// Like [`Collector::read_since`], but blocks up to `timeout` for
    /// at least one record to arrive.
    pub fn wait_since(&self, from: u64, max: usize, timeout: Duration) -> Batch {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        loop {
            let oldest = inner.next_seq - inner.buf.len() as u64;
            if inner.next_seq > from || oldest > from {
                drop(inner);
                return self.read_since(from, max);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(inner);
                return self.read_since(from, max);
            }
            let (guard, _) = self.grew.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
        }
    }

    /// Every retained record whose trace is in `traces`, in seq order.
    pub fn records_for_traces(&self, traces: &[u64]) -> Vec<Record> {
        let inner = self.inner.lock().unwrap();
        inner
            .buf
            .iter()
            .filter(|r| r.trace != 0 && traces.contains(&r.trace))
            .cloned()
            .collect()
    }
}

/// Whether the global collector records anything. Checked with one
/// relaxed load at every span/event site.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Trace IDs are process-unique and never zero.
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Span IDs are process-unique and never zero.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

static COLLECTOR: OnceLock<Collector> = OnceLock::new();

/// The process-wide collector.
pub fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(|| Collector::new(RING_CAPACITY))
}

/// Whether the global collector is recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns global recording on or off. Off, every span/event site costs
/// one relaxed atomic load and allocates nothing. (Console logging via
/// the level macros keeps working either way.)
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Allocates a fresh process-unique trace ID.
pub fn new_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

#[derive(Clone, Copy)]
struct Ctx {
    trace: u64,
    span: u64,
    job: i64,
}

thread_local! {
    static CTX: Cell<Ctx> = const {
        Cell::new(Ctx {
            trace: 0,
            span: 0,
            job: -1,
        })
    };
}

/// The (trace, job) pair active on this thread, for callers that need
/// to label their own records (`0`/`-1` when none).
pub fn current_trace_job() -> (u64, i64) {
    let ctx = CTX.with(Cell::get);
    (ctx.trace, ctx.job)
}

/// RAII guard binding a trace (and job) to the current thread; see
/// [`trace_scope`].
pub struct TraceScope {
    prev: Ctx,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Binds `trace`/`job` to the current thread until the guard drops:
/// spans and events recorded on this thread carry them. The scheduler
/// wraps each job attempt in one of these with a fresh trace ID.
pub fn trace_scope(trace: u64, job: i64) -> TraceScope {
    let prev = CTX.with(|c| {
        let prev = c.get();
        c.set(Ctx {
            trace,
            span: 0,
            job,
        });
        prev
    });
    TraceScope { prev }
}

/// RAII span guard from [`span`]: dropping it records the exit (with
/// duration) and restores the parent span.
pub struct Span {
    armed: bool,
    level: Level,
    name: &'static str,
    id: u64,
    prev_span: u64,
    start: Instant,
}

impl Span {
    /// The span's ID (`0` when the collector was disabled at entry).
    pub fn id(&self) -> u64 {
        if self.armed {
            self.id
        } else {
            0
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let ctx = CTX.with(|c| {
            let mut ctx = c.get();
            ctx.span = self.prev_span;
            c.set(ctx);
            ctx
        });
        let dur = self.start.elapsed().as_micros() as u64;
        let col = collector();
        col.push(Record {
            seq: 0,
            micros: col.now_micros(),
            level: self.level,
            kind: RecordKind::Exit,
            trace: ctx.trace,
            span: self.id,
            parent: self.prev_span,
            job: ctx.job,
            name: self.name,
            detail: String::new(),
            dur_micros: dur,
        });
        if console_enabled(Level::Debug) {
            console_write(
                Level::Debug,
                self.name,
                &format_args!("span closed in {dur}µs"),
            );
        }
    }
}

/// Opens a span named `name` at `level` nested under the thread's
/// current span; `detail` is only evaluated when the collector is
/// enabled. Close it by dropping the guard.
pub fn span<D: FnOnce() -> String>(level: Level, name: &'static str, detail: D) -> Span {
    if !enabled() {
        return Span {
            armed: false,
            level,
            name,
            id: 0,
            prev_span: 0,
            start: Instant::now(),
        };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let (ctx, prev_span) = CTX.with(|c| {
        let mut ctx = c.get();
        let prev = ctx.span;
        ctx.span = id;
        c.set(ctx);
        (ctx, prev)
    });
    let col = collector();
    col.push(Record {
        seq: 0,
        micros: col.now_micros(),
        level,
        kind: RecordKind::Enter,
        trace: ctx.trace,
        span: id,
        parent: prev_span,
        job: ctx.job,
        name,
        detail: detail(),
        dur_micros: 0,
    });
    Span {
        armed: true,
        level,
        name,
        id,
        prev_span,
        start: Instant::now(),
    }
}

/// Records a point event in the thread's current trace/job context and
/// echoes it to the console when the threshold admits it.
pub fn event(level: Level, name: &'static str, detail: String) {
    let ctx = CTX.with(Cell::get);
    emit_raw(level, name, ctx.trace, ctx.span, ctx.job, detail);
}

/// Records a point event for an explicit job (and optional trace) —
/// the form the scheduler uses from threads that are not inside the
/// job's trace scope (submit, shed, terminal transitions).
pub fn emit_job(level: Level, name: &'static str, job: i64, trace: u64, detail: String) {
    emit_raw(level, name, trace, 0, job, detail);
}

fn emit_raw(level: Level, name: &'static str, trace: u64, span: u64, job: i64, detail: String) {
    if console_enabled(level) {
        if job >= 0 {
            console_write(level, name, &format_args!("job={job} {detail}"));
        } else {
            console_write(level, name, &format_args!("{detail}"));
        }
    }
    if !enabled() {
        return;
    }
    let col = collector();
    col.push(Record {
        seq: 0,
        micros: col.now_micros(),
        level,
        kind: RecordKind::Event,
        trace,
        span,
        parent: 0,
        job,
        name,
        detail,
        dur_micros: 0,
    });
}

/// The body behind the `error!`/`warn!`/`info!`/`debug!` macros: skips
/// all formatting when neither the console nor the ring wants the
/// line.
pub fn log_event(level: Level, name: &'static str, args: fmt::Arguments<'_>) {
    let console = console_enabled(level);
    let ring = enabled();
    if !console && !ring {
        return;
    }
    if console {
        console_write(level, name, &args);
    }
    if ring {
        let ctx = CTX.with(Cell::get);
        let col = collector();
        col.push(Record {
            seq: 0,
            micros: col.now_micros(),
            level,
            kind: RecordKind::Event,
            trace: ctx.trace,
            span: ctx.span,
            parent: 0,
            job: ctx.job,
            name,
            detail: args.to_string(),
            dur_micros: 0,
        });
    }
}

/// One node of an assembled span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span ID.
    pub span: u64,
    /// Site name.
    pub name: &'static str,
    /// Severity the span was opened at.
    pub level: Level,
    /// Microseconds (collector clock) the span opened at.
    pub start_micros: u64,
    /// Duration; `None` when the exit record was evicted (or the span
    /// is still open).
    pub dur_micros: Option<u64>,
    /// The enter record's detail.
    pub detail: String,
    /// Child spans, in open order.
    pub children: Vec<SpanNode>,
    /// Events recorded while this span was current, in order.
    pub events: Vec<Record>,
}

/// The assembled view of one trace: root spans plus events outside any
/// span.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace ID.
    pub trace: u64,
    /// Top-level spans, in open order.
    pub roots: Vec<SpanNode>,
    /// Events recorded in this trace outside any span.
    pub events: Vec<Record>,
}

/// Assembles the span tree of one trace from its records (as returned
/// by [`Collector::records_for_traces`], already in seq order).
/// Orphans — children whose parent's enter record was evicted — are
/// promoted to roots, so a partially-evicted trace still renders.
pub fn assemble_trace(trace: u64, records: &[Record]) -> TraceTree {
    let mut arena: Vec<SpanNode> = Vec::new();
    let mut by_span: HashMap<u64, usize> = HashMap::new();
    let mut parents: Vec<u64> = Vec::new();
    let mut loose_events: Vec<Record> = Vec::new();
    for r in records.iter().filter(|r| r.trace == trace) {
        match r.kind {
            RecordKind::Enter => {
                by_span.insert(r.span, arena.len());
                parents.push(r.parent);
                arena.push(SpanNode {
                    span: r.span,
                    name: r.name,
                    level: r.level,
                    start_micros: r.micros,
                    dur_micros: None,
                    detail: r.detail.clone(),
                    children: Vec::new(),
                    events: Vec::new(),
                });
            }
            RecordKind::Exit => {
                if let Some(&i) = by_span.get(&r.span) {
                    arena[i].dur_micros = Some(r.dur_micros);
                }
            }
            RecordKind::Event => match by_span.get(&r.span) {
                Some(&i) => arena[i].events.push(r.clone()),
                None => loose_events.push(r.clone()),
            },
        }
    }
    // Children were appended after their parents (spans enter in
    // order), so folding the arena from the back moves every subtree
    // into place before its parent moves.
    let mut roots = Vec::new();
    for i in (0..arena.len()).rev() {
        let node = arena.pop().expect("arena index in range");
        match by_span.get(&parents[i]) {
            Some(&p) if parents[i] != 0 && p < i => arena[p].children.insert(0, node),
            _ => roots.insert(0, node),
        }
    }
    TraceTree {
        trace,
        roots,
        events: loose_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Serializes the tests that toggle the global enabled flag or
    /// read the global collector, so the parallel test runner cannot
    /// interleave a disabled window with a recording test.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn raw_event(name: &'static str) -> Record {
        Record {
            seq: 0,
            micros: 0,
            level: Level::Info,
            kind: RecordKind::Event,
            trace: 0,
            span: 0,
            parent: 0,
            job: -1,
            name,
            detail: String::new(),
            dur_micros: 0,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts_drops() {
        let col = Collector::new(4);
        for _ in 0..10 {
            col.push(raw_event("e"));
        }
        assert_eq!(col.dropped_total(), 6);
        let batch = col.read_since(0, 100);
        assert_eq!(batch.dropped, 6, "cursor 0 fell behind by six records");
        let seqs: Vec<u64> = batch.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(batch.next, 10);
        // Reading from the frontier returns nothing and keeps the
        // cursor put.
        let empty = col.read_since(10, 100);
        assert!(empty.records.is_empty());
        assert_eq!(empty.next, 10);
        assert_eq!(empty.dropped, 0);
    }

    #[test]
    fn concurrent_producers_never_lose_the_drop_count() {
        let col = Arc::new(Collector::new(64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let col = Arc::clone(&col);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        col.push(raw_event("p"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(col.next_seq(), 8000, "every push got a unique seq");
        let retained = col.read_since(0, usize::MAX).records.len() as u64;
        assert_eq!(retained, 64);
        assert_eq!(
            col.dropped_total() + retained,
            8000,
            "drops + retained account for every record"
        );
    }

    #[test]
    fn wait_since_wakes_on_push_and_times_out_quietly() {
        let col = Arc::new(Collector::new(16));
        let waiter = {
            let col = Arc::clone(&col);
            std::thread::spawn(move || col.wait_since(0, 10, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(30));
        col.push(raw_event("wake"));
        let batch = waiter.join().unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.records[0].name, "wake");
        // And a timeout with nothing new returns an empty batch fast.
        let t = Instant::now();
        let empty = col.wait_since(batch.next, 10, Duration::from_millis(20));
        assert!(empty.records.is_empty());
        assert!(t.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn spans_nest_through_the_thread_context() {
        let _lock = global_lock();
        set_enabled(true);
        let trace = new_trace_id();
        let _scope = trace_scope(trace, 7);
        {
            let _outer = span(Level::Debug, "test.outer", || "o".into());
            {
                let _inner = span(Level::Debug, "test.inner", String::new);
                event(Level::Info, "test.mark", "inside inner".into());
            }
        }
        let records = collector().records_for_traces(&[trace]);
        let tree = assemble_trace(trace, &records);
        assert_eq!(tree.roots.len(), 1);
        let outer = &tree.roots[0];
        assert_eq!(outer.name, "test.outer");
        assert!(outer.dur_micros.is_some());
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "test.inner");
        assert_eq!(inner.events.len(), 1);
        assert_eq!(inner.events[0].name, "test.mark");
        assert_eq!(inner.events[0].job, 7);
    }

    #[test]
    fn retried_attempts_get_disjoint_trees() {
        let _lock = global_lock();
        set_enabled(true);
        let mut traces = Vec::new();
        for attempt in 0..2 {
            let trace = new_trace_id();
            traces.push(trace);
            let _scope = trace_scope(trace, 3);
            let _s = span(Level::Debug, "test.attempt", move || {
                format!("attempt {attempt}")
            });
            event(Level::Info, "test.work", format!("attempt {attempt}"));
        }
        assert_ne!(traces[0], traces[1], "fresh trace ID per attempt");
        let records = collector().records_for_traces(&traces);
        for (i, &trace) in traces.iter().enumerate() {
            let tree = assemble_trace(trace, &records);
            assert_eq!(tree.roots.len(), 1);
            assert_eq!(tree.roots[0].detail, format!("attempt {i}"));
            assert_eq!(tree.roots[0].events.len(), 1);
        }
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _lock = global_lock();
        set_enabled(false);
        let trace = new_trace_id();
        let _scope = trace_scope(trace, 1);
        {
            let s = span(Level::Debug, "test.off", String::new);
            assert_eq!(s.id(), 0);
            event(Level::Debug, "test.off.event", "x".into());
        }
        set_enabled(true);
        assert!(collector().records_for_traces(&[trace]).is_empty());
    }

    #[test]
    fn orphaned_children_are_promoted_to_roots() {
        // Simulate eviction of the parent's enter record.
        let records = vec![
            Record {
                kind: RecordKind::Enter,
                trace: 99,
                span: 11,
                parent: 10, // 10's enter was evicted
                ..raw_event("child")
            },
            Record {
                kind: RecordKind::Exit,
                trace: 99,
                span: 11,
                parent: 10,
                dur_micros: 5,
                ..raw_event("child")
            },
        ];
        let tree = assemble_trace(99, &records);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].name, "child");
        assert_eq!(tree.roots[0].dur_micros, Some(5));
    }
}
