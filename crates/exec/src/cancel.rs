//! Cooperative cancellation for executor-driven work.
//!
//! A [`CancelToken`] is a shared flag observed at **checkpoints between
//! executor waves**: a fan-out that has already been dispatched always
//! runs to completion (waves are never torn down mid-flight — partial
//! results merged from an interrupted wave could not be bit-identical
//! to a sequential run), and the stage driving the waves calls
//! [`CancelToken::checkpoint`] before dispatching the next one. A
//! cancelled computation therefore unwinds with [`Cancelled`] within a
//! bounded number of checkpoints — at most one wave of work after the
//! flag is set — leaving no partial state behind.
//!
//! Beyond an explicit [`CancelToken::cancel`], a token can carry a
//! **deadline** ([`CancelToken::set_deadline`]): once the deadline
//! passes, every [`CancelToken::is_cancelled`] / `checkpoint` call
//! observes the token as cancelled, so a per-job timeout rides the
//! exact same wave/quantum checkpoints as user cancellation and lands
//! within one quantum of work. The supervisor that set the deadline can
//! distinguish the causes afterwards via [`CancelToken::reason`].
//!
//! The token lives in `minoan-exec`, the bottom of the crate stack, so
//! ingest (`minoan-kb`), the pipeline (`minoan-core`) and the serving
//! layer (`minoan-serve`) can all thread the same token through their
//! stages without dependency cycles.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The error a cancelled computation unwinds with. Carries no payload:
/// cancellation is a request honored cooperatively, not a failure. The
/// *cause* (user cancel, deadline, budget kill) stays on the token —
/// see [`CancelToken::reason`] — so the unwind path needs no plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Why a token was cancelled. The first cause wins: once a reason is
/// recorded, later `cancel_with` calls do not overwrite it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// Explicit [`CancelToken::cancel`] — an operator or client request.
    User,
    /// The deadline set via [`CancelToken::set_deadline`] passed.
    DeadlineExceeded,
    /// A supervisor killed the work for exceeding its memory budget.
    OverBudget,
}

const REASON_NONE: u8 = 0;
const REASON_USER: u8 = 1;
const REASON_DEADLINE: u8 = 2;
const REASON_OVER_BUDGET: u8 = 3;

/// Millisecond deadline sentinel meaning "no deadline armed".
const NO_DEADLINE: u64 = u64::MAX;

#[derive(Debug)]
struct TokenState {
    flag: AtomicBool,
    reason: AtomicU8,
    /// Milliseconds after `created` at which the token self-cancels;
    /// [`NO_DEADLINE`] when no deadline is armed.
    deadline_ms: AtomicU64,
    created: Instant,
}

/// Cooperative cancellation flag, cheap to clone and share across
/// threads. Setting it never interrupts running code; work observes it
/// at its next [`CancelToken::checkpoint`] and unwinds cleanly.
#[derive(Debug, Clone)]
pub struct CancelToken {
    state: Arc<TokenState>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken {
            state: Arc::new(TokenState {
                flag: AtomicBool::new(false),
                reason: AtomicU8::new(REASON_NONE),
                deadline_ms: AtomicU64::new(NO_DEADLINE),
                created: Instant::now(),
            }),
        }
    }
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancel_with(CancelReason::User);
    }

    /// Requests cancellation recording `reason` as the cause. The first
    /// recorded reason wins; the flag itself is idempotent.
    pub fn cancel_with(&self, reason: CancelReason) {
        let code = match reason {
            CancelReason::User => REASON_USER,
            CancelReason::DeadlineExceeded => REASON_DEADLINE,
            CancelReason::OverBudget => REASON_OVER_BUDGET,
        };
        let _ = self.state.reason.compare_exchange(
            REASON_NONE,
            code,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        self.state.flag.store(true, Ordering::SeqCst);
    }

    /// Arms (or re-arms) a deadline `timeout` from **now**. Once it
    /// passes, the token reads as cancelled at every checkpoint with
    /// reason [`CancelReason::DeadlineExceeded`]. Timeouts therefore
    /// land within one wave/quantum of work, exactly like an explicit
    /// cancel.
    pub fn set_deadline(&self, timeout: Duration) {
        let from_created = self
            .state
            .created
            .elapsed()
            .saturating_add(timeout)
            .as_millis()
            .min(NO_DEADLINE as u128 - 1) as u64;
        self.state.deadline_ms.store(from_created, Ordering::SeqCst);
    }

    /// Whether cancellation was requested (explicitly or because an
    /// armed deadline passed).
    pub fn is_cancelled(&self) -> bool {
        if self.state.flag.load(Ordering::SeqCst) {
            return true;
        }
        let deadline = self.state.deadline_ms.load(Ordering::SeqCst);
        if deadline != NO_DEADLINE && self.state.created.elapsed().as_millis() as u64 >= deadline {
            self.cancel_with(CancelReason::DeadlineExceeded);
            return true;
        }
        false
    }

    /// The recorded cause of cancellation, `None` while uncancelled.
    /// Reads the flag through [`CancelToken::is_cancelled`] first so an
    /// expired deadline is visible even if no checkpoint ran yet.
    pub fn reason(&self) -> Option<CancelReason> {
        if !self.is_cancelled() {
            return None;
        }
        match self.state.reason.load(Ordering::SeqCst) {
            REASON_USER => Some(CancelReason::User),
            REASON_DEADLINE => Some(CancelReason::DeadlineExceeded),
            REASON_OVER_BUDGET => Some(CancelReason::OverBudget),
            _ => Some(CancelReason::User),
        }
    }

    /// The cooperative checkpoint: returns `Err(Cancelled)` once
    /// [`CancelToken::cancel`] has been called or an armed deadline has
    /// passed. Stages call this between executor waves so a cancelled
    /// job stops dispatching new work and unwinds within a bounded
    /// number of checkpoints.
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Runs `f`, converting an unwind carrying [`Cancelled`] into
/// `Err(Cancelled)`. Pool-backed waves abort a cancelled fan-out by
/// panicking with `Cancelled` (they cannot return a partial result
/// vector); stage drivers wrap their wave sequence in `catch_cancel` so
/// a mid-wave cancel surfaces as the same `Err(Cancelled)` a
/// between-wave [`CancelToken::checkpoint`] produces. Any other panic
/// payload is resumed untouched.
pub fn catch_cancel<R>(f: impl FnOnce() -> Result<R, Cancelled>) -> Result<R, Cancelled> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            if payload.downcast_ref::<Cancelled>().is_some() {
                Err(Cancelled)
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes_checkpoints() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.checkpoint(), Ok(()));
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn cancelled_token_fails_checkpoints_forever() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
        assert_eq!(t.checkpoint(), Err(Cancelled));
        assert_eq!(t.checkpoint(), Err(Cancelled));
        assert_eq!(t.reason(), Some(CancelReason::User));
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let seen_by_worker = t.clone();
        t.cancel();
        assert!(seen_by_worker.is_cancelled());
    }

    #[test]
    fn cancel_is_visible_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::spawn(move || u.cancel()).join().unwrap();
        assert_eq!(t.checkpoint(), Err(Cancelled));
    }

    #[test]
    fn cancelled_formats_as_an_error() {
        assert_eq!(Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn first_cancel_reason_wins() {
        let t = CancelToken::new();
        t.cancel_with(CancelReason::OverBudget);
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::OverBudget));
    }

    #[test]
    fn expired_deadline_cancels_with_deadline_reason() {
        let t = CancelToken::new();
        t.set_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.checkpoint(), Err(Cancelled));
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_leaves_the_token_live() {
        let t = CancelToken::new();
        t.set_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert_eq!(t.checkpoint(), Ok(()));
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn explicit_cancel_beats_a_pending_deadline() {
        let t = CancelToken::new();
        t.set_deadline(Duration::from_secs(3600));
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::User));
    }

    #[test]
    fn deadline_is_visible_through_clones() {
        let t = CancelToken::new();
        let observer = t.clone();
        t.set_deadline(Duration::ZERO);
        assert!(observer.is_cancelled());
        assert_eq!(observer.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn catch_cancel_passes_values_and_plain_errors_through() {
        assert_eq!(catch_cancel(|| Ok(41)), Ok(41));
        assert_eq!(catch_cancel::<u8>(|| Err(Cancelled)), Err(Cancelled));
    }

    #[test]
    fn catch_cancel_downcasts_cancelled_unwinds() {
        let result = catch_cancel::<u8>(|| std::panic::panic_any(Cancelled));
        assert_eq!(result, Err(Cancelled));
    }

    #[test]
    fn catch_cancel_resumes_foreign_panics() {
        let unwound = std::panic::catch_unwind(|| catch_cancel::<u8>(|| panic!("boom")));
        let payload = unwound.expect_err("foreign panic must resume");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    }
}
