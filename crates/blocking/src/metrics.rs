//! Block-collection quality metrics (the bottom rows of Table II).
//!
//! - *recall* (pair completeness): fraction of ground-truth pairs that
//!   co-occur in at least one block of the union `BN ∪ BT`;
//! - *precision* (pair quality): ground-truth pairs found per distinct
//!   candidate comparison;
//! - *F1*: their harmonic mean.

use minoan_kb::{FxHashSet, GroundTruth};

use crate::block::BlockCollection;

/// Quality metrics of (a union of) block collections w.r.t. ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockMetrics {
    /// Distinct candidate comparisons across the union.
    pub distinct_comparisons: u64,
    /// Ground-truth pairs covered by at least one block.
    pub covered_matches: usize,
    /// Total ground-truth pairs.
    pub total_matches: usize,
}

impl BlockMetrics {
    /// Pair completeness: `covered / total` (1 for empty ground truth).
    pub fn recall(&self) -> f64 {
        if self.total_matches == 0 {
            1.0
        } else {
            self.covered_matches as f64 / self.total_matches as f64
        }
    }

    /// Pair quality: `covered / distinct_comparisons` (0 if no comparisons).
    pub fn precision(&self) -> f64 {
        if self.distinct_comparisons == 0 {
            0.0
        } else {
            self.covered_matches as f64 / self.distinct_comparisons as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Computes [`BlockMetrics`] over the union of `collections`.
///
/// Comparisons are deduplicated across collections, matching the paper's
/// "overall comparisons in `BT ∪ BN`".
pub fn block_metrics(collections: &[&BlockCollection], truth: &GroundTruth) -> BlockMetrics {
    let mut pairs: FxHashSet<(minoan_kb::EntityId, minoan_kb::EntityId)> = FxHashSet::default();
    for c in collections {
        for b in c.blocks() {
            for &e1 in &b.firsts {
                for &e2 in &b.seconds {
                    pairs.insert((e1, e2));
                }
            }
        }
    }
    let covered = truth
        .iter()
        .filter(|&(a, b)| pairs.contains(&(a, b)))
        .count();
    BlockMetrics {
        distinct_comparisons: pairs.len() as u64,
        covered_matches: covered,
        total_matches: truth.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockKind};
    use minoan_kb::{EntityId, Matching};

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn coll(blocks: Vec<Block>) -> BlockCollection {
        BlockCollection::new(BlockKind::Token, blocks, 4, 4)
    }

    #[test]
    fn perfect_blocks() {
        let c = coll(vec![Block {
            key: 0,
            firsts: vec![e(0)],
            seconds: vec![e(0)],
        }]);
        let truth = Matching::from_pairs([(e(0), e(0))]);
        let m = block_metrics(&[&c], &truth);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn missed_match_lowers_recall() {
        let c = coll(vec![Block {
            key: 0,
            firsts: vec![e(0)],
            seconds: vec![e(0)],
        }]);
        let truth = Matching::from_pairs([(e(0), e(0)), (e(1), e(1))]);
        let m = block_metrics(&[&c], &truth);
        assert_eq!(m.recall(), 0.5);
        assert_eq!(m.covered_matches, 1);
    }

    #[test]
    fn union_deduplicates_across_collections() {
        let c1 = coll(vec![Block {
            key: 0,
            firsts: vec![e(0), e(1)],
            seconds: vec![e(0)],
        }]);
        let c2 = coll(vec![Block {
            key: 1,
            firsts: vec![e(0)],
            seconds: vec![e(0)],
        }]);
        let truth = Matching::from_pairs([(e(0), e(0))]);
        let m = block_metrics(&[&c1, &c2], &truth);
        // (0,0) and (1,0): the repeat of (0,0) across collections is one.
        assert_eq!(m.distinct_comparisons, 2);
        assert_eq!(m.precision(), 0.5);
    }

    #[test]
    fn empty_truth_has_full_recall_zero_precisionless_f1() {
        let c = coll(vec![]);
        let truth = Matching::new();
        let m = block_metrics(&[&c], &truth);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }
}
