//! Sequential vs parallel executor benchmarks: `SimilarityIndex::build`
//! and the end-to-end pipeline at datagen scale 1.0, emitting the
//! `BENCH_pipeline.json` trajectory file at the workspace root.
//!
//! The parallel numbers depend on the machine: the speedup target (≥2×
//! for `SimilarityIndex::build` on ≥4 cores) is checked from the JSON,
//! which records the thread count used.

use criterion::{BenchmarkId, Criterion};
use minoan_core::{build_blocks, top_neighbors, MinoanConfig, MinoanEr, SimilarityIndex};
use minoan_datagen::DatasetKind;
use minoan_exec::{Executor, ExecutorKind};
use minoan_kb::Json;

const SEED: u64 = 20180416;
const SCALE: f64 = 1.0;
const DATASET: DatasetKind = DatasetKind::RexaDblp;

fn executors() -> Vec<(&'static str, Executor)> {
    vec![
        ("sequential", Executor::sequential()),
        ("rayon", Executor::rayon()),
    ]
}

fn config_for(exec: &Executor) -> MinoanConfig {
    MinoanConfig {
        executor: exec.kind(),
        threads: exec.threads(),
        ..MinoanConfig::default()
    }
}

fn bench_parallel(c: &mut Criterion) {
    let d = DATASET.generate_scaled(SEED, SCALE);
    let config = MinoanConfig::default();
    let art = build_blocks(&d.pair, &config);
    let tn1 = top_neighbors(
        &d.pair.first,
        config.top_relations_n,
        config.max_top_neighbors,
    );
    let tn2 = top_neighbors(
        &d.pair.second,
        config.top_relations_n,
        config.max_top_neighbors,
    );

    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for (name, exec) in executors() {
        group.bench_with_input(
            BenchmarkId::new("simindex_build", name),
            &exec,
            |b, exec| {
                b.iter(|| {
                    SimilarityIndex::build_with(&art.token_blocks, &art.tokens, [&tn1, &tn2], exec)
                })
            },
        );
    }
    for (name, exec) in executors() {
        let matcher = MinoanEr::new(config_for(&exec)).expect("valid config");
        group.bench_with_input(BenchmarkId::new("end_to_end", name), &d.pair, |b, pair| {
            b.iter(|| matcher.run(pair))
        });
    }
    group.finish();
}

fn find<'a>(results: &'a [criterion::BenchResult], id: &str) -> Option<&'a criterion::BenchResult> {
    results.iter().find(|r| r.id == id)
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    bench_parallel(&mut criterion);
    let results = criterion.take_results();

    let threads = Executor::rayon().threads();
    let speedup = |bench: &str| -> Json {
        let seq = find(&results, &format!("parallel/{bench}/sequential"));
        let par = find(&results, &format!("parallel/{bench}/rayon"));
        match (seq, par) {
            (Some(s), Some(p)) if p.median_ns > 0.0 => Json::Num(s.median_ns / p.median_ns),
            _ => Json::Null,
        }
    };
    let out = Json::obj([
        ("bench", Json::str("pipeline_parallel")),
        ("dataset", Json::str(DATASET.name())),
        ("scale", Json::Num(SCALE)),
        (
            "executor_kinds",
            Json::arr([
                Json::str(ExecutorKind::Sequential.name()),
                Json::str(ExecutorKind::Rayon.name()),
            ]),
        ),
        ("rayon_threads", Json::num(threads as f64)),
        (
            "speedup",
            Json::obj([
                ("simindex_build", speedup("simindex_build")),
                ("end_to_end", speedup("end_to_end")),
            ]),
        ),
        (
            "results",
            Json::arr(results.iter().map(|r| {
                Json::obj([
                    ("id", Json::str(&r.id)),
                    ("median_ns", Json::Num(r.median_ns)),
                    ("mean_ns", Json::Num(r.mean_ns)),
                    ("min_ns", Json::Num(r.min_ns)),
                    ("iterations", Json::num(r.iterations as f64)),
                ])
            })),
        ),
    ]);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    std::fs::write(&path, out.pretty()).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());
}
