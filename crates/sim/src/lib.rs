//! # minoan-sim — similarity substrate for MinoanER
//!
//! - [`value_sim`]: the paper's schema-agnostic ARCS variant
//!   (`Σ 1/log2(EF1·EF2+1)` over shared tokens), the basis of H2, H3 and
//!   neighbor similarity;
//! - [`build_vectors`] + [`Measure`]: TF/TF-IDF weighted vector models
//!   and the Cosine/Jaccard/GeneralizedJaccard/SiGMa measures the BSL
//!   baseline sweeps over.

#![warn(missing_docs)]

pub mod arcs;
pub mod measures;
pub mod vector;

pub use arcs::{token_weight, value_sim, value_sim_slices};
pub use measures::{cosine, dice, generalized_jaccard, jaccard, sigma, Measure};
pub use vector::{build_vectors, WeightedVector, Weighting};
