//! Pipeline configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the MinoanER matching pipeline.
///
/// The defaults are the paper's robust setting (§IV): `K=15`, `N=3`,
/// `k=2`, `θ=0.6`, with Block Purging enabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinoanConfig {
    /// `k`: number of most distinctive attributes per KB whose literal
    /// values serve as entity names (H1).
    pub name_attrs_k: usize,
    /// `K`: number of candidate matches kept per entity from values and
    /// from neighbors (H3 list size and H4 reciprocity window).
    pub candidates_k: usize,
    /// `N`: number of most important relations per KB defining
    /// `topNneighbors` (H3).
    pub top_relations_n: usize,
    /// `θ ∈ (0,1)`: trade-off between value-based (weight `θ`) and
    /// neighbor-based (weight `1-θ`) normalized ranks in H3.
    pub theta: f64,
    /// Whether to apply Block Purging to the token blocks.
    pub purge_blocks: bool,
    /// Smoothing factor for Block Purging.
    pub purge_smoothing: f64,
    /// Safety cap on `topNneighbors(e)` per entity. The paper leaves the
    /// set unbounded; the cap only guards against pathological hubs and
    /// is high enough to be inactive on the benchmark profiles.
    pub max_top_neighbors: usize,
}

impl Default for MinoanConfig {
    fn default() -> Self {
        Self {
            name_attrs_k: 2,
            candidates_k: 15,
            top_relations_n: 3,
            theta: 0.6,
            purge_blocks: true,
            purge_smoothing: minoan_blocking::DEFAULT_SMOOTHING,
            max_top_neighbors: 32,
        }
    }
}

impl MinoanConfig {
    /// Validates parameter ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.theta && self.theta < 1.0) {
            return Err(format!("theta must be in (0,1), got {}", self.theta));
        }
        if self.name_attrs_k == 0 {
            return Err("name_attrs_k must be at least 1".into());
        }
        if self.candidates_k == 0 {
            return Err("candidates_k must be at least 1".into());
        }
        if self.top_relations_n == 0 {
            return Err("top_relations_n must be at least 1".into());
        }
        if self.purge_smoothing < 1.0 {
            return Err(format!(
                "purge_smoothing must be >= 1, got {}",
                self.purge_smoothing
            ));
        }
        if self.max_top_neighbors == 0 {
            return Err("max_top_neighbors must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = MinoanConfig::default();
        assert_eq!(c.name_attrs_k, 2);
        assert_eq!(c.candidates_k, 15);
        assert_eq!(c.top_relations_n, 3);
        assert!((c.theta - 0.6).abs() < 1e-12);
        assert!(c.purge_blocks);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut c = MinoanConfig::default();
        c.theta = 1.0;
        assert!(c.validate().is_err());
        c = MinoanConfig::default();
        c.theta = 0.0;
        assert!(c.validate().is_err());
        c = MinoanConfig::default();
        c.name_attrs_k = 0;
        assert!(c.validate().is_err());
        c = MinoanConfig::default();
        c.candidates_k = 0;
        assert!(c.validate().is_err());
        c = MinoanConfig::default();
        c.top_relations_n = 0;
        assert!(c.validate().is_err());
        c = MinoanConfig::default();
        c.purge_smoothing = 0.9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_serializes_round_trip() {
        let c = MinoanConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: MinoanConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
