//! Shared mutable slices for disjoint parallel writes.
//!
//! CSR construction writes every row into one flat buffer. The row
//! boundaries are known up front (prefix sums of row lengths), so
//! different executor parts always touch **disjoint index ranges** — but
//! the borrow checker cannot see that through a `Fn` closure shared by
//! all parts. [`SharedSlice`] is the audited escape hatch: an unsafe cell
//! over one buffer whose safety contract is exactly "no two parts touch
//! the same index".

use std::cell::UnsafeCell;

/// A slice writable from multiple threads under a disjointness contract.
///
/// Every access method is `unsafe`; the caller promises that no index is
/// accessed by more than one thread for the lifetime of the borrow.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: sharing the wrapper across threads is sound because every
// dereference is an unsafe method whose contract forbids overlapping
// index use; `T: Send` keeps the values themselves transferable.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps an exclusive slice borrow.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`, and the
        // exclusive borrow guarantees nobody else views the data while
        // the wrapper is alive.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// No other thread may access `index` concurrently, and `index` must
    /// be in bounds.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.data.len());
        *self.data[index].get() = value;
    }

    /// A mutable subslice for `range`.
    ///
    /// # Safety
    /// No other thread may access any index of `range` while the returned
    /// borrow lives, and `range` must be in bounds.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.data.len());
        let base = self.data.as_ptr() as *mut T;
        std::slice::from_raw_parts_mut(base.add(range.start), range.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Executor, ExecutorKind};

    #[test]
    fn disjoint_parallel_writes_land() {
        let n = 10_000usize;
        let mut buf = vec![0u64; n];
        let exec = Executor::new(ExecutorKind::Rayon, 4);
        {
            let shared = SharedSlice::new(&mut buf);
            exec.map_parts(n, |range| {
                for i in range {
                    // SAFETY: parts cover disjoint index ranges.
                    unsafe { shared.write(i, i as u64 * 3) };
                }
            });
        }
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn disjoint_subslices_can_be_sorted_in_parallel() {
        let mut buf: Vec<u32> = (0..1000).rev().collect();
        let bounds: Vec<usize> = (0..=10).map(|i| i * 100).collect();
        let exec = Executor::new(ExecutorKind::Rayon, 4);
        {
            let shared = SharedSlice::new(&mut buf);
            exec.map_range(10, |row| {
                // SAFETY: row ranges [bounds[row], bounds[row+1]) are disjoint.
                let s = unsafe { shared.slice_mut(bounds[row]..bounds[row + 1]) };
                s.sort_unstable();
            });
        }
        for row in 0..10 {
            let s = &buf[bounds[row]..bounds[row + 1]];
            assert!(s.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn len_and_empty() {
        let mut buf = vec![1u8; 3];
        let s = SharedSlice::new(&mut buf);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
