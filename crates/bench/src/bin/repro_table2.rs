//! Regenerates the paper's Table II: block statistics.
//!
//! Usage: `repro_table2 [scale] [seed]`. Reports `|BN|`, `|BT|`,
//! `||BN||`, `||BT||`, the Cartesian comparison count and the block-level
//! precision/recall/F1 for every dataset, plus the §III complexity
//! claims: blocking undercuts brute force while keeping recall above
//! 99%, and purging only ever removes comparisons. (The paper's "2
//! orders of magnitude" margin is a full-scale property: real vocabulary
//! grows with corpus size, while the synthetic profiles use fixed pools,
//! so the margin shrinks at reduced scale — see EXPERIMENTS.md.)

use minoan_bench::{DEFAULT_SEED, PAPER_TABLE2};
use minoan_blocking::block_metrics;
use minoan_core::{build_blocks, MinoanConfig};
use minoan_datagen::DatasetKind;
use minoan_eval::{scientific, Table};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(1.0);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(DEFAULT_SEED);
    println!("Table II — block statistics (seed {seed}, scale {scale})\n");

    let config = MinoanConfig::default();
    let mut table = Table::new(&[
        "statistic",
        "Restaurant",
        "Rexa-DBLP",
        "BBCmusic-DBpedia",
        "YAGO-IMDb",
    ]);
    let mut rows: Vec<(&str, Vec<String>)> = vec![
        ("|BN|", vec![]),
        ("|BT|", vec![]),
        ("||BN||", vec![]),
        ("||BT||", vec![]),
        ("|E1|*|E2|", vec![]),
        ("Precision %", vec![]),
        ("Recall %", vec![]),
        ("F1 %", vec![]),
    ];
    let mut ok = true;
    let mut claims: Vec<(String, bool)> = Vec::new();
    for (i, kind) in DatasetKind::ALL.into_iter().enumerate() {
        let d = kind.generate_scaled(seed, scale);
        let art = build_blocks(&d.pair, &config);
        let bn = &art.name_blocks;
        let bt = &art.token_blocks;
        let m = block_metrics(&[bn, bt], &d.truth);
        let p = &PAPER_TABLE2[i];
        let fmt2 = |ours: String, paper: String| format!("{ours} (paper {paper})");
        rows[0]
            .1
            .push(fmt2(bn.len().to_string(), scientific(p.bn_blocks as u128)));
        rows[1]
            .1
            .push(fmt2(bt.len().to_string(), scientific(p.bt_blocks as u128)));
        rows[2].1.push(fmt2(
            scientific(bn.total_comparisons() as u128),
            scientific(p.bn_comparisons as u128),
        ));
        rows[3].1.push(fmt2(
            scientific(bt.total_comparisons() as u128),
            scientific(p.bt_comparisons as u128),
        ));
        rows[4].1.push(fmt2(
            scientific(d.pair.cartesian_comparisons()),
            scientific(p.cartesian as u128),
        ));
        rows[5].1.push(fmt2(
            format!("{:.2}", m.precision() * 100.0),
            format!("{:.2}", p.precision),
        ));
        rows[6].1.push(fmt2(
            format!("{:.2}", m.recall() * 100.0),
            format!("{:.2}", p.recall),
        ));
        rows[7].1.push(fmt2(
            format!("{:.2}", m.f1() * 100.0),
            format!("{:.2}", p.f1),
        ));
        // §III complexity claims, per dataset.
        let total = bn.total_comparisons() + bt.total_comparisons();
        let factor = d.pair.cartesian_comparisons() as f64 / total.max(1) as f64;
        claims.push((
            format!(
                "{}: blocking undercuts brute force ({} vs {}, factor {:.1}x)",
                kind.name(),
                scientific(total as u128),
                scientific(d.pair.cartesian_comparisons()),
                factor,
            ),
            factor > 1.0,
        ));
        claims.push((
            format!("{}: block recall > 99%", kind.name()),
            m.recall() > 0.99,
        ));
        if let Some(purge) = &art.purge {
            claims.push((
                format!(
                    "{}: purging never increases comparisons ({} -> {})",
                    kind.name(),
                    scientific(purge.comparisons_before as u128),
                    scientific(purge.comparisons_after as u128),
                ),
                purge.comparisons_after <= purge.comparisons_before,
            ));
        }
    }
    for (label, cells) in rows {
        let mut row = vec![label.to_string()];
        row.extend(cells);
        table.row(&row);
    }
    println!("{}", table.render());
    println!("Complexity claims (paper §III):");
    for (name, pass) in &claims {
        println!("  [{}] {name}", if *pass { "PASS" } else { "FAIL" });
        ok &= *pass;
    }
    std::process::exit(if ok { 0 } else { 1 });
}
