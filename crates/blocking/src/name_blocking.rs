//! Name Blocking — the collection `BN` behind heuristic H1.
//!
//! Each *entire entity name* (the literal values of the most distinctive
//! attributes, as selected by `minoan-core`) is a blocking key. A name
//! block holding exactly one entity of each KB signals a match under H1:
//! the two entities — and only they — share the same name.
//!
//! This module is policy-free: which strings count as "names" is decided
//! by the caller (the core crate's attribute-importance machinery).

use minoan_exec::Executor;
use minoan_kb::{EntityId, Interner};

use crate::block::{Block, BlockCollection, BlockKind};

/// Builds the name block collection `BN` sequentially.
///
/// `names_first[e]` / `names_second[e]` hold the name strings of entity
/// `e` on each side. Names are canonicalized (lower-cased, whitespace
/// collapsed) before keying. The returned interner resolves block keys
/// back to canonical names. Blocks populated on only one side are
/// dropped.
pub fn name_blocking(
    names_first: &[Vec<String>],
    names_second: &[Vec<String>],
) -> (BlockCollection, Interner) {
    name_blocking_with(names_first, names_second, &Executor::sequential())
}

/// Builds `BN` on `exec`: name canonicalization (the string-heavy part)
/// runs data-parallel over entities; interning and block grouping stay
/// sequential, in entity order, so the result is identical to
/// [`name_blocking`] for any thread count.
pub fn name_blocking_with(
    names_first: &[Vec<String>],
    names_second: &[Vec<String>],
    exec: &Executor,
) -> (BlockCollection, Interner) {
    let canon = |names: &[Vec<String>]| -> Vec<Vec<String>> {
        exec.map_range(names.len(), |e| {
            names[e].iter().map(|n| canonical_name(n)).collect()
        })
    };
    let canon_first = canon(names_first);
    let canon_second = canon(names_second);
    let mut interner = Interner::new();
    let mut firsts: Vec<Vec<EntityId>> = Vec::new();
    let mut seconds: Vec<Vec<EntityId>> = Vec::new();
    let add = |interner: &mut Interner,
               sides: &mut Vec<Vec<EntityId>>,
               other: &mut Vec<Vec<EntityId>>,
               e: EntityId,
               canon: &str| {
        if canon.is_empty() {
            return;
        }
        let id = interner.intern(canon) as usize;
        if sides.len() <= id {
            sides.resize(id + 1, Vec::new());
            other.resize(id + 1, Vec::new());
        }
        if sides[id].last() != Some(&e) {
            sides[id].push(e);
        }
    };
    for (i, names) in canon_first.iter().enumerate() {
        for name in names {
            add(
                &mut interner,
                &mut firsts,
                &mut seconds,
                EntityId(i as u32),
                name,
            );
        }
    }
    for (i, names) in canon_second.iter().enumerate() {
        for name in names {
            add(
                &mut interner,
                &mut seconds,
                &mut firsts,
                EntityId(i as u32),
                name,
            );
        }
    }
    let mut blocks = Vec::new();
    for key in 0..interner.len() {
        let f = &firsts[key];
        let s = &seconds[key];
        if !f.is_empty() && !s.is_empty() {
            blocks.push(Block {
                key: key as u32,
                firsts: f.clone(),
                seconds: s.clone(),
            });
        }
    }
    let collection = BlockCollection::new(
        BlockKind::Name,
        blocks,
        names_first.len(),
        names_second.len(),
    );
    (collection, interner)
}

/// Canonicalizes a name: lower-case, strip punctuation, collapse runs of
/// non-alphanumeric characters to single spaces.
///
/// Keying on the *token sequence* rather than the raw string makes H1
/// robust to formatting differences between KBs ("Dassin, Jules" vs
/// "dassin jules") while still requiring the exact ordered tokens —
/// consistent with the schema-agnostic tokenization used everywhere
/// else.
pub fn canonical_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut pending_space = false;
    for c in name.chars() {
        if c.is_alphanumeric() {
            if pending_space {
                out.push(' ');
                pending_space = false;
            }
            out.extend(c.to_lowercase());
        } else {
            pending_space = !out.is_empty();
        }
    }
    out
}

/// The H1 decision at block level: pairs from name blocks that contain
/// exactly one entity of each side.
pub fn unique_name_pairs(bn: &BlockCollection) -> Vec<(EntityId, EntityId)> {
    bn.blocks()
        .iter()
        .filter(|b| b.firsts.len() == 1 && b.seconds.len() == 1)
        .map(|b| (b.firsts[0], b.seconds[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&[&str]]) -> Vec<Vec<String>> {
        v.iter()
            .map(|e| e.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn canonicalization() {
        assert_eq!(canonical_name("  Kri   KRI \t Taverna "), "kri kri taverna");
        assert_eq!(canonical_name(""), "");
        assert_eq!(canonical_name("  "), "");
        // Punctuation-robust: formatting differences between KBs do not
        // change the key, token order does.
        assert_eq!(canonical_name("Dassin, Jules"), "dassin jules");
        assert_eq!(canonical_name("dassin  jules"), "dassin jules");
        assert_ne!(
            canonical_name("Jules Dassin"),
            canonical_name("Dassin, Jules")
        );
    }

    #[test]
    fn blocks_require_both_sides() {
        let (bn, _) = name_blocking(
            &names(&[&["Alpha"], &["Beta"]]),
            &names(&[&["alpha"], &["Gamma"]]),
        );
        assert_eq!(bn.len(), 1);
        assert_eq!(bn.blocks()[0].firsts, vec![EntityId(0)]);
        assert_eq!(bn.blocks()[0].seconds, vec![EntityId(0)]);
    }

    #[test]
    fn unique_name_pairs_exclude_ambiguous_blocks() {
        let (bn, _) = name_blocking(
            &names(&[&["Alpha"], &["Alpha"], &["Beta"]]),
            &names(&[&["alpha"], &["beta"]]),
        );
        // "alpha" block has two first-side entities -> not unique.
        let pairs = unique_name_pairs(&bn);
        assert_eq!(pairs, vec![(EntityId(2), EntityId(1))]);
    }

    #[test]
    fn multiple_names_per_entity() {
        let (bn, interner) = name_blocking(
            &names(&[&["Alpha", "The Alpha Place"]]),
            &names(&[&["the  alpha   place"]]),
        );
        assert_eq!(bn.len(), 1);
        assert_eq!(interner.resolve(bn.blocks()[0].key), "the alpha place");
        assert_eq!(unique_name_pairs(&bn), vec![(EntityId(0), EntityId(0))]);
    }

    #[test]
    fn empty_names_are_ignored() {
        let (bn, _) = name_blocking(&names(&[&["", "   "]]), &names(&[&["x"]]));
        assert!(bn.is_empty());
        assert!(unique_name_pairs(&bn).is_empty());
    }

    #[test]
    fn duplicate_name_on_same_entity_counts_once() {
        let (bn, _) = name_blocking(&names(&[&["A", "a"]]), &names(&[&["a"]]));
        assert_eq!(bn.len(), 1);
        assert_eq!(bn.blocks()[0].firsts.len(), 1);
        assert_eq!(unique_name_pairs(&bn).len(), 1);
    }
}
