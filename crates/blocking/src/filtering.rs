//! Block Filtering — an optional comparison-reduction step from the
//! meta-blocking line of work the paper builds on ([6]).
//!
//! Where Block Purging removes entire oversized blocks, Block Filtering
//! is per-entity: each entity is retained only in the `ratio` fraction
//! of its *smallest* blocks (its most distinctive keys). This shrinks
//! large blocks without deleting them, trading a little recall for a
//! large cut in comparisons. The `ablation_params` harness exposes it as
//! an extension ablation; the paper's pipeline itself uses purging only.

use minoan_kb::{BlockId, EntityId, KbSide};

use crate::block::{Block, BlockCollection};

/// Applies Block Filtering with the given retention `ratio ∈ (0, 1]`.
///
/// Every entity keeps its assignments only in the `⌈ratio · |blocks(e)|⌉`
/// blocks with the fewest comparisons (ties broken by block id for
/// determinism). Blocks left with an empty side are dropped.
pub fn block_filtering(collection: &BlockCollection, ratio: f64) -> BlockCollection {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "retention ratio must be in (0, 1], got {ratio}"
    );
    // Per entity: keep the smallest-cardinality fraction of its blocks.
    let keep_per_entity = |side: KbSide, n: usize, out: &mut Vec<Vec<BlockId>>| {
        for e in (0..n as u32).map(EntityId) {
            let mut blocks: Vec<BlockId> = collection.blocks_of(side, e).to_vec();
            blocks.sort_by_key(|&b| (collection.block(b).comparisons(), b));
            let keep = ((blocks.len() as f64 * ratio).ceil() as usize)
                .max(1)
                .min(blocks.len());
            blocks.truncate(keep);
            out.push(blocks);
        }
    };
    let (n_first, n_second) = side_counts(collection);
    let mut keep_first: Vec<Vec<BlockId>> = Vec::with_capacity(n_first);
    let mut keep_second: Vec<Vec<BlockId>> = Vec::with_capacity(n_second);
    keep_per_entity(KbSide::First, n_first, &mut keep_first);
    keep_per_entity(KbSide::Second, n_second, &mut keep_second);

    let retained = |kept: &[Vec<BlockId>], e: EntityId, b: BlockId| {
        kept.get(e.index()).is_some_and(|v| v.contains(&b))
    };
    let blocks: Vec<Block> = collection
        .blocks()
        .iter()
        .enumerate()
        .filter_map(|(i, b)| {
            let id = BlockId(i as u32);
            let firsts: Vec<EntityId> = b
                .firsts
                .iter()
                .copied()
                .filter(|&e| retained(&keep_first, e, id))
                .collect();
            let seconds: Vec<EntityId> = b
                .seconds
                .iter()
                .copied()
                .filter(|&e| retained(&keep_second, e, id))
                .collect();
            if firsts.is_empty() || seconds.is_empty() {
                None
            } else {
                Some(Block {
                    key: b.key,
                    firsts,
                    seconds,
                })
            }
        })
        .collect();
    BlockCollection::new(collection.kind(), blocks, n_first, n_second)
}

/// Recovers the per-side entity-universe sizes of a collection.
fn side_counts(collection: &BlockCollection) -> (usize, usize) {
    let max1 = collection
        .blocks()
        .iter()
        .flat_map(|b| b.firsts.iter())
        .map(|e| e.index() + 1)
        .max()
        .unwrap_or(0);
    let max2 = collection
        .blocks()
        .iter()
        .flat_map(|b| b.seconds.iter())
        .map(|e| e.index() + 1)
        .max()
        .unwrap_or(0);
    (max1, max2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockKind;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn sample() -> BlockCollection {
        // Entity 0 (first side) is in a small block (1x1) and a big one
        // (3x3). With ratio 0.5 it keeps only the small one.
        let blocks = vec![
            Block {
                key: 0,
                firsts: vec![e(0)],
                seconds: vec![e(0)],
            },
            Block {
                key: 1,
                firsts: vec![e(0), e(1), e(2)],
                seconds: vec![e(0), e(1), e(2)],
            },
        ];
        BlockCollection::new(BlockKind::Token, blocks, 3, 3)
    }

    #[test]
    fn keeps_the_smallest_blocks_per_entity() {
        let filtered = block_filtering(&sample(), 0.5);
        // Entity 0 keeps only block 0; entities 1 and 2 keep block 1
        // (their only block).
        let b1 = filtered
            .blocks()
            .iter()
            .find(|b| b.key == 1)
            .expect("big block survives for entities 1,2");
        assert!(!b1.firsts.contains(&e(0)));
        assert!(b1.firsts.contains(&e(1)) && b1.firsts.contains(&e(2)));
        assert!(filtered.blocks().iter().any(|b| b.key == 0));
    }

    #[test]
    fn ratio_one_is_identity_on_comparison_structure() {
        let c = sample();
        let filtered = block_filtering(&c, 1.0);
        assert_eq!(filtered.total_comparisons(), c.total_comparisons());
        assert_eq!(filtered.len(), c.len());
    }

    #[test]
    fn filtering_never_increases_comparisons() {
        let c = sample();
        for ratio in [0.2, 0.5, 0.8, 1.0] {
            let filtered = block_filtering(&c, ratio);
            assert!(filtered.total_comparisons() <= c.total_comparisons());
        }
    }

    #[test]
    fn every_entity_keeps_at_least_one_block() {
        let filtered = block_filtering(&sample(), 0.01);
        for i in 0..3 {
            assert!(
                !filtered.blocks_of(KbSide::First, e(i)).is_empty(),
                "entity {i} lost all blocks"
            );
        }
    }

    #[test]
    #[should_panic(expected = "retention ratio")]
    fn zero_ratio_panics() {
        block_filtering(&sample(), 0.0);
    }

    #[test]
    fn empty_collection_is_fine() {
        let c = BlockCollection::new(BlockKind::Token, vec![], 0, 0);
        let filtered = block_filtering(&c, 0.5);
        assert!(filtered.is_empty());
    }
}
