//! Deterministic fault injection behind named sites.
//!
//! Production code marks interesting failure points with
//! [`point`]`("site.name")`. Disarmed (the default) a site is a single
//! relaxed atomic load — no allocation, no locking, no syscalls. Armed,
//! each site consults a seeded plan that decides **deterministically**
//! (a hash of `seed × site × hit-counter`, never wall-clock randomness)
//! whether to inject a fault and of which kind:
//!
//! - `io` — the site returns an injected [`std::io::Error`], which the
//!   caller surfaces through its normal IO error path (classified as a
//!   *transient* failure by the job supervisor);
//! - `panic` — the site panics, exercising the scheduler's
//!   catch-unwind / poison quarantine path;
//! - `delay` — the site sleeps [`DELAY`], simulating a stall so
//!   deadline expiry can be tested without flaky timing tricks;
//! - `alloc` — the site allocates and touches [`ALLOC_SPIKE_BYTES`]
//!   and holds it for [`ALLOC_HOLD`], simulating a memory spike the
//!   RSS watchdog should catch.
//!
//! The plan is armed from the `MINOAN_FAULTS` environment variable on
//! first use, or programmatically via [`arm`] (tests). The spec grammar
//! is a comma-separated list:
//!
//! ```text
//! MINOAN_FAULTS=seed:42,kb.parse.read:1:io:1,serve.job.execute:0.5:panic
//!               ─┬─────  ─┬──────────────── ─┬────────────────────────
//!                seed     site:prob[:kind[:max]]
//! ```
//!
//! `prob` ∈ [0,1] is the per-hit firing probability, `kind` is one of
//! `io|panic|delay|alloc` (default `io`), and `max` caps the total
//! number of firings at that site (default unlimited) — `site:1:io:1`
//! reads "fail the first hit, then behave", the shape retry tests want.
//! Arming is process-global; concurrent tests that arm faults must
//! serialize on their own lock and [`disarm`] when done.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Once, RwLock};
use std::time::Duration;

/// Sleep injected by a `delay` fault.
pub const DELAY: Duration = Duration::from_millis(100);

/// Bytes allocated (and touched) by an `alloc` fault.
pub const ALLOC_SPIKE_BYTES: usize = 64 << 20;

/// How long an `alloc` fault holds its spike before dropping it, so a
/// sampling watchdog reliably observes the elevated RSS.
pub const ALLOC_HOLD: Duration = Duration::from_millis(300);

/// What an armed site injects when its rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return an injected [`io::Error`] from the site.
    Io,
    /// Panic at the site.
    Panic,
    /// Sleep [`DELAY`] at the site.
    Delay,
    /// Allocate, touch and briefly hold [`ALLOC_SPIKE_BYTES`].
    AllocSpike,
}

#[derive(Debug)]
struct Rule {
    site: String,
    prob: f64,
    kind: FaultKind,
    /// Total firings allowed; `u64::MAX` = unlimited.
    max_fires: u64,
    hits: AtomicU64,
    fires: AtomicU64,
}

#[derive(Debug)]
struct Plan {
    seed: u64,
    rules: Vec<Rule>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<Plan>> = RwLock::new(None);
static ENV_INIT: Once = Once::new();

/// Parses and installs a fault plan (see the module docs for the
/// grammar), replacing any previous plan. Returns a description of the
/// first malformed clause on error, leaving the previous plan armed.
pub fn arm(spec: &str) -> Result<(), String> {
    // Consume the one-shot env initialization first: a programmatic
    // plan must not be clobbered later when the first `point()` lazily
    // reads `MINOAN_FAULTS`.
    ENV_INIT.call_once(|| {});
    install(spec)
}

fn install(spec: &str) -> Result<(), String> {
    let plan = parse_spec(spec)?;
    let armed = !plan.rules.is_empty();
    *PLAN.write().expect("fault plan lock") = Some(plan);
    ARMED.store(armed, Ordering::SeqCst);
    Ok(())
}

/// Removes any armed plan; every site goes back to zero-cost pass-through.
pub fn disarm() {
    ENV_INIT.call_once(|| {});
    ARMED.store(false, Ordering::SeqCst);
    *PLAN.write().expect("fault plan lock") = None;
}

/// The seed of the armed plan, if any — lets a test suite driven by
/// `MINOAN_FAULTS=seed:N` vary its own programmatic plans by N.
pub fn armed_seed() -> Option<u64> {
    init_from_env();
    PLAN.read()
        .expect("fault plan lock")
        .as_ref()
        .map(|p| p.seed)
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("MINOAN_FAULTS") {
            if let Err(e) = install(&spec) {
                minoan_obs::warn!("exec.faults", "ignoring malformed MINOAN_FAULTS: {e}");
            }
        }
    });
}

/// A named fault-injection site. Returns `Ok(())` in normal operation;
/// an armed `io` rule makes it return the injected error, and the other
/// kinds act in place (panic, sleep, allocation spike) before returning
/// `Ok(())`. Call as `faults::point("kb.parse.read")?` wherever an IO
/// failure is plausible.
pub fn point(site: &str) -> io::Result<()> {
    init_from_env();
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    let kind = {
        let guard = PLAN.read().expect("fault plan lock");
        let Some(plan) = guard.as_ref() else {
            return Ok(());
        };
        let Some(rule) = plan.rules.iter().find(|r| r.site == site) else {
            return Ok(());
        };
        let hit = rule.hits.fetch_add(1, Ordering::SeqCst);
        if !decide(plan.seed, site, hit, rule.prob) {
            return Ok(());
        }
        if rule.fires.fetch_add(1, Ordering::SeqCst) >= rule.max_fires {
            return Ok(());
        }
        rule.kind
    };
    match kind {
        FaultKind::Io => Err(io::Error::other(format!("injected fault at {site}"))),
        FaultKind::Panic => panic!("injected panic at {site}"),
        FaultKind::Delay => {
            std::thread::sleep(DELAY);
            Ok(())
        }
        FaultKind::AllocSpike => {
            // Touch every page so the spike is resident, not just mapped.
            let spike = vec![1u8; ALLOC_SPIKE_BYTES];
            std::thread::sleep(ALLOC_HOLD);
            drop(spike);
            Ok(())
        }
    }
}

/// The deterministic firing decision for the `hit`-th arrival at
/// `site` under `seed`: a hash mapped to [0,1) compared against `prob`.
/// Exposed so tests can assert determinism directly.
pub fn decide(seed: u64, site: &str, hit: u64, prob: f64) -> bool {
    if prob >= 1.0 {
        return true;
    }
    if prob <= 0.0 {
        return false;
    }
    let mut h = splitmix64(seed ^ fnv1a(site.as_bytes()));
    h = splitmix64(h ^ hit);
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    unit < prob
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn parse_spec(spec: &str) -> Result<Plan, String> {
    let mut seed = 0u64;
    let mut rules = Vec::new();
    for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
        let parts: Vec<&str> = clause.split(':').collect();
        if parts.len() == 2 && parts[0] == "seed" {
            seed = parts[1]
                .parse()
                .map_err(|_| format!("bad seed in {clause:?}"))?;
            continue;
        }
        if !(2..=4).contains(&parts.len()) {
            return Err(format!(
                "bad clause {clause:?}: want site:prob[:kind[:max]]"
            ));
        }
        let prob: f64 = parts[1]
            .parse()
            .map_err(|_| format!("bad probability in {clause:?}"))?;
        if !(0.0..=1.0).contains(&prob) {
            return Err(format!("probability out of [0,1] in {clause:?}"));
        }
        let kind = match parts.get(2).copied().unwrap_or("io") {
            "io" => FaultKind::Io,
            "panic" => FaultKind::Panic,
            "delay" => FaultKind::Delay,
            "alloc" => FaultKind::AllocSpike,
            other => return Err(format!("unknown fault kind {other:?} in {clause:?}")),
        };
        let max_fires = match parts.get(3) {
            Some(n) => n
                .parse()
                .map_err(|_| format!("bad max-fires in {clause:?}"))?,
            None => u64::MAX,
        };
        rules.push(Rule {
            site: parts[0].to_string(),
            prob,
            kind,
            max_fires,
            hits: AtomicU64::new(0),
            fires: AtomicU64::new(0),
        });
    }
    Ok(Plan { seed, rules })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Arming is process-global; these tests serialize on one lock.
    static ARM_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_points_pass_through() {
        let _guard = locked();
        disarm();
        assert!(point("any.site").is_ok());
    }

    #[test]
    fn io_fault_fires_and_respects_max() {
        let _guard = locked();
        arm("seed:1,t.io:1:io:2").unwrap();
        assert!(point("t.io").is_err());
        assert!(point("t.io").is_err());
        assert!(point("t.io").is_ok(), "max-fires exhausted");
        assert!(point("t.other").is_ok(), "unlisted site untouched");
        disarm();
    }

    #[test]
    fn panic_fault_panics() {
        let _guard = locked();
        arm("seed:1,t.panic:1:panic").unwrap();
        let unwound = std::panic::catch_unwind(|| point("t.panic"));
        disarm();
        assert!(unwound.is_err());
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let a: Vec<bool> = (0..64).map(|hit| decide(7, "s", hit, 0.5)).collect();
        let b: Vec<bool> = (0..64).map(|hit| decide(7, "s", hit, 0.5)).collect();
        assert_eq!(a, b);
        let c: Vec<bool> = (0..64).map(|hit| decide(8, "s", hit, 0.5)).collect();
        assert_ne!(a, c, "a different seed draws a different sequence");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            (8..56).contains(&fired),
            "prob 0.5 fires about half: {fired}"
        );
    }

    #[test]
    fn prob_bounds_short_circuit() {
        assert!(decide(1, "s", 0, 1.0));
        assert!(!decide(1, "s", 0, 0.0));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _guard = locked();
        assert!(arm("seed:x").is_err());
        assert!(arm("site").is_err());
        assert!(arm("site:2.0").is_err());
        assert!(arm("site:0.5:nuke").is_err());
        assert!(arm("site:0.5:io:many").is_err());
        disarm();
    }

    #[test]
    fn seed_only_spec_stays_disarmed_but_reports_seed() {
        let _guard = locked();
        arm("seed:42").unwrap();
        assert!(point("t.any").is_ok());
        assert_eq!(armed_seed(), Some(42));
        disarm();
    }
}
