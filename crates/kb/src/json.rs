//! Minimal JSON values: construction, pretty-printing, parsing.
//!
//! The CLI, the benchmark harness and the config round-trip all need a
//! small amount of JSON. The build environment has no registry access,
//! so instead of a serde dependency this module provides a tiny value
//! type with a writer and a strict parser — enough for flat reports and
//! configuration objects, not a general serde replacement.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (serialized via shortest round-trip formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a usize, if integral and in range.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= usize::MAX as f64).then_some(n as usize)
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serializes on a single line with no whitespace — the framing the
    /// line-delimited socket protocols need (one JSON document per
    /// line; embedded newlines in strings are escaped by the writer).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(values) => {
                out.push('[');
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(values) => {
                if values.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document from raw bytes: strict UTF-8 validation
    /// first (a readable error instead of a panic or lossy decode),
    /// then [`Json::parse`]. This is the entry point for protocol
    /// front-ends that frame bytes off a socket — the HTTP body and
    /// line-JSON paths both funnel through it, so "invalid UTF-8 in a
    /// request" is one error shape everywhere.
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json, String> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| format!("invalid UTF-8 in JSON document: {e}"))?;
        Json::parse(text)
    }

    /// Parses a JSON document (strict; trailing content is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        // `{:?}` is Rust's shortest round-trip float formatting; strip
        // the ".0" suffix for integral values so counts stay integers.
        let s = format!("{n:?}");
        let _ = write!(out, "{}", s.strip_suffix(".0").unwrap_or(&s));
    } else {
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(format!("expected {token:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?, 16)
            .map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Combine UTF-16 surrogate pairs (how
                            // standard serializers escape non-BMP
                            // characters).
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                    } else {
                                        return Err(format!(
                                            "unpaired surrogate \\u{code:04x} before \\u{low:04x}"
                                        ));
                                    }
                                } else {
                                    return Err(format!("unpaired surrogate \\u{code:04x}"));
                                }
                            } else {
                                code
                            };
                            out.push(char::from_u32(scalar).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat("[")?;
        let mut values = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(values));
        }
        loop {
            self.skip_ws();
            values.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(values));
                }
                other => return Err(format!("expected , or ] but got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} but got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_round_trips() {
        let v = Json::obj([
            ("name", Json::str("kri \"kri\" taverna")),
            ("count", Json::num(3u32)),
            ("ratio", Json::Num(0.6)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("list", Json::arr([Json::num(1u32), Json::num(2u32)])),
            ("empty", Json::arr([])),
        ]);
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let v = Json::obj([
            ("s", Json::str("multi\nline \u{1}ctrl \"q\"")),
            ("n", Json::Num(2.5)),
            (
                "a",
                Json::arr([Json::Null, Json::Bool(false), Json::str("x")]),
            ),
            ("o", Json::obj([("inner", Json::num(1u32))])),
            ("e", Json::arr([])),
        ]);
        let line = v.compact();
        assert!(!line.contains('\n'), "compact output must be one line");
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.6, 1.025, 1e-9, 123456.789, f64::MIN_POSITIVE] {
            let text = Json::Num(f).pretty();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(f), "{text}");
        }
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::num(42u32).pretty(), "42");
        assert_eq!(Json::Num(-7.0).pretty(), "-7");
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("a", Json::num(2u32)), ("s", Json::str("x"))]);
        assert_eq!(v.get("a").and_then(Json::as_usize), Some(2));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Num(1.5).as_usize(), None);
    }

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"a": [1, {"b": "c\nd"}], "e": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::arr([Json::num(1u32), Json::obj([("b", Json::str("c\nd"))]),])
        );
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Json::str("πολύ 🏛️");
        let back = Json::parse(&v.pretty()).unwrap();
        assert_eq!(back.as_str(), Some("πολύ 🏛️"));
    }

    #[test]
    fn surrogate_pair_escapes_decode_to_one_character() {
        // U+1F3DB escaped the way standard serializers emit non-BMP
        // characters: a surrogate pair of \u escapes.
        let v = Json::parse(r#""\ud83c\udfdb""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F3DB}"));
        // BMP escapes still work.
        assert_eq!(Json::parse(r#""A""#).unwrap().as_str(), Some("A"));
        // Unpaired surrogates are rejected, not mangled.
        assert!(Json::parse(r#""\ud83c""#).is_err());
        assert!(Json::parse(r#""\ud83cA""#).is_err());
        assert!(Json::parse(r#""\udfdb""#).unwrap().as_str() == Some("\u{fffd}"));
    }

    #[test]
    fn parse_bytes_validates_utf8_before_parsing() {
        assert_eq!(
            Json::parse_bytes(br#"{"a": 1}"#).unwrap(),
            Json::obj([("a", Json::num(1u32))])
        );
        let err = Json::parse_bytes(b"{\"a\": \xff}").unwrap_err();
        assert!(err.contains("invalid UTF-8"), "{err}");
        assert!(Json::parse_bytes(b"{").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
