//! Block Purging.
//!
//! Token Blocking creates a block per token, so highly frequent tokens
//! (stop-words, country names, …) create enormous blocks that contribute
//! a huge number of comparisons and almost no matching evidence. The
//! paper bounds the comparison count by removing such blocks (§III,
//! following the meta-blocking literature [6]).
//!
//! The comparison-based criterion implemented here works on the
//! distribution of block cardinalities: let the distinct per-block
//! comparison counts be `d_1 < d_2 < … < d_m`, and for each level `i`
//! let `CC_i` be the cumulative comparisons and `BC_i` the cumulative
//! block assignments of all blocks with cardinality ≤ `d_i`. Scanning
//! from the largest level down, the purging threshold is the largest
//! `d_i` whose inclusion keeps the growth of comparisons proportionate to
//! the growth of assignments:
//!
//! ```text
//! CC_i · BC_{i-1}  ≤  s · CC_{i-1} · BC_i        (smoothing s = 1.025)
//! ```
//!
//! Oversized blocks fail this test (they add a large `CC` jump with a
//! modest `BC` jump) and everything above the threshold is purged.

use minoan_exec::Executor;

use crate::block::BlockCollection;

/// Default smoothing factor, as used in the meta-blocking line of work.
pub const DEFAULT_SMOOTHING: f64 = 1.025;

/// Outcome of a purging pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PurgeReport {
    /// Maximum comparisons a block may have to survive.
    pub max_comparisons_per_block: u64,
    /// Blocks before purging.
    pub blocks_before: usize,
    /// Blocks after purging.
    pub blocks_after: usize,
    /// Total comparisons before purging.
    pub comparisons_before: u64,
    /// Total comparisons after purging.
    pub comparisons_after: u64,
}

/// Computes the purging threshold for `collection` with smoothing `s`.
///
/// Returns the maximum per-block comparison cardinality that survives.
/// Collections with fewer than two distinct cardinality levels are left
/// intact (their largest cardinality is returned).
pub fn purging_threshold(collection: &BlockCollection, s: f64) -> u64 {
    purging_threshold_with(collection, s, &Executor::sequential())
}

/// [`purging_threshold`] with the per-block cardinality statistics
/// gathered data-parallel over block ranges on `exec`. The statistics
/// are integers, so the threshold is identical for any thread count.
pub fn purging_threshold_with(collection: &BlockCollection, s: f64, exec: &Executor) -> u64 {
    let blocks = collection.blocks();
    let cards: Vec<(u64, u64)> = exec
        .map_parts(blocks.len(), |range| {
            blocks[range]
                .iter()
                .map(|b| (b.comparisons(), b.assignments()))
                .collect::<Vec<_>>()
        })
        .concat();
    threshold_from_cards(cards, s)
}

/// Computes the purging threshold directly from per-block
/// `(comparisons, assignments)` cardinalities. The criterion only
/// depends on the *multiset* of cardinalities (they are sorted here),
/// so any layer that can enumerate block statistics — the delta engine
/// does it from its mutable membership lists without materializing
/// blocks — gets exactly the threshold [`purging_threshold_with`]
/// would compute.
pub fn threshold_from_cards(mut cards: Vec<(u64, u64)>, s: f64) -> u64 {
    assert!(s >= 1.0, "smoothing factor must be >= 1");
    if cards.is_empty() {
        return 0;
    }
    cards.sort_unstable();
    // Collapse to distinct cardinality levels with cumulative CC and BC.
    let mut levels: Vec<(u64, f64, f64)> = Vec::new(); // (cardinality, CC, BC)
    let mut cc = 0.0;
    let mut bc = 0.0;
    for (comparisons, assignments) in cards {
        cc += comparisons as f64;
        bc += assignments as f64;
        match levels.last_mut() {
            Some((d, lcc, lbc)) if *d == comparisons => {
                *lcc = cc;
                *lbc = bc;
            }
            _ => levels.push((comparisons, cc, bc)),
        }
    }
    if levels.len() < 2 {
        return levels[0].0;
    }
    for i in (1..levels.len()).rev() {
        let (d_i, cc_i, bc_i) = levels[i];
        let (_, cc_prev, bc_prev) = levels[i - 1];
        if cc_i * bc_prev <= s * cc_prev * bc_i {
            return d_i;
        }
    }
    levels[0].0
}

/// Purges `collection` using [`purging_threshold`] with smoothing `s`,
/// returning the surviving collection and a report.
pub fn purge_with(collection: &BlockCollection, s: f64) -> (BlockCollection, PurgeReport) {
    purge_with_exec(collection, s, &Executor::sequential())
}

/// [`purge_with`] running the statistics pass on `exec`.
pub fn purge_with_exec(
    collection: &BlockCollection,
    s: f64,
    exec: &Executor,
) -> (BlockCollection, PurgeReport) {
    let threshold = purging_threshold_with(collection, s, exec);
    let purged = collection.filter_blocks(|b| b.comparisons() <= threshold);
    let report = PurgeReport {
        max_comparisons_per_block: threshold,
        blocks_before: collection.len(),
        blocks_after: purged.len(),
        comparisons_before: collection.total_comparisons(),
        comparisons_after: purged.total_comparisons(),
    };
    (purged, report)
}

/// Purges with the default smoothing factor.
pub fn purge(collection: &BlockCollection) -> (BlockCollection, PurgeReport) {
    purge_with(collection, DEFAULT_SMOOTHING)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockKind};
    use minoan_kb::EntityId;

    fn block(key: u32, n1: usize, n2: usize) -> Block {
        Block {
            key,
            firsts: (0..n1 as u32).map(EntityId).collect(),
            seconds: (0..n2 as u32).map(EntityId).collect(),
        }
    }

    fn collection(blocks: Vec<Block>) -> BlockCollection {
        let n1 = blocks.iter().map(|b| b.firsts.len()).max().unwrap_or(0);
        let n2 = blocks.iter().map(|b| b.seconds.len()).max().unwrap_or(0);
        BlockCollection::new(BlockKind::Token, blocks, n1, n2)
    }

    #[test]
    fn empty_collection_has_zero_threshold() {
        let c = collection(vec![]);
        assert_eq!(purging_threshold(&c, DEFAULT_SMOOTHING), 0);
        let (p, r) = purge(&c);
        assert!(p.is_empty());
        assert_eq!(r.comparisons_after, 0);
    }

    #[test]
    fn uniform_collection_is_untouched() {
        let c = collection((0..10).map(|k| block(k, 2, 2)).collect());
        let (p, r) = purge(&c);
        assert_eq!(p.len(), 10);
        assert_eq!(r.comparisons_after, r.comparisons_before);
    }

    #[test]
    fn stop_word_block_is_purged() {
        // 100 small blocks of 1x1 plus one enormous 80x80 block: the big
        // block contributes 6400 of 6500 comparisons but only a sliver of
        // additional assignments per comparison.
        let mut blocks: Vec<Block> = (0..100).map(|k| block(k, 1, 1)).collect();
        blocks.push(block(100, 80, 80));
        let c = collection(blocks);
        let (p, r) = purge(&c);
        assert_eq!(r.blocks_before, 101);
        assert_eq!(r.blocks_after, 100);
        assert_eq!(r.comparisons_after, 100);
        assert!(p.blocks().iter().all(|b| b.comparisons() == 1));
    }

    #[test]
    fn purging_never_increases_comparisons() {
        let c = collection(
            (1..20)
                .map(|k| block(k, (k % 7 + 1) as usize, (k % 5 + 1) as usize))
                .collect(),
        );
        let (_, r) = purge(&c);
        assert!(r.comparisons_after <= r.comparisons_before);
        assert!(r.blocks_after <= r.blocks_before);
    }

    #[test]
    fn threshold_is_a_surviving_cardinality() {
        let c = collection(vec![block(0, 1, 1), block(1, 2, 2), block(2, 50, 50)]);
        let t = purging_threshold(&c, DEFAULT_SMOOTHING);
        assert!(c.blocks().iter().any(|b| b.comparisons() == t));
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn sub_one_smoothing_panics() {
        let c = collection(vec![block(0, 1, 1)]);
        purging_threshold(&c, 0.5);
    }

    #[test]
    fn higher_smoothing_purges_less() {
        let mut blocks: Vec<Block> = (0..50).map(|k| block(k, 1, 1)).collect();
        blocks.push(block(50, 10, 10));
        blocks.push(block(51, 40, 40));
        let c = collection(blocks);
        let t_tight = purging_threshold(&c, 1.0);
        let t_loose = purging_threshold(&c, 1e6);
        assert!(t_tight <= t_loose);
        assert_eq!(t_loose, 1600, "astronomical smoothing keeps everything");
    }
}
