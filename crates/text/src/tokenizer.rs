//! Schema-agnostic tokenization.
//!
//! MinoanER treats every entity description as a *bag of strings*: all
//! literal values, regardless of attribute, are lower-cased and split on
//! non-alphanumeric boundaries. Token Blocking and `valueSim` both operate
//! on the resulting token sets.

use crate::stopwords::is_stopword;

/// Tokenizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenizerOptions {
    /// Minimum token length in characters; shorter tokens are dropped.
    pub min_len: usize,
    /// Drop common English stop-words. Off by default: the paper relies on
    /// Block Purging, not stop-word lists, to neutralize frequent tokens.
    pub remove_stopwords: bool,
    /// Drop tokens that are purely numeric. Off by default.
    pub remove_numeric: bool,
}

impl Default for TokenizerOptions {
    fn default() -> Self {
        Self {
            min_len: 1,
            remove_stopwords: false,
            remove_numeric: false,
        }
    }
}

/// A configured tokenizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tokenizer {
    opts: TokenizerOptions,
}

impl Tokenizer {
    /// Creates a tokenizer with the given options.
    pub fn new(opts: TokenizerOptions) -> Self {
        Self { opts }
    }

    /// The active options.
    pub fn options(&self) -> TokenizerOptions {
        self.opts
    }

    /// Tokenizes `text`, pushing lower-cased tokens into `out`.
    ///
    /// Reuses the caller's buffer to avoid per-call allocations on the hot
    /// path (see "Reusing Collections" in the perf guide).
    pub fn tokenize_into(&self, text: &str, out: &mut Vec<String>) {
        let mut cur = String::new();
        for c in text.chars() {
            if c.is_alphanumeric() {
                cur.extend(c.to_lowercase());
            } else if !cur.is_empty() {
                self.flush(&mut cur, out);
            }
        }
        if !cur.is_empty() {
            self.flush(&mut cur, out);
        }
    }

    /// Tokenizes `text` into a fresh vector.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.tokenize_into(text, &mut out);
        out
    }

    fn flush(&self, cur: &mut String, out: &mut Vec<String>) {
        let keep = cur.chars().count() >= self.opts.min_len
            && !(self.opts.remove_stopwords && is_stopword(cur))
            && !(self.opts.remove_numeric && cur.chars().all(|c| c.is_ascii_digit()));
        if keep {
            out.push(std::mem::take(cur));
        } else {
            cur.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumerics_and_lowercases() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("Taverna Kri-Kri, Heraklion (1982)"),
            vec!["taverna", "kri", "kri", "heraklion", "1982"]
        );
    }

    #[test]
    fn unicode_text_is_handled() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("Μινωικός Πολιτισμός"),
            vec!["μινωικός", "πολιτισμός"]
        );
    }

    #[test]
    fn uri_like_literals_are_split() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("http://dbpedia.org/resource/Knossos"),
            vec!["http", "dbpedia", "org", "resource", "knossos"]
        );
    }

    #[test]
    fn min_len_filters_short_tokens() {
        let t = Tokenizer::new(TokenizerOptions {
            min_len: 3,
            ..Default::default()
        });
        assert_eq!(t.tokenize("a bb ccc dddd"), vec!["ccc", "dddd"]);
    }

    #[test]
    fn stopword_removal() {
        let t = Tokenizer::new(TokenizerOptions {
            remove_stopwords: true,
            ..Default::default()
        });
        assert_eq!(
            t.tokenize("the house of the rising sun"),
            vec!["house", "rising", "sun"]
        );
    }

    #[test]
    fn numeric_removal() {
        let t = Tokenizer::new(TokenizerOptions {
            remove_numeric: true,
            ..Default::default()
        });
        assert_eq!(t.tokenize("route 66 west 1a"), vec!["route", "west", "1a"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("--- ~~~ !!!").is_empty());
    }

    #[test]
    fn tokenize_into_appends() {
        let t = Tokenizer::default();
        let mut buf = vec!["seed".to_string()];
        t.tokenize_into("x y", &mut buf);
        assert_eq!(buf, vec!["seed", "x", "y"]);
    }
}
