//! # minoan-core — the MinoanER matching framework
//!
//! A Rust implementation of *"Simplifying Entity Resolution on Web Data
//! with Schema-agnostic, Non-iterative Matching"* (Efthymiou, Papadakis,
//! Stefanidis, Christophides — ICDE 2018).
//!
//! MinoanER resolves entities across two heterogeneous KBs with no
//! schema alignment, no domain expert and no iterative convergence:
//!
//! 1. data statistics pick the *distinctive name attributes* and the
//!    *important relations* ([`importance`]);
//! 2. schema-agnostic blocks are built and purged (`minoan-blocking`);
//! 3. a [`SimilarityIndex`] derives `valueSim` and `neighborNSim` for all
//!    co-occurring pairs straight from block statistics;
//! 4. four threshold-free heuristics decide:
//!    `M = (H1 ∨ H2 ∨ H3) ∧ H4` ([`heuristics`], [`MinoanEr`]).
//!
//! ```
//! use minoan_core::MinoanEr;
//! use minoan_kb::{KbBuilder, KbPair};
//!
//! let mut a = KbBuilder::new("E1");
//! a.add_literal("a:1", "name", "Palace of Knossos");
//! let mut b = KbBuilder::new("E2");
//! b.add_literal("b:1", "label", "Knossos Palace");
//! let pair = KbPair::new(a.finish(), b.finish());
//!
//! let out = MinoanEr::with_defaults().run(&pair);
//! assert_eq!(out.matching.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod config;
pub mod delta;
pub mod heuristics;
pub mod importance;
pub mod pipeline;
pub mod simindex;

pub use artifact::{ArtifactMeta, IndexArtifact, MatchAnswer};
pub use config::MinoanConfig;
pub use delta::{DeltaReport, PATCH_FAULT_SITE};
pub use heuristics::{
    h1_name_matches, h2_value_matches, h2_value_matches_with, h3_rank_matches,
    h3_rank_matches_with, h3_top_candidate, h4_reciprocal, h4_reciprocal_batch,
};
pub use importance::{
    attribute_importance, attribute_importance_with, entity_names, entity_names_with,
    relation_importance, relation_importance_with, top_neighbors, top_neighbors_with, Importance,
};
pub use pipeline::{
    build_blocks, build_blocks_cancellable, build_blocks_with, BlockingArtifacts, IndexedOutput,
    MatchOutput, MinoanEr, PipelineReport, Timings,
};
pub use simindex::{Candidate, SimilarityIndex};
