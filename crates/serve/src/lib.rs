//! # minoan-serve — the multi-pair serving layer
//!
//! MinoanER resolves one KB pair; production traffic is a *fleet* of
//! pairs. This crate is the layer that turns the engine into a service:
//! a live bounded-memory admission queue ([`scheduler::JobQueue`])
//! schedules jobs across the executor with **pair-level parallelism
//! first** and intra-pair parallelism for stragglers, and streams
//! per-job results, timings and peak-RSS metrics into a report. Two
//! front-ends drain the same queue: **batch mode** ([`run_batch`])
//! submits a whole manifest up front, and **daemon mode**
//! ([`run_daemon`], `minoaner serve --listen`) accepts jobs over a
//! line-delimited JSON socket protocol as they arrive — submit /
//! status / cancel / wait / shutdown, with cooperative **mid-job
//! cancellation** through the pipeline's checkpoints (see [`daemon`]
//! for the wire protocol and checkpoint granularity).
//!
//! ## Manifest format
//!
//! A manifest is a TOML-subset or JSON document (see [`manifest`] for
//! the full field reference and [`toml`] for the supported TOML slice):
//! fleet knobs (`slots`, `threads`, `memory_budget_mib`) plus a list of
//! jobs, each either *synthetic* (`dataset`/`seed`/`scale`, a benchmark
//! profile generated in-process) or *file-based* (`first`/`second` KB
//! paths with an optional `truth` file), with optional per-job matching
//! overrides (`theta`, `k`, `purge`).
//!
//! ## Admission policy
//!
//! Jobs are admitted strictly in submission order under a memory
//! budget (manifest order in batch mode, socket arrival order in
//! daemon mode).
//! Each job's footprint is estimated **before any input is loaded** —
//! from the profile's entity budget for synthetic jobs, from on-disk
//! file sizes for file jobs — and a job waits until the in-flight
//! estimates leave room. The head job is always admitted when nothing
//! else runs, so an over-budget job degrades to running alone rather
//! than deadlocking the fleet. One poisoned job (corrupt input, bad
//! config, a panic) fails alone; the fleet completes.
//!
//! ## Determinism
//!
//! Per-job outputs are bit-identical regardless of fleet size, thread
//! count or scheduling order: the pipeline itself is bit-identical
//! across executors ([`minoan_core::MinoanEr::run_with`]), jobs share no
//! mutable state, and reports are assembled in manifest order.
//! [`JobReport::fingerprint`] canonicalizes exactly the deterministic
//! part of a result, which is what the equivalence tests compare.

#![warn(missing_docs)]

pub mod daemon;
pub mod manifest;
pub mod report;
pub mod scheduler;
pub mod toml;

pub use daemon::run_daemon;

pub use manifest::{JobInput, JobSpec, Manifest};
pub use report::{fnv1a, peak_rss_bytes, JobReport, JobStatus, ServeReport};
pub use scheduler::{
    load_kb_file, load_truth_file, run_batch, run_batch_streaming, CancelOutcome, CancelToken,
    Cancelled, JobId, JobPhase, JobQueue, JobSnapshot, ServeOptions,
};
