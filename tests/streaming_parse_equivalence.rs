//! Streaming-parse equivalence: the chunked parallel parsers must
//! produce a `KnowledgeBase` **identical** to the whole-string parsers —
//! same entity/attribute id assignment, same statement order, same
//! reverse edges — for every benchmark profile, every executor, and
//! adversarial chunk sizes that split lines, multi-byte UTF-8 sequences
//! and N-Triples escapes across chunk boundaries.

use minoaner::datagen::DatasetKind;
use minoaner::exec::{Executor, ExecutorKind};
use minoaner::kb::parse::{
    parse_ntriples, parse_ntriples_reader, parse_tsv, parse_tsv_reader, to_ntriples, to_tsv,
    StreamOptions,
};

const SEED: u64 = 20180416;
const SCALE: f64 = 0.1;

fn executors() -> [Executor; 3] {
    [
        Executor::sequential(),
        Executor::new(ExecutorKind::Rayon, 3),
        Executor::new(ExecutorKind::Rayon, 7),
    ]
}

fn opts(chunk_bytes: usize) -> StreamOptions {
    StreamOptions { chunk_bytes }
}

#[test]
fn tsv_streaming_matches_whole_string_on_every_profile() {
    for kind in DatasetKind::ALL {
        let d = kind.generate_scaled(SEED, SCALE);
        for (kb, name) in [(&d.pair.first, "E1"), (&d.pair.second, "E2")] {
            let text = to_tsv(kb);
            let whole = parse_tsv(name, &text).unwrap();
            for exec in executors() {
                for chunk_bytes in [64, 4096] {
                    let streamed =
                        parse_tsv_reader(name, text.as_bytes(), &exec, opts(chunk_bytes)).unwrap();
                    assert_eq!(
                        whole,
                        streamed,
                        "{}/{name}: TSV stream differs at {} threads, {chunk_bytes}B chunks",
                        d.name,
                        exec.threads()
                    );
                }
            }
        }
    }
}

#[test]
fn ntriples_streaming_matches_whole_string_on_every_profile() {
    for kind in DatasetKind::ALL {
        let d = kind.generate_scaled(SEED, SCALE);
        for (kb, name) in [(&d.pair.first, "E1"), (&d.pair.second, "E2")] {
            let text = to_ntriples(kb);
            let whole = parse_ntriples(name, &text).unwrap();
            for exec in executors() {
                let streamed =
                    parse_ntriples_reader(name, text.as_bytes(), &exec, opts(4096)).unwrap();
                assert_eq!(
                    whole,
                    streamed,
                    "{}/{name}: N-Triples stream differs at {} threads",
                    d.name,
                    exec.threads()
                );
            }
        }
    }
}

/// Adversarial input: multi-byte UTF-8 (Greek, CJK, emoji), every
/// supported escape, datatype/language suffixes, comments, blank lines,
/// unknown escapes kept verbatim, and entity links — streamed at chunk
/// sizes 1, 7 and 64 bytes, each of which splits lines, UTF-8 sequences
/// and escapes across read boundaries.
#[test]
fn adversarial_chunk_sizes_split_lines_utf8_and_escapes() {
    let text = concat!(
        "# σχόλιο — comment with UTF-8 κείμενο\n",
        "\n",
        "<e:αλφα> <e:όνομα> \"Κνωσός 宮殿 🏛 palace\" .\n",
        "<e:αλφα> <e:esc> \"tab\\there \\\"quoted\\\" back\\\\slash\\nnewline\\rcr\" .\n",
        "<e:αλφα> <e:weird> \"unknown \\q escape\" .\n",
        "<e:αλφα> <e:link> <e:βήτα> .\n",
        "<e:βήτα> <e:label> \"βήτα label\"@el .\n",
        "<e:βήτα> <e:zip> \"71202\"^^<http://www.w3.org/2001/XMLSchema#string> .\n",
        "<e:βήτα> <e:back> <e:αλφα> .\n",
        "<e:γάμμα> <e:label> \"dangling → literal ref to <e:missing>\" .\n",
    );
    let whole = parse_ntriples("adv", text).unwrap();
    assert_eq!(whole.entity_count(), 3);
    for exec in executors() {
        for chunk_bytes in [1, 7, 64] {
            let streamed =
                parse_ntriples_reader("adv", text.as_bytes(), &exec, opts(chunk_bytes)).unwrap();
            assert_eq!(
                whole,
                streamed,
                "N-Triples differ at {} threads, {chunk_bytes}B chunks",
                exec.threads()
            );
        }
    }

    // Same boundary torture for TSV, with multi-byte objects and tabs
    // inside the 4th column.
    let tsv = "s:α\tp:name\tlit\tΚνωσός 宮殿 🏛\ns:α\tp:link\turi\ts:β\ns:β\tp:name\tlit\ttail\twith\ttabs\n";
    let whole = parse_tsv("adv", tsv).unwrap();
    for exec in executors() {
        for chunk_bytes in [1, 7, 64] {
            let streamed =
                parse_tsv_reader("adv", tsv.as_bytes(), &exec, opts(chunk_bytes)).unwrap();
            assert_eq!(
                whole,
                streamed,
                "TSV differs at {} threads, {chunk_bytes}B chunks",
                exec.threads()
            );
        }
    }
}

/// Numeric escapes (`\uXXXX`, `\UXXXXXXXX`) in literals **and** IRI
/// terms, split across 1/7/64-byte chunk boundaries — every boundary
/// lands inside some escape at chunk size 1 and 7 — must decode to the
/// same KB as the whole-string parser, and the KB must round-trip
/// through `to_ntriples` **byte-identically**.
#[test]
fn numeric_escape_corpus_round_trips_through_chunked_parsers() {
    let text = concat!(
        "<e:s\\u0041> <e:p> \"\\u0041lpha \\U0001F3DB \\u00e9 \\u0022deep\\u0022\" .\n",
        "<e:s\\u0041> <e:lin\\U0000006B> <e:t\\u003Ea> .\n",
        "<e:t\\u003Ea> <e:label> \"plain after escapes\" .\n",
        "<e:t\\u003Ea> <e:bell> \"ring\\u0007ring \\u00Df sharp\" .\n",
        "<e:t\\u003Ea> <e:mix> \"tab\\there \\U0001F9EA lab\" .\n",
    );
    let whole = parse_ntriples("esc", text).unwrap();
    // The decoded terms really decoded: '>' inside a URI, a decoded
    // quote inside a literal.
    assert!(whole.entity_by_uri("e:sA").is_some());
    assert!(whole.entity_by_uri("e:t>a").is_some());
    for exec in executors() {
        for chunk_bytes in [1, 7, 64] {
            let streamed =
                parse_ntriples_reader("esc", text.as_bytes(), &exec, opts(chunk_bytes)).unwrap();
            assert_eq!(
                whole,
                streamed,
                "escape corpus differs at {} threads, {chunk_bytes}B chunks",
                exec.threads()
            );
        }
    }
    // Serialize → parse → serialize is byte-identical (IRI-illegal
    // characters and controls re-escape as \uXXXX), through both the
    // whole-string and the chunked path.
    let dumped = to_ntriples(&whole);
    let reparsed = parse_ntriples("esc", &dumped).unwrap();
    assert_eq!(whole, reparsed);
    assert_eq!(
        dumped,
        to_ntriples(&reparsed),
        "serialization must be a byte-identical fixed point"
    );
    for exec in executors() {
        for chunk_bytes in [1, 7, 64] {
            let streamed =
                parse_ntriples_reader("esc", dumped.as_bytes(), &exec, opts(chunk_bytes)).unwrap();
            assert_eq!(whole, streamed, "re-parse differs at {chunk_bytes}B chunks");
        }
    }
}

/// Surrogate halves are rejected with the same line-numbered error by
/// the whole-string and chunked parsers, at every chunk size.
#[test]
fn surrogate_rejection_is_identical_across_chunk_sizes() {
    let mut text = String::new();
    for i in 0..40 {
        text.push_str(&format!(
            "<e:{i}> <e:p> \"fine \\u00e{} value\" .\n",
            i % 10
        ));
    }
    text.push_str("<e:bad> <e:p> \"high \\uD83D half\" .\n");
    let whole = parse_ntriples("t", &text).unwrap_err();
    assert_eq!(whole.line, 41);
    assert!(whole.message.contains("surrogate"), "{}", whole.message);
    for exec in executors() {
        for chunk_bytes in [1, 13, 256] {
            let streamed =
                parse_ntriples_reader("t", text.as_bytes(), &exec, opts(chunk_bytes)).unwrap_err();
            assert_eq!(
                streamed,
                whole,
                "surrogate error differs at {} threads, {chunk_bytes}B chunks",
                exec.threads()
            );
        }
    }
}

/// Parse errors must carry the same absolute line number and message
/// through the streaming path, for every executor and chunk size.
#[test]
fn streaming_errors_match_whole_string_errors() {
    let mut text = String::new();
    for i in 0..50 {
        text.push_str(&format!("<e:{i}> <e:p> \"value {i}\" .\n"));
    }
    text.push_str("<e:bad> <e:p> \"unterminated .\n");
    for i in 50..60 {
        text.push_str(&format!("<e:{i}> <e:p> \"value {i}\" .\n"));
    }
    let whole = parse_ntriples("t", &text).unwrap_err();
    assert_eq!(whole.line, 51);
    for exec in executors() {
        for chunk_bytes in [1, 13, 256] {
            let streamed =
                parse_ntriples_reader("t", text.as_bytes(), &exec, opts(chunk_bytes)).unwrap_err();
            assert_eq!(
                streamed,
                whole,
                "error differs at {} threads, {chunk_bytes}B chunks",
                exec.threads()
            );
        }
    }
}
