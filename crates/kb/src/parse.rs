//! Parsers for loading KBs from files.
//!
//! Two formats are supported:
//!
//! - A pragmatic **N-Triples subset**: `<s> <p> <o> .` and
//!   `<s> <p> "literal"(^^<dt>|@lang)? .` lines, `#` comments, blank lines.
//!   Datatype/language tags are dropped; the lexical form is kept.
//!   Numeric escapes (`\uXXXX`, `\UXXXXXXXX`) are decoded in **both**
//!   term kinds — literals and IRIs — with surrogate halves and
//!   out-of-range code points rejected with line-numbered errors.
//! - A simple **TSV** format used by the synthetic datasets:
//!   `subject \t predicate \t kind \t object` with `kind ∈ {uri, lit}`.
//!
//! Each format has two entry points:
//!
//! - a **whole-string** parser ([`parse_ntriples`], [`parse_tsv`]) for
//!   input already in memory, and
//! - a **streaming chunked** parser ([`parse_ntriples_reader`],
//!   [`parse_tsv_reader`]) that never materializes the input as one
//!   `String`: it reads line-aligned byte blocks, fans each block out
//!   over the executor into per-thread [`KbChunk`] partials (chunk-local
//!   interners, no shared state) and merges them in input order via
//!   [`KbBuilder::absorb`]. Because lines parse independently and the
//!   merge preserves first-seen order, the streaming parser produces a
//!   [`KnowledgeBase`] **identical** to the whole-string parser —
//!   including the error (line number and message) it reports on bad
//!   input.

use std::borrow::Cow;
use std::fmt::{self, Write as _};
use std::io::Read;

use minoan_exec::{CancelToken, Executor};

use crate::model::{KbBuilder, KbChunk, KnowledgeBase};

/// A parse failure, with 1-based line number and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Failure of a **cancellable** streaming parse: the input was bad, the
/// underlying reader failed, or the [`CancelToken`] was observed set at
/// a checkpoint between chunk waves and the parse unwound cooperatively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The input failed to parse. Parse failures are *permanent*: the
    /// same bytes fail the same way on every attempt.
    Parse(ParseError),
    /// The underlying reader failed mid-stream (or the
    /// `kb.parse.read` fault site injected a failure). IO failures are
    /// *transient* from the job supervisor's point of view: a retry
    /// against the same path may succeed. Carries the line the stream
    /// had reached and the IO error text.
    Io(ParseError),
    /// Cancellation was requested; no knowledge base was produced.
    Cancelled,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Parse(e) | StreamError::Io(e) => e.fmt(f),
            StreamError::Cancelled => f.write_str("cancelled"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<ParseError> for StreamError {
    fn from(e: ParseError) -> Self {
        StreamError::Parse(e)
    }
}

/// Options for the streaming chunked parsers.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Target bytes handed to each worker per fan-out. The reader
    /// accumulates roughly `chunk_bytes × threads` of line-complete input
    /// before fanning a block out; chunk boundaries always land just
    /// after a newline, so no line (and therefore no UTF-8 sequence and
    /// no N-Triples escape) is ever split across workers.
    pub chunk_bytes: usize,
}

/// Default worker-chunk size of the streaming parsers (1 MiB).
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

impl Default for StreamOptions {
    fn default() -> Self {
        Self {
            chunk_bytes: DEFAULT_CHUNK_BYTES,
        }
    }
}

/// A parsed object term: a URI or a literal (borrowed unless escape
/// processing forced a copy).
enum ObjTerm<'a> {
    Uri(Cow<'a, str>),
    Literal(Cow<'a, str>),
}

/// Anything triples can be parsed into: the global [`KbBuilder`]
/// (whole-string path) or a per-thread [`KbChunk`] (streaming path).
trait TripleSink {
    fn literal(&mut self, subject: &str, predicate: &str, literal: &str);
    fn uri(&mut self, subject: &str, predicate: &str, object_uri: &str);
}

impl TripleSink for KbBuilder {
    fn literal(&mut self, s: &str, p: &str, l: &str) {
        self.add_literal(s, p, l);
    }
    fn uri(&mut self, s: &str, p: &str, o: &str) {
        self.add_uri(s, p, o);
    }
}

impl TripleSink for KbChunk {
    fn literal(&mut self, s: &str, p: &str, l: &str) {
        self.add_literal(s, p, l);
    }
    fn uri(&mut self, s: &str, p: &str, o: &str) {
        self.add_uri(s, p, o);
    }
}

// ---------------------------------------------------------------------
// N-Triples
// ---------------------------------------------------------------------

/// Parses N-Triples text into a KB named `name`.
pub fn parse_ntriples(name: &str, text: &str) -> Result<KnowledgeBase, ParseError> {
    let mut builder = KbBuilder::new(name);
    parse_ntriples_into(text, &mut builder)?;
    Ok(builder.finish())
}

/// Streams N-Triples from `reader` into a KB named `name`, parsing
/// line-aligned chunks in parallel on `exec`. Produces a KB identical to
/// [`parse_ntriples`] over the concatenated input.
pub fn parse_ntriples_reader<R: Read>(
    name: &str,
    reader: R,
    exec: &Executor,
    opts: StreamOptions,
) -> Result<KnowledgeBase, ParseError> {
    uncancelled(parse_ntriples_reader_cancellable(
        name,
        reader,
        exec,
        opts,
        &CancelToken::new(),
    ))
}

/// Like [`parse_ntriples_reader`], but observing `cancel` at a
/// checkpoint before every chunk wave: a cancelled parse stops reading,
/// dispatches no further workers and unwinds with
/// [`StreamError::Cancelled`] within one wave of work.
pub fn parse_ntriples_reader_cancellable<R: Read>(
    name: &str,
    reader: R,
    exec: &Executor,
    opts: StreamOptions,
    cancel: &CancelToken,
) -> Result<KnowledgeBase, StreamError> {
    stream_parse(name, reader, exec, opts, cancel, parse_ntriples_into)
}

/// Unwraps the result of a cancellable parse driven by a fresh token.
fn uncancelled(result: Result<KnowledgeBase, StreamError>) -> Result<KnowledgeBase, ParseError> {
    match result {
        Ok(kb) => Ok(kb),
        Err(StreamError::Parse(e)) | Err(StreamError::Io(e)) => Err(e),
        Err(StreamError::Cancelled) => unreachable!("a fresh token is never cancelled"),
    }
}

/// Parses every line of `text` into `sink`; returns the number of lines
/// seen. Error line numbers are 1-based relative to `text`.
fn parse_ntriples_into<S: TripleSink>(text: &str, sink: &mut S) -> Result<usize, ParseError> {
    let mut lines = 0usize;
    for (idx, raw_line) in text.lines().enumerate() {
        lines = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (subject, rest) = parse_uri_term(line, lines)?;
        let rest = rest.trim_start();
        let (predicate, rest) = parse_uri_term(rest, lines)?;
        let rest = rest.trim_start();
        let (object, rest) = parse_object_term(rest, lines)?;
        let rest = rest.trim_start();
        if !rest.starts_with('.') {
            return Err(err(lines, "expected terminating '.'"));
        }
        match object {
            ObjTerm::Uri(u) => sink.uri(&subject, &predicate, &u),
            ObjTerm::Literal(l) => sink.literal(&subject, &predicate, &l),
        }
    }
    Ok(lines)
}

/// Parses one `<...>` IRI term. The scan looks for a **raw** `>` — a
/// numeric escape can only *decode* to `>`, never put one in the source
/// text, so the first raw `>` always terminates the term — and escapes
/// are decoded afterwards (the common escape-free IRI stays borrowed).
fn parse_uri_term(s: &str, line: usize) -> Result<(Cow<'_, str>, &str), ParseError> {
    let rest = s
        .strip_prefix('<')
        .ok_or_else(|| err(line, "expected '<' opening a URI term"))?;
    let end = rest
        .find('>')
        .ok_or_else(|| err(line, "unterminated URI term"))?;
    let body = &rest[..end];
    let uri = if body.contains('\\') {
        Cow::Owned(decode_uri_escapes(body, line)?)
    } else {
        Cow::Borrowed(body)
    };
    Ok((uri, &rest[end + 1..]))
}

/// Decodes `\uXXXX` / `\UXXXXXXXX` numeric escapes in an IRI body.
/// Other backslash sequences are kept verbatim (Web data is messy and
/// the lexical form is all we need), mirroring the literal policy.
fn decode_uri_escapes(body: &str, line: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(body.len());
    let mut chars = body.char_indices();
    while let Some((_, c)) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some((_, 'u')) => out.push(decode_numeric_escape(&mut chars, 'u', line)?),
            Some((_, 'U')) => out.push(decode_numeric_escape(&mut chars, 'U', line)?),
            Some((_, other)) => {
                out.push('\\');
                out.push(other);
            }
            None => return Err(err(line, "dangling escape in URI term")),
        }
    }
    Ok(out)
}

/// Decodes the digits of a numeric escape (`\uXXXX`: 4 hex digits,
/// `\UXXXXXXXX`: 8), with `chars` positioned just after the `u`/`U`.
/// Surrogate halves and code points beyond U+10FFFF are rejected — they
/// are not Unicode scalar values and silently keeping them verbatim
/// would corrupt every downstream tokenization of the term.
fn decode_numeric_escape(
    chars: &mut std::str::CharIndices<'_>,
    kind: char,
    line: usize,
) -> Result<char, ParseError> {
    let digits = if kind == 'u' { 4 } else { 8 };
    let mut code: u32 = 0;
    for _ in 0..digits {
        let Some((_, h)) = chars.next() else {
            return Err(err(line, format!("truncated \\{kind} escape")));
        };
        let Some(d) = h.to_digit(16) else {
            return Err(err(line, format!("bad hex digit {h:?} in \\{kind} escape")));
        };
        code = code * 16 + d;
    }
    if (0xD800..=0xDFFF).contains(&code) {
        return Err(err(
            line,
            format!("surrogate code point U+{code:04X} in \\{kind} escape"),
        ));
    }
    char::from_u32(code).ok_or_else(|| {
        err(
            line,
            format!("code point U+{code:X} in \\{kind} escape is beyond U+10FFFF"),
        )
    })
}

fn parse_object_term(s: &str, line: usize) -> Result<(ObjTerm<'_>, &str), ParseError> {
    if s.starts_with('<') {
        let (uri, rest) = parse_uri_term(s, line)?;
        return Ok((ObjTerm::Uri(uri), rest));
    }
    let rest = s
        .strip_prefix('"')
        .ok_or_else(|| err(line, "expected URI or literal object"))?;
    // Fast path: no escapes — borrow the literal straight from the line.
    let stop = rest
        .find(['"', '\\'])
        .ok_or_else(|| err(line, "unterminated literal"))?;
    let (literal, end) = if rest.as_bytes()[stop] == b'"' {
        (Cow::Borrowed(&rest[..stop]), stop)
    } else {
        parse_escaped_literal(rest, line)?
    };
    let mut rest = &rest[end + 1..];
    // Skip datatype (^^<...>) or language (@lang) suffixes.
    if let Some(dt) = rest.strip_prefix("^^") {
        let (_, r) = parse_uri_term(dt, line)?;
        rest = r;
    } else if let Some(lang) = rest.strip_prefix('@') {
        let stop = lang
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
            .unwrap_or(lang.len());
        rest = &lang[stop..];
    }
    Ok((ObjTerm::Literal(literal), rest))
}

/// Slow path for literals containing escapes: processes `\n \t \r \" \\`
/// plus the numeric escapes `\uXXXX` / `\UXXXXXXXX`, which are decoded
/// to their scalar values (surrogate halves and out-of-range code points
/// are line-numbered errors). Unknown escapes are kept verbatim — Web
/// data is messy and the lexical form is all we need. Returns the
/// unescaped literal and the byte offset of the closing quote within
/// `rest`.
fn parse_escaped_literal(rest: &str, line: usize) -> Result<(Cow<'_, str>, usize), ParseError> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((Cow::Owned(out), i)),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'u')) => out.push(decode_numeric_escape(&mut chars, 'u', line)?),
                Some((_, 'U')) => out.push(decode_numeric_escape(&mut chars, 'U', line)?),
                Some((_, other)) => {
                    out.push('\\');
                    out.push(other);
                }
                None => return Err(err(line, "dangling escape in literal")),
            },
            c => out.push(c),
        }
    }
    Err(err(line, "unterminated literal"))
}

/// Serializes a KB to the N-Triples subset accepted by
/// [`parse_ntriples`], escaping `\ " \n \t \r` (plus other control
/// characters as `\uXXXX`) in literals and IRI-illegal characters
/// (whitespace, controls, `<>"{}|^` backtick and `\`) as `\uXXXX` in
/// URI terms, so every KB round-trips byte-identically.
pub fn to_ntriples(kb: &KnowledgeBase) -> String {
    let mut out = String::new();
    for e in kb.entities() {
        let uri = kb.entity_uri(e);
        for stmt in kb.statements(e) {
            let attr = kb.attr_name(stmt.attr);
            push_iri(&mut out, uri);
            out.push(' ');
            push_iri(&mut out, attr);
            out.push(' ');
            match &stmt.value {
                crate::model::Value::Literal(l) => {
                    out.push('"');
                    for c in l.chars() {
                        match c {
                            '\\' => out.push_str("\\\\"),
                            '"' => out.push_str("\\\""),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            '\r' => out.push_str("\\r"),
                            c if (c as u32) < 0x20 => {
                                let _ = write!(out, "\\u{:04X}", c as u32);
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                crate::model::Value::Entity(n) => {
                    push_iri(&mut out, kb.entity_uri(*n));
                }
            }
            out.push_str(" .\n");
        }
    }
    out
}

/// Writes `<uri>`, escaping the characters the N-Triples IRIREF
/// production forbids (`#x00`–`#x20`, `<`, `>`, `"`, `{`, `}`, `|`,
/// `^`, backtick, `\`) as `\uXXXX` numeric escapes — the inverse of
/// [`decode_uri_escapes`], so URIs containing them survive a
/// serialize/parse round trip instead of producing unparseable output.
fn push_iri(out: &mut String, uri: &str) {
    out.push('<');
    for c in uri.chars() {
        match c {
            '\u{00}'..='\u{20}' | '<' | '>' | '"' | '{' | '}' | '|' | '^' | '`' | '\\' => {
                let _ = write!(out, "\\u{:04X}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('>');
}

// ---------------------------------------------------------------------
// TSV
// ---------------------------------------------------------------------

/// Parses the 4-column TSV format into a KB named `name`.
pub fn parse_tsv(name: &str, text: &str) -> Result<KnowledgeBase, ParseError> {
    let mut builder = KbBuilder::new(name);
    parse_tsv_into(text, &mut builder)?;
    Ok(builder.finish())
}

/// Streams TSV from `reader` into a KB named `name`, parsing
/// line-aligned chunks in parallel on `exec`. Produces a KB identical to
/// [`parse_tsv`] over the concatenated input.
pub fn parse_tsv_reader<R: Read>(
    name: &str,
    reader: R,
    exec: &Executor,
    opts: StreamOptions,
) -> Result<KnowledgeBase, ParseError> {
    uncancelled(parse_tsv_reader_cancellable(
        name,
        reader,
        exec,
        opts,
        &CancelToken::new(),
    ))
}

/// Like [`parse_tsv_reader`], but observing `cancel` at a checkpoint
/// before every chunk wave (see [`parse_ntriples_reader_cancellable`]).
pub fn parse_tsv_reader_cancellable<R: Read>(
    name: &str,
    reader: R,
    exec: &Executor,
    opts: StreamOptions,
    cancel: &CancelToken,
) -> Result<KnowledgeBase, StreamError> {
    stream_parse(name, reader, exec, opts, cancel, parse_tsv_into)
}

fn parse_tsv_into<S: TripleSink>(text: &str, sink: &mut S) -> Result<usize, ParseError> {
    let mut lines = 0usize;
    for (idx, raw_line) in text.lines().enumerate() {
        lines = idx + 1;
        let line = raw_line.trim_end_matches(['\r', '\n']);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.splitn(4, '\t');
        let subject = cols.next().filter(|s| !s.is_empty());
        let predicate = cols.next().filter(|s| !s.is_empty());
        let kind = cols.next();
        let object = cols.next();
        match (subject, predicate, kind, object) {
            (Some(s), Some(p), Some("uri"), Some(o)) => sink.uri(s, p, o),
            (Some(s), Some(p), Some("lit"), Some(o)) => sink.literal(s, p, o),
            (_, _, Some(k), _) if k != "uri" && k != "lit" => {
                return Err(err(lines, format!("unknown object kind {k:?}")))
            }
            _ => return Err(err(lines, "expected 4 tab-separated columns")),
        }
    }
    Ok(lines)
}

/// Serializes a KB to the TSV format accepted by [`parse_tsv`].
///
/// Round-trips entities and statements (modulo the uri-vs-literal
/// distinction for unresolvable URIs, which were already downgraded).
pub fn to_tsv(kb: &KnowledgeBase) -> String {
    let mut out = String::new();
    for e in kb.entities() {
        let uri = kb.entity_uri(e);
        for stmt in kb.statements(e) {
            let attr = kb.attr_name(stmt.attr);
            match &stmt.value {
                crate::model::Value::Literal(l) => {
                    out.push_str(uri);
                    out.push('\t');
                    out.push_str(attr);
                    out.push_str("\tlit\t");
                    out.push_str(&l.replace(['\t', '\n'], " "));
                    out.push('\n');
                }
                crate::model::Value::Entity(n) => {
                    out.push_str(uri);
                    out.push('\t');
                    out.push_str(attr);
                    out.push_str("\turi\t");
                    out.push_str(kb.entity_uri(*n));
                    out.push('\n');
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Streaming driver
// ---------------------------------------------------------------------

/// The chunked streaming driver shared by both formats.
///
/// Reads up to `chunk_bytes` at a time, accumulating raw bytes until
/// roughly `chunk_bytes × threads` of line-complete input is pending,
/// then fans the block out over `exec` (each worker parses a line-aligned
/// sub-chunk into a [`KbChunk`]) and absorbs the partials in chunk order.
/// The trailing partial line is carried into the next block, so the full
/// input is never resident and every worker sees whole lines only.
///
/// `cancel` is observed at a checkpoint before every read and before
/// every chunk wave — and, on the pool backend, between the
/// quantum-bounded tasks *inside* a wave — so cancellation lands within
/// one task quantum of work and never produces a partially-merged KB
/// (an aborted wave's partials are simply dropped).
fn stream_parse<R, F>(
    name: &str,
    mut reader: R,
    exec: &Executor,
    opts: StreamOptions,
    cancel: &CancelToken,
    parse_into: F,
) -> Result<KnowledgeBase, StreamError>
where
    R: Read,
    F: Fn(&str, &mut KbChunk) -> Result<usize, ParseError> + Sync,
{
    // Pool waves observe the token between task quanta and abort by
    // unwinding with `Cancelled`; `run_block` folds that unwind back
    // into `StreamError::Cancelled` at the wave boundary.
    let exec = &exec.clone().with_cancel(cancel.clone());
    let chunk_bytes = opts.chunk_bytes.max(1);
    let batch_bytes = chunk_bytes.saturating_mul(exec.threads().max(1));
    let mut builder = KbBuilder::new(name);
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = vec![0u8; chunk_bytes.clamp(1, DEFAULT_CHUNK_BYTES)];
    let mut lines_done = 0usize;
    loop {
        cancel.checkpoint().map_err(|_| StreamError::Cancelled)?;
        minoan_exec::faults::point("kb.parse.read")
            .map_err(|e| StreamError::Io(err(lines_done + 1, format!("read error: {e}"))))?;
        let n = reader
            .read(&mut buf)
            .map_err(|e| StreamError::Io(err(lines_done + 1, format!("read error: {e}"))))?;
        if n == 0 {
            break;
        }
        pending.extend_from_slice(&buf[..n]);
        if pending.len() >= batch_bytes {
            // Cut at the last complete line; carry the tail. A pending
            // buffer with no newline yet (one enormous line) keeps
            // accumulating until its newline arrives.
            if let Some(pos) = pending.iter().rposition(|&b| b == b'\n') {
                let tail = pending.split_off(pos + 1);
                let block = std::mem::replace(&mut pending, tail);
                lines_done += run_block(&block, &mut builder, exec, lines_done, &parse_into)?;
            }
        }
    }
    if !pending.is_empty() {
        cancel.checkpoint().map_err(|_| StreamError::Cancelled)?;
        let block = std::mem::take(&mut pending);
        run_block(&block, &mut builder, exec, lines_done, &parse_into)?;
    }
    Ok(builder.finish())
}

/// [`parse_block`] with a mid-wave cancellation net: a pool wave aborted
/// by the executor's cancel token unwinds with
/// [`Cancelled`](minoan_exec::Cancelled), which this folds into
/// [`StreamError::Cancelled`].
fn run_block<F>(
    block: &[u8],
    builder: &mut KbBuilder,
    exec: &Executor,
    line_offset: usize,
    parse_into: &F,
) -> Result<usize, StreamError>
where
    F: Fn(&str, &mut KbChunk) -> Result<usize, ParseError> + Sync,
{
    let parsed = minoan_exec::catch_cancel(|| {
        Ok(parse_block(block, builder, exec, line_offset, parse_into))
    })
    .map_err(|_| StreamError::Cancelled)?;
    Ok(parsed?)
}

/// Parses one line-complete block: fans line-aligned sub-chunks out over
/// the executor, then absorbs the per-chunk partials in chunk order.
/// Returns the number of lines in the block; errors are rebased from
/// chunk-relative to absolute line numbers, and the earliest failing
/// chunk wins — exactly the line the sequential parser would report.
fn parse_block<F>(
    block: &[u8],
    builder: &mut KbBuilder,
    exec: &Executor,
    line_offset: usize,
    parse_into: &F,
) -> Result<usize, ParseError>
where
    F: Fn(&str, &mut KbChunk) -> Result<usize, ParseError> + Sync,
{
    let align = |p: usize| {
        block[p..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|off| p + off + 1)
            .unwrap_or(block.len())
    };
    let results: Vec<Result<(KbChunk, usize), ParseError>> =
        exec.map_chunks(block.len(), align, |range| {
            let bytes = &block[range];
            let text = std::str::from_utf8(bytes).map_err(|e| {
                let bad_line = 1 + count_newlines(&bytes[..e.valid_up_to()]);
                err(bad_line, "invalid UTF-8 in input")
            })?;
            let mut chunk = KbChunk::new();
            let lines = parse_into(text, &mut chunk)?;
            Ok((chunk, lines))
        });
    let mut lines = 0usize;
    for result in results {
        match result {
            Ok((chunk, chunk_lines)) => {
                builder.absorb(chunk);
                lines += chunk_lines;
            }
            Err(mut e) => {
                e.line += line_offset + lines;
                return Err(e);
            }
        }
    }
    Ok(lines)
}

fn count_newlines(bytes: &[u8]) -> usize {
    bytes.iter().filter(|&&b| b == b'\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_ntriples() {
        let text = r#"
# a comment
<http://a/r1> <http://v/name> "Kri Kri" .
<http://a/r1> <http://v/address> <http://a/addr1> .
<http://a/addr1> <http://v/street> "12 Minos Ave"@en .
<http://a/addr1> <http://v/zip> "71202"^^<http://www.w3.org/2001/XMLSchema#string> .
"#;
        let kb = parse_ntriples("t", text).unwrap();
        assert_eq!(kb.entity_count(), 2);
        assert_eq!(kb.triple_count(), 4);
        let r1 = kb.entity_by_uri("http://a/r1").unwrap();
        assert!(kb.literals(r1).any(|l| l == "Kri Kri"));
        assert_eq!(kb.out_edges(r1).count(), 1);
        let a1 = kb.entity_by_uri("http://a/addr1").unwrap();
        assert!(kb.literals(a1).any(|l| l == "71202"));
    }

    #[test]
    fn literal_escapes() {
        let text = r#"<e:s> <e:p> "a \"quoted\" va\\lue\nnext" ."#;
        let kb = parse_ntriples("t", text).unwrap();
        let e = kb.entity_by_uri("e:s").unwrap();
        assert_eq!(kb.literals(e).next().unwrap(), "a \"quoted\" va\\lue\nnext");
    }

    #[test]
    fn unknown_escape_is_kept_verbatim() {
        let text = r#"<e:s> <e:p> "weird \q escape" ."#;
        let kb = parse_ntriples("t", text).unwrap();
        let e = kb.entity_by_uri("e:s").unwrap();
        assert_eq!(kb.literals(e).next().unwrap(), "weird \\q escape");
    }

    #[test]
    fn numeric_escapes_decode_in_literals() {
        // \u0041 = 'A', \u00e9 = 'é', \U0001F3DB = 🏛, \u0022 = '"'
        // (decoded quotes are content, not terminators).
        let text = r#"<e:s> <e:p> "\u0041lpha \u00e9 \U0001F3DB \u0022quoted\u0022" ."#;
        let kb = parse_ntriples("t", text).unwrap();
        let e = kb.entity_by_uri("e:s").unwrap();
        assert_eq!(kb.literals(e).next().unwrap(), "Alpha é 🏛 \"quoted\"");
    }

    #[test]
    fn numeric_escapes_decode_in_uri_terms() {
        // Subject, predicate and object IRIs all carry escapes; a
        // decoded \u003E ('>') must not terminate the term early. The
        // object URI also appears as a subject so it stays an entity.
        let text = "<e:\\u0073ubject> <e:p\\U00000072ed> <e:a\\u003Eb> .\n\
                    <e:a\\u003Eb> <e:p> \"v\" .\n";
        let kb = parse_ntriples("t", text).unwrap();
        let s = kb.entity_by_uri("e:subject").expect("subject decoded");
        assert!(kb.entity_by_uri("e:a>b").is_some(), "object decoded");
        assert_eq!(kb.out_edges(s).count(), 1);
    }

    #[test]
    fn surrogate_halves_are_line_numbered_errors() {
        for bad in [
            "<e:s> <e:p> \"x\\uD800y\" .", // high surrogate in literal
            "<e:s> <e:p> \"x\\uDFFFy\" .", // low surrogate in literal
            "<e:s\\uDC00> <e:p> \"ok\" .", // surrogate in IRI
            "<e:s> <e:p> \"\\U0001D800ok\" .\n<e:s> <e:p> \"\\uDabcy\" .", // line 2
        ] {
            let text = format!("<e:a> <e:p> \"fine\" .\n{bad}");
            let e = parse_ntriples("t", &text).unwrap_err();
            let expect_line = 1 + text.lines().count();
            assert_eq!(e.line + 1, expect_line, "{bad}: wrong line");
            assert!(e.message.contains("surrogate"), "{bad}: {}", e.message);
        }
    }

    #[test]
    fn out_of_range_and_malformed_numeric_escapes_are_errors() {
        let e = parse_ntriples("t", "<e:s> <e:p> \"\\U00110000\" .").unwrap_err();
        assert!(e.message.contains("beyond U+10FFFF"), "{}", e.message);
        let e = parse_ntriples("t", "<e:s> <e:p> \"\\u12G4\" .").unwrap_err();
        assert!(e.message.contains("bad hex digit"), "{}", e.message);
        let e = parse_ntriples("t", "<e:s> <e:p> \"\\u12").unwrap_err();
        assert!(e.message.contains("truncated \\u"), "{}", e.message);
        let e = parse_ntriples("t", "<e:s\\u00> <e:p> \"x\" .").unwrap_err();
        assert!(
            e.message.contains("bad hex digit") || e.message.contains("truncated"),
            "{}",
            e.message
        );
    }

    #[test]
    fn iris_with_forbidden_characters_round_trip_via_escapes() {
        // A URI containing '>' , '"', space and a backslash can only be
        // written with numeric escapes; serialization must regenerate
        // them instead of emitting unparseable raw characters.
        let text = "<e:a\\u003Eb\\u0020c\\u0022d\\u005C> <e:p> \"v\" .\n";
        let kb = parse_ntriples("t", text).unwrap();
        assert!(kb.entity_by_uri("e:a>b c\"d\\").is_some());
        let dumped = to_ntriples(&kb);
        let kb2 = parse_ntriples("t", &dumped).unwrap();
        assert_eq!(kb, kb2);
        assert_eq!(dumped, to_ntriples(&kb2), "serialization is stable");
    }

    #[test]
    fn control_characters_in_literals_round_trip() {
        let text = "<e:s> <e:p> \"bell\\u0007 esc\\u001b\" .\n";
        let kb = parse_ntriples("t", text).unwrap();
        let e = kb.entity_by_uri("e:s").unwrap();
        assert_eq!(kb.literals(e).next().unwrap(), "bell\u{7} esc\u{1b}");
        let dumped = to_ntriples(&kb);
        assert!(dumped.contains("\\u0007"), "controls re-escape: {dumped}");
        assert_eq!(kb, parse_ntriples("t", &dumped).unwrap());
    }

    #[test]
    fn cancelled_stream_parse_unwinds_cleanly() {
        use minoan_exec::CancelToken;
        let text = "s\tp\tlit\tv\n".repeat(100);
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = parse_tsv_reader_cancellable(
            "t",
            text.as_bytes(),
            &Executor::sequential(),
            tiny_opts(16),
            &cancel,
        )
        .unwrap_err();
        assert_eq!(err, StreamError::Cancelled);
        // A fresh token parses normally through the cancellable API.
        let kb = parse_tsv_reader_cancellable(
            "t",
            text.as_bytes(),
            &Executor::sequential(),
            tiny_opts(16),
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(kb.triple_count(), 100);
    }

    #[test]
    fn missing_dot_is_an_error() {
        let text = "<e:s> <e:p> <e:o>";
        let e = parse_ntriples("t", text).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("terminating"));
    }

    #[test]
    fn unterminated_literal_is_an_error() {
        let text = "<e:s> <e:p> \"oops .";
        let e = parse_ntriples("t", text).unwrap_err();
        assert!(e.message.contains("unterminated literal"));
        // Same failure through the escaped-literal slow path.
        let text = "<e:s> <e:p> \"oops \\t .";
        let e = parse_ntriples("t", text).unwrap_err();
        assert!(e.message.contains("unterminated literal"));
    }

    #[test]
    fn bad_subject_reports_line_number() {
        let text = "<e:a> <e:p> \"x\" .\nnot-a-uri <e:p> \"y\" .";
        let e = parse_ntriples("t", text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn tsv_round_trip() {
        let text = "s1\tname\tlit\tAlpha Beta\ns1\tknows\turi\ts2\ns2\tname\tlit\tGamma\n";
        let kb = parse_tsv("t", text).unwrap();
        assert_eq!(kb.entity_count(), 2);
        let dumped = to_tsv(&kb);
        let kb2 = parse_tsv("t2", &dumped).unwrap();
        assert_eq!(kb2.entity_count(), 2);
        assert_eq!(kb2.triple_count(), 3);
        let s1 = kb2.entity_by_uri("s1").unwrap();
        assert!(kb2.literals(s1).any(|l| l == "Alpha Beta"));
        assert_eq!(kb2.out_edges(s1).count(), 1);
    }

    #[test]
    fn ntriples_round_trip() {
        let text = "<e:s> <e:p> \"a \\\"q\\\" \\\\ tab\\there\" .\n<e:s> <e:q> <e:o> .\n<e:o> <e:p> \"plain\" .\n";
        let kb = parse_ntriples("t", text).unwrap();
        let dumped = to_ntriples(&kb);
        let kb2 = parse_ntriples("t", &dumped).unwrap();
        assert_eq!(kb, kb2);
        let s = kb2.entity_by_uri("e:s").unwrap();
        assert_eq!(kb2.literals(s).next().unwrap(), "a \"q\" \\ tab\there");
    }

    #[test]
    fn tsv_rejects_unknown_kind() {
        let e = parse_tsv("t", "s\tp\tblank\tx").unwrap_err();
        assert!(e.message.contains("unknown object kind"));
    }

    #[test]
    fn tsv_rejects_short_rows() {
        let e = parse_tsv("t", "s\tp\tlit").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn tsv_object_may_contain_further_tabs_no() {
        // The object is the 4th column onward (splitn keeps the tail intact).
        let kb = parse_tsv("t", "s\tp\tlit\ta\tb").unwrap();
        let s = kb.entity_by_uri("s").unwrap();
        assert_eq!(kb.literals(s).next().unwrap(), "a\tb");
    }

    fn tiny_opts(chunk_bytes: usize) -> StreamOptions {
        StreamOptions { chunk_bytes }
    }

    fn execs() -> [Executor; 3] {
        use minoan_exec::ExecutorKind;
        [
            Executor::sequential(),
            Executor::new(ExecutorKind::Rayon, 3),
            Executor::new(ExecutorKind::Rayon, 7),
        ]
    }

    #[test]
    fn streaming_tsv_matches_whole_string() {
        let text = "s1\tname\tlit\tAlpha Beta\ns1\tknows\turi\ts2\ns2\tname\tlit\tGamma\n";
        let whole = parse_tsv("t", text).unwrap();
        for exec in execs() {
            for chunk_bytes in [1, 3, 7, 64, 4096] {
                let streamed =
                    parse_tsv_reader("t", text.as_bytes(), &exec, tiny_opts(chunk_bytes)).unwrap();
                assert_eq!(whole, streamed, "chunk_bytes={chunk_bytes}");
            }
        }
    }

    #[test]
    fn streaming_ntriples_matches_whole_string() {
        let text = "<e:s> <e:p> \"multi βψτε ütf\\n\\\"quoted\\\"\" .\n<e:s> <e:q> <e:o> .\n<e:o> <e:p> \"plain\" .\n";
        let whole = parse_ntriples("t", text).unwrap();
        for exec in execs() {
            for chunk_bytes in [1, 2, 7, 64] {
                let streamed =
                    parse_ntriples_reader("t", text.as_bytes(), &exec, tiny_opts(chunk_bytes))
                        .unwrap();
                assert_eq!(whole, streamed, "chunk_bytes={chunk_bytes}");
            }
        }
    }

    #[test]
    fn streaming_errors_carry_absolute_line_numbers() {
        let mut text = String::new();
        for i in 0..100 {
            text.push_str(&format!("s{i}\tname\tlit\tvalue {i}\n"));
        }
        text.push_str("broken row without enough columns\n");
        let whole = parse_tsv("t", &text).unwrap_err();
        assert_eq!(whole.line, 101);
        for exec in execs() {
            for chunk_bytes in [1, 17, 256] {
                let streamed =
                    parse_tsv_reader("t", text.as_bytes(), &exec, tiny_opts(chunk_bytes))
                        .unwrap_err();
                assert_eq!(streamed, whole, "chunk_bytes={chunk_bytes}");
            }
        }
    }

    #[test]
    fn streaming_reports_earliest_error_like_sequential() {
        // Two bad lines; the earlier one must win even when they land in
        // different parallel chunks.
        let text = "s\tp\tlit\tok\nbad line one\nmore\tbad\tnope\tx\n";
        let whole = parse_tsv("t", text).unwrap_err();
        for exec in execs() {
            let streamed = parse_tsv_reader("t", text.as_bytes(), &exec, tiny_opts(4)).unwrap_err();
            assert_eq!(streamed, whole);
        }
    }

    #[test]
    fn streaming_invalid_utf8_is_an_error_with_line() {
        let mut bytes = b"s\tp\tlit\tfine\n".to_vec();
        bytes.extend_from_slice(b"s\tp\tlit\t\xff\xfe\n");
        let e = parse_tsv_reader(
            "t",
            bytes.as_slice(),
            &Executor::sequential(),
            tiny_opts(4096),
        )
        .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("UTF-8"));
    }

    #[test]
    fn streaming_handles_input_without_trailing_newline() {
        let text = "s1\tname\tlit\tAlpha\ns2\tname\tlit\tBeta";
        let whole = parse_tsv("t", text).unwrap();
        let streamed =
            parse_tsv_reader("t", text.as_bytes(), &Executor::sequential(), tiny_opts(5)).unwrap();
        assert_eq!(whole, streamed);
    }

    #[test]
    fn streaming_empty_input_is_an_empty_kb() {
        let kb = parse_tsv_reader(
            "t",
            &b""[..],
            &Executor::sequential(),
            StreamOptions::default(),
        )
        .unwrap();
        assert_eq!(kb.entity_count(), 0);
        assert_eq!(kb.triple_count(), 0);
    }
}
