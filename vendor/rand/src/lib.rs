//! Vendored subset of the `rand` crate API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `rand` it actually uses: a seedable generator
//! ([`rngs::StdRng`]), uniform sampling over integer ranges
//! ([`Rng::gen_range`]), Bernoulli draws ([`Rng::gen_bool`]) and
//! Fisher–Yates shuffling ([`seq::SliceRandom`]).
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64. Streams are
//! **not** identical to the real `rand::rngs::StdRng` (ChaCha12), but the
//! workspace only relies on determinism-per-seed and uniformity, which
//! this generator provides. Replacing this shim with the real crate is a
//! manifest change only.

#![warn(missing_docs)]

/// Concrete generators.
pub mod rngs {
    /// A deterministic, seedable pseudo-random generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference
        // implementation, transcribed).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Uniform sampling from a range type (the shim's stand-in for rand's
/// `SampleRange`/`SampleUniform` machinery). The sampled type is a type
/// parameter, as in the real crate, so integer literals in ranges infer
/// from the call site.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics on empty ranges.
    fn sample(self, rng: &mut StdRng) -> T;
}

#[inline]
fn uniform_below(rng: &mut StdRng, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Random-value generation methods.
pub trait Rng {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Returns `true` with probability `p`; panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        let unit = (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_below, Rng};
    use crate::rngs::StdRng;

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle(&mut self, rng: &mut StdRng);
        /// A uniformly random element, or `None` when empty.
        fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
