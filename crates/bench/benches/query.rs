//! Persistent-index query benchmark: build → persist → load → query
//! round trip on the Restaurant profile, emitting `BENCH_query.json` at
//! the workspace root. The build phase runs the full pipeline on the
//! process-wide pool; the load and query phases measure what the
//! serving hot path pays — artifact deserialisation and per-entity
//! match lookups — with latency quantiles (p50/p90/p99/p999) read from
//! the observability layer's log-bucketed histograms
//! ([`minoan_obs::hist::Histogram`]), the same structure
//! `GET /v1/metrics` exports. A final leg measures the tracing
//! collector's overhead on the query path — enabled (per-query span
//! recorded into the ring) vs disabled (the span site degrades to one
//! relaxed atomic load) — and asserts it stays under 5%.
//! `MINOAN_BENCH_SMOKE=1` shrinks scale and iteration counts for CI,
//! which then validates the emitted JSON via
//! [`minoan_bench::benchutil::check_bench_json`].

use std::time::Instant;

use minoan_bench::benchutil;
use minoan_core::{IndexArtifact, MinoanEr};
use minoan_datagen::DatasetKind;
use minoan_exec::CancelToken;
use minoan_kb::Json;
use minoan_obs::hist::Histogram;
use minoan_obs::{trace, Level};

fn ms(elapsed: std::time::Duration) -> f64 {
    elapsed.as_secs_f64() * 1e3
}

/// The histogram quantiles one bench phase reports. Bucket upper
/// bounds, so a value is at most one power-of-2 step above the true
/// sample quantile — stable across runs, unlike exact order statistics
/// on a noisy tail.
fn quantile_fields(snapshot: &minoan_obs::hist::Snapshot) -> Vec<(String, Json)> {
    vec![
        ("p50".into(), Json::Num(snapshot.quantile_ms(0.50))),
        ("p90".into(), Json::Num(snapshot.quantile_ms(0.90))),
        ("p99".into(), Json::Num(snapshot.quantile_ms(0.99))),
        ("p999".into(), Json::Num(snapshot.quantile_ms(0.999))),
        ("mean".into(), Json::Num(snapshot.mean_ms())),
    ]
}

fn main() {
    let scale = benchutil::smoke_scaled(0.5, 0.08);
    let load_iters = benchutil::smoke_scaled(20, 3);
    let query_rounds = benchutil::smoke_scaled(200, 10);

    // Build: the full pipeline (ingest → blocking → similarities →
    // H1-H4) plus index construction, on the process-wide pool.
    let kind = DatasetKind::Restaurant;
    let d = kind.generate_scaled(20180416, scale);
    let matcher = MinoanEr::with_defaults();
    let exec = matcher.config().executor();
    let t = Instant::now();
    let indexed = matcher
        .run_cancellable_indexed(&d.pair, &exec, &CancelToken::new())
        .expect("nothing cancels this run");
    let build_ms = ms(t.elapsed());
    let artifact = IndexArtifact::from_run(kind.name(), &d.pair, indexed, matcher.config());

    // Persist: atomic temp+rename write of the versioned container.
    let dir = std::env::temp_dir().join(format!("minoan-bench-query-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let path = dir.join("query-bench.idx");
    let t = Instant::now();
    let artifact_bytes = artifact.write_to(&path).expect("persist artifact");
    let persist_ms = ms(t.elapsed());

    // Load: full deserialisation, checksums verified every time. The
    // serving registry pays this once per cache miss.
    let load_hist = Histogram::new();
    let mut load_min_ms = f64::INFINITY;
    for _ in 0..load_iters {
        let t = Instant::now();
        let loaded = IndexArtifact::read_from(&path).expect("load artifact");
        let elapsed = t.elapsed();
        load_hist.observe(elapsed);
        load_min_ms = load_min_ms.min(ms(elapsed));
        std::hint::black_box(&loaded);
    }
    let loaded = IndexArtifact::read_from(&path).expect("load artifact");

    // Query: per-entity match lookups against the loaded artifact —
    // the `/v1/indexes/{id}/match` hot path with the HTTP layer peeled
    // off. Every matched entity on both sides, `query_rounds` times,
    // observed into the same power-of-2-bucket histogram the serving
    // layer feeds from this path.
    let pairs = loaded.matched_uri_pairs();
    assert!(!pairs.is_empty(), "bench profile resolved zero matches");
    let query_hist = Histogram::new();
    let mut calls = 0usize;
    let mut answered = 0usize;
    for _ in 0..query_rounds {
        for (first, second) in &pairs {
            for uri in [first, second] {
                let t = Instant::now();
                let answer = loaded.match_query(uri, 10);
                query_hist.observe(t.elapsed());
                calls += 1;
                if std::hint::black_box(answer).is_some() {
                    answered += 1;
                }
            }
        }
    }
    assert_eq!(answered, calls, "matched entity had no answer");

    // Collector overhead: the query sweep instrumented the way the
    // serving layer instruments this exact path — a debug span around
    // the sweep (spans wrap request/stage-scale work) and a histogram
    // observation per query (always-on, independent of the collector
    // toggle) — timed with tracing enabled vs disabled. A span per
    // individual lookup would be out of proportion by construction: a
    // ring record costs on the order of a cached lookup itself, which
    // is exactly why the hot path records lookups into histograms and
    // reserves spans for coarser units. Because every per-query cost
    // inside the timed region is identical in both modes, the <5%
    // assertion doubles as a regression guard: per-query ring traffic
    // sneaking into the lookup path would blow it up immediately.
    // Interleaved min-of-rounds, so drift and scheduler noise hit both
    // modes alike and the minimum isolates the systematic cost. The
    // repeat counts keep each timed sweep in the low-millisecond range
    // in both modes: sweeps much shorter than that sit at the timer /
    // scheduler noise floor, where a 5% bound flakes on noise alone.
    let overhead_rounds = benchutil::smoke_scaled(9, 11);
    let overhead_repeats = benchutil::smoke_scaled(25, 250);
    let overhead_hist = Histogram::new();
    let mut enabled_best = f64::INFINITY;
    let mut disabled_best = f64::INFINITY;
    // One untimed warmup sweep, so neither mode's minimum eats the
    // cold-cache / frequency-ramp cost of the first pass.
    for (first, second) in &pairs {
        for uri in [first, second] {
            std::hint::black_box(loaded.match_query(uri, 10));
        }
    }
    for _ in 0..overhead_rounds {
        for enable in [false, true] {
            trace::set_enabled(enable);
            let t = Instant::now();
            let span = trace::span(Level::Debug, "bench.sweep", String::new);
            for _ in 0..overhead_repeats {
                for (first, second) in &pairs {
                    for uri in [first, second] {
                        let t_query = Instant::now();
                        std::hint::black_box(loaded.match_query(uri, 10));
                        overhead_hist.observe(t_query.elapsed());
                    }
                }
            }
            drop(span);
            let total = ms(t.elapsed());
            let best = if enable {
                &mut enabled_best
            } else {
                &mut disabled_best
            };
            *best = best.min(total);
        }
    }
    trace::set_enabled(true);
    let overhead_ratio = enabled_best / disabled_best;
    assert!(
        overhead_ratio < 1.05,
        "tracing overhead {overhead_ratio:.3}x exceeds 5% \
         (enabled {enabled_best:.3} ms vs disabled {disabled_best:.3} ms per sweep)"
    );

    let _ = std::fs::remove_dir_all(&dir);

    let load_snapshot = load_hist.snapshot();
    let query_snapshot = query_hist.snapshot();
    let sweep = benchutil::thread_sweep();
    let mut fields = benchutil::trajectory_fields("index_query", kind.name(), scale, &sweep);
    fields.push((
        "entities".into(),
        Json::arr(
            loaded
                .meta()
                .entity_counts
                .iter()
                .map(|&n| Json::num(n as f64)),
        ),
    ));
    fields.push(("matched_pairs".into(), Json::num(pairs.len() as f64)));
    fields.push(("artifact_bytes".into(), Json::num(artifact_bytes as f64)));
    fields.push(("build_ms".into(), Json::Num(build_ms)));
    fields.push(("persist_ms".into(), Json::Num(persist_ms)));
    let mut load_fields = vec![(
        "iterations".to_string(),
        Json::num(load_snapshot.count as f64),
    )];
    load_fields.extend(quantile_fields(&load_snapshot));
    load_fields.push(("min".into(), Json::Num(load_min_ms)));
    fields.push(("load_ms".into(), Json::Obj(load_fields)));
    let mut query_fields = vec![("calls".to_string(), Json::num(query_snapshot.count as f64))];
    query_fields.extend(quantile_fields(&query_snapshot));
    fields.push(("query_ms".into(), Json::Obj(query_fields)));
    fields.push((
        "trace_overhead".into(),
        Json::obj([
            ("enabled_sweep_ms", Json::Num(enabled_best)),
            ("disabled_sweep_ms", Json::Num(disabled_best)),
            ("ratio", Json::Num(overhead_ratio)),
        ]),
    ));
    benchutil::emit_checked(
        env!("CARGO_MANIFEST_DIR"),
        "BENCH_query.json",
        &Json::obj(fields),
    );
}
