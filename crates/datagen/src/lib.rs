//! # minoan-datagen — synthetic benchmark datasets
//!
//! The paper evaluates on four real KB pairs (OAEI Restaurant,
//! Rexa–DBLP, BBCmusic–DBpedia, YAGO–IMDb) that are not redistributable
//! or laptop-scale. This crate generates *signature-preserving synthetic
//! analogues*: seeded worlds of canonical entities rendered into two
//! heterogeneous KBs with controlled name uniqueness, token overlap,
//! schema scatter and link structure (see DESIGN.md §3).
//!
//! ```
//! use minoan_datagen::DatasetKind;
//! let d = DatasetKind::Restaurant.generate_scaled(42, 0.1);
//! assert!(d.truth.len() > 0);
//! ```

#![warn(missing_docs)]

pub mod datasets;
pub mod mutate;
pub mod render;
pub mod words;
pub mod world;

pub use datasets::{Dataset, DatasetKind};
pub use mutate::mutate_stream;
pub use render::{render_pair, render_side, ClassRender, RenderSpec, RenderedSide};
pub use words::{synth_word, WordPool};
pub use world::{CanonicalEntity, ClassSpec, FieldSpec, Presence, World};
