//! Rendering a canonical world into two KBs.
//!
//! Schema heterogeneity lives here: each side renders the same canonical
//! entities under its own vocabulary (attribute names, URI prefixes,
//! type assertions), optionally *scattering* a logical attribute across
//! many concrete attribute names — the signature of DBpedia-style KBs
//! with tens of thousands of predicates.

use minoan_kb::{EntityId, GroundTruth, KbBuilder, KbPair, KnowledgeBase, Matching};
use rand::rngs::StdRng;
use rand::Rng;

use crate::world::World;

/// How one entity class is rendered on one side.
#[derive(Debug, Clone)]
pub struct ClassRender {
    /// Attribute name carrying the entity name.
    pub name_attr: String,
    /// Attribute names per field (same arity as the class's fields).
    pub field_attrs: Vec<String>,
    /// Type assertion, if any (`attr`, `value`).
    pub type_assertion: Option<(String, String)>,
    /// When > 1, each field statement picks one of `scatter` numbered
    /// variants of its attribute name (simulating huge schemas).
    pub attr_scatter: usize,
    /// Probability that the rendered name literal is punctuation-
    /// decorated ("kura, thesi") — formatting heterogeneity that exact
    /// string matching trips over but tokenized name keys do not.
    pub name_punctuation_prob: f64,
}

/// How one side renders the world.
#[derive(Debug, Clone)]
pub struct RenderSpec {
    /// KB name.
    pub kb_name: String,
    /// URI prefix for entities.
    pub uri_prefix: String,
    /// Namespace prefix for attributes (the "vocabulary").
    pub attr_prefix: String,
    /// Per class: rendering rules.
    pub classes: Vec<ClassRender>,
    /// Per relation index: relation attribute name.
    pub relation_attrs: Vec<String>,
}

/// A rendered side: the KB plus the canonical-index → entity-id map.
pub struct RenderedSide {
    /// The knowledge base.
    pub kb: KnowledgeBase,
    /// `map[canonical index] = Some(entity id)` when present on this side.
    pub map: Vec<Option<EntityId>>,
}

/// Renders side `side_idx` (0 or 1) of `world` according to `spec`.
pub fn render_side(
    world: &World,
    side_idx: usize,
    spec: &RenderSpec,
    rng: &mut StdRng,
) -> RenderedSide {
    let mut b = KbBuilder::new(&spec.kb_name);
    let mut map: Vec<Option<EntityId>> = vec![None; world.entities.len()];
    let uri = |i: usize| format!("{}{}", spec.uri_prefix, i);
    // First pass: declare present entities so link targets resolve.
    for (i, e) in world.entities.iter().enumerate() {
        if e.presence.on(side_idx) {
            map[i] = Some(b.declare_entity(&uri(i)));
        }
    }
    for (i, e) in world.entities.iter().enumerate() {
        if map[i].is_none() {
            continue;
        }
        let cr = &spec.classes[e.class];
        let subject = uri(i);
        let name = if cr.name_punctuation_prob > 0.0 && rng.gen_bool(cr.name_punctuation_prob) {
            e.names[side_idx].join(", ")
        } else {
            e.names[side_idx].join(" ")
        };
        if !name.is_empty() {
            b.add_literal(
                &subject,
                &format!("{}{}", spec.attr_prefix, cr.name_attr),
                &name,
            );
        }
        for (f, toks) in e.fields[side_idx].iter().enumerate() {
            if toks.is_empty() {
                continue;
            }
            let base = &cr.field_attrs[f];
            let attr = if cr.attr_scatter > 1 {
                format!(
                    "{}{}_{}",
                    spec.attr_prefix,
                    base,
                    rng.gen_range(0..cr.attr_scatter)
                )
            } else {
                format!("{}{}", spec.attr_prefix, base)
            };
            b.add_literal(&subject, &attr, &toks.join(" "));
        }
        if let Some((attr, value)) = &cr.type_assertion {
            b.add_literal(&subject, &format!("{}{}", spec.attr_prefix, attr), value);
        }
        for &(rel, target) in e.links.iter().chain(&e.side_links[side_idx]) {
            if world.entities[target].presence.on(side_idx) {
                b.add_uri(
                    &subject,
                    &format!("{}{}", spec.attr_prefix, spec.relation_attrs[rel]),
                    &uri(target),
                );
            }
        }
    }
    RenderedSide {
        kb: b.finish(),
        map,
    }
}

/// Renders both sides and assembles the pair plus ground truth.
pub fn render_pair(
    world: &World,
    specs: [&RenderSpec; 2],
    rng: &mut StdRng,
) -> (KbPair, GroundTruth) {
    let first = render_side(world, 0, specs[0], rng);
    let second = render_side(world, 1, specs[1], rng);
    let mut truth = Matching::new();
    for i in world.matches() {
        if let (Some(e1), Some(e2)) = (first.map[i], second.map[i]) {
            truth.insert(e1, e2);
        }
    }
    (KbPair::new(first.kb, second.kb), truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{ClassSpec, FieldSpec, Presence, TokenPools};
    use rand::SeedableRng;

    fn tiny_world() -> World {
        let mut rng = StdRng::seed_from_u64(11);
        let pools = TokenPools::generate(&mut rng, 300, 20, 100);
        let spec = ClassSpec {
            name_words: (2, 2),
            name_exact_prob: 1.0,
            name_drop_prob: 0.0,
            fields: vec![FieldSpec::new((3, 4), 0.3, [1.0, 1.0], [(0, 0), (0, 0)])],
        };
        let mut w = World {
            gt_classes: vec![0],
            ..World::default()
        };
        let a = w.add_entity(&mut rng, 0, Presence::Both, &spec, &pools);
        let b = w.add_entity(&mut rng, 1, Presence::Both, &spec, &pools);
        let c = w.add_entity(&mut rng, 0, Presence::FirstOnly, &spec, &pools);
        let d = w.add_entity(&mut rng, 1, Presence::SecondOnly, &spec, &pools);
        w.link(a, 0, b);
        w.link(c, 0, d); // dangling on both sides (d absent on 0, c absent on 1)
        w
    }

    fn spec_for(side: usize) -> RenderSpec {
        RenderSpec {
            kb_name: format!("E{}", side + 1),
            uri_prefix: format!("kb{side}:e"),
            attr_prefix: format!("http://v{side}/"),
            classes: vec![
                ClassRender {
                    name_attr: "name".into(),
                    field_attrs: vec!["detail".into()],
                    type_assertion: Some(("type".into(), "Primary".into())),
                    attr_scatter: 1,
                    name_punctuation_prob: 0.0,
                },
                ClassRender {
                    name_attr: "label".into(),
                    field_attrs: vec!["info".into()],
                    type_assertion: None,
                    attr_scatter: if side == 1 { 5 } else { 1 },
                    name_punctuation_prob: 0.0,
                },
            ],
            relation_attrs: vec!["linked".into()],
        }
    }

    #[test]
    fn present_entities_are_rendered_with_truth() {
        let w = tiny_world();
        let mut rng = StdRng::seed_from_u64(1);
        let (pair, truth) = render_pair(&w, [&spec_for(0), &spec_for(1)], &mut rng);
        assert_eq!(pair.first.entity_count(), 3);
        assert_eq!(pair.second.entity_count(), 3);
        // Only class 0 + Both -> entity a.
        assert_eq!(truth.len(), 1);
    }

    #[test]
    fn links_render_only_when_target_present() {
        let w = tiny_world();
        let mut rng = StdRng::seed_from_u64(2);
        let first = render_side(&w, 0, &spec_for(0), &mut rng);
        let a = first.map[0].unwrap();
        assert_eq!(first.kb.out_edges(a).count(), 1);
        let c = first.map[2].unwrap();
        // c links to d which is SecondOnly -> no edge on side 0.
        assert_eq!(first.kb.out_edges(c).count(), 0);
    }

    #[test]
    fn attr_scatter_multiplies_attribute_names() {
        let mut rng = StdRng::seed_from_u64(12);
        let pools = TokenPools::generate(&mut rng, 300, 20, 100);
        let spec = ClassSpec {
            name_words: (2, 2),
            name_exact_prob: 1.0,
            name_drop_prob: 0.0,
            fields: vec![FieldSpec::new((3, 3), 0.0, [1.0, 1.0], [(0, 0), (0, 0)])],
        };
        let mut w = World {
            gt_classes: vec![1],
            ..World::default()
        };
        for _ in 0..50 {
            w.add_entity(&mut rng, 1, Presence::Both, &spec, &pools);
        }
        let scattered = render_side(&w, 1, &spec_for(1), &mut rng);
        let flat = render_side(&w, 0, &spec_for(0), &mut rng);
        assert!(scattered.kb.attr_count() > flat.kb.attr_count());
    }

    #[test]
    fn vocabulary_prefixes_differ_across_sides() {
        let w = tiny_world();
        let mut rng = StdRng::seed_from_u64(3);
        let (pair, _) = render_pair(&w, [&spec_for(0), &spec_for(1)], &mut rng);
        let a0 = pair.first.attr_name(minoan_kb::AttrId(0));
        let a1 = pair.second.attr_name(minoan_kb::AttrId(0));
        assert!(a0.starts_with("http://v0/"));
        assert!(a1.starts_with("http://v1/"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let w = tiny_world();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let (p1, t1) = render_pair(&w, [&spec_for(0), &spec_for(1)], &mut r1);
        let (p2, t2) = render_pair(&w, [&spec_for(0), &spec_for(1)], &mut r2);
        assert_eq!(p1.first.triple_count(), p2.first.triple_count());
        assert_eq!(t1, t2);
        assert_eq!(
            minoan_kb::parse::to_tsv(&p1.second),
            minoan_kb::parse::to_tsv(&p2.second)
        );
    }
}
