//! Similarity measures over [`WeightedVector`]s.
//!
//! These are the four measures BSL sweeps over (paper §IV): Cosine,
//! Jaccard (binary), Generalized Jaccard, and the SiGMa similarity
//! (weighted Jaccard in the style of Lacoste-Julien et al., KDD 2013).

use crate::vector::WeightedVector;

/// The similarity measures available to BSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Measure {
    /// Cosine similarity of the weighted vectors.
    Cosine,
    /// Binary Jaccard over feature sets (weights ignored).
    Jaccard,
    /// Generalized Jaccard: `Σ min(w1,w2) / Σ max(w1,w2)`.
    GeneralizedJaccard,
    /// SiGMa's weighted Jaccard: `Σ_{common} min(w1,w2) / (Σ_a w + Σ_b w − Σ_{common} min(w1,w2))`.
    SiGMa,
}

impl Measure {
    /// All supported measures (for the BSL sweep).
    pub const ALL: [Measure; 4] = [
        Measure::Cosine,
        Measure::Jaccard,
        Measure::GeneralizedJaccard,
        Measure::SiGMa,
    ];

    /// Computes the measure between two vectors. Result is in `[0, 1]`.
    pub fn compute(self, a: &WeightedVector, b: &WeightedVector) -> f64 {
        match self {
            Measure::Cosine => cosine(a, b),
            Measure::Jaccard => jaccard(a, b),
            Measure::GeneralizedJaccard => generalized_jaccard(a, b),
            Measure::SiGMa => sigma(a, b),
        }
    }
}

impl std::fmt::Display for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Measure::Cosine => write!(f, "Cosine"),
            Measure::Jaccard => write!(f, "Jaccard"),
            Measure::GeneralizedJaccard => write!(f, "GenJaccard"),
            Measure::SiGMa => write!(f, "SiGMa"),
        }
    }
}

/// Cosine similarity.
pub fn cosine(a: &WeightedVector, b: &WeightedVector) -> f64 {
    if a.norm() == 0.0 || b.norm() == 0.0 {
        return 0.0;
    }
    let mut dot = 0.0;
    a.merge_join(b, |x, y| dot += x * y);
    dot / (a.norm() * b.norm())
}

/// Binary Jaccard over the feature *sets*.
pub fn jaccard(a: &WeightedVector, b: &WeightedVector) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    a.merge_join(b, |x, y| {
        if x > 0.0 && y > 0.0 {
            inter += 1;
        }
    });
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Generalized (weighted) Jaccard: `Σ min / Σ max`.
pub fn generalized_jaccard(a: &WeightedVector, b: &WeightedVector) -> f64 {
    let mut min_sum = 0.0;
    let mut max_sum = 0.0;
    a.merge_join(b, |x, y| {
        min_sum += x.min(y);
        max_sum += x.max(y);
    });
    if max_sum == 0.0 {
        0.0
    } else {
        min_sum / max_sum
    }
}

/// SiGMa similarity: shared weight relative to total weight mass,
/// `Σ_common min / (Σ_a + Σ_b − Σ_common min)`.
pub fn sigma(a: &WeightedVector, b: &WeightedVector) -> f64 {
    let mut common = 0.0;
    a.merge_join(b, |x, y| {
        if x > 0.0 && y > 0.0 {
            common += x.min(y);
        }
    });
    let denom = a.weight_sum() + b.weight_sum() - common;
    if denom <= 0.0 {
        0.0
    } else {
        common / denom
    }
}

/// Dice coefficient over binary feature sets (used by ablations).
pub fn dice(a: &WeightedVector, b: &WeightedVector) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    a.merge_join(b, |x, y| {
        if x > 0.0 && y > 0.0 {
            inter += 1;
        }
    });
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{build_vectors, Weighting};

    fn vecs(a: &[&str], b: &[&str]) -> (WeightedVector, WeightedVector) {
        let (f, s) = build_vectors(
            &[a.iter().map(|x| x.to_string()).collect()],
            &[b.iter().map(|x| x.to_string()).collect()],
            Weighting::Tf,
        );
        (f[0].clone(), s[0].clone())
    }

    #[test]
    fn identical_vectors_score_one() {
        let (a, b) = vecs(&["x", "y", "z"], &["x", "y", "z"]);
        for m in Measure::ALL {
            let v = m.compute(&a, &b);
            assert!((v - 1.0).abs() < 1e-9, "{m} gave {v}");
        }
    }

    #[test]
    fn disjoint_vectors_score_zero() {
        let (a, b) = vecs(&["x"], &["y"]);
        for m in Measure::ALL {
            assert_eq!(m.compute(&a, &b), 0.0, "{m}");
        }
    }

    #[test]
    fn empty_vectors_never_nan() {
        let (a, b) = vecs(&[], &[]);
        for m in Measure::ALL {
            let v = m.compute(&a, &b);
            assert!(v.is_finite());
            assert_eq!(v, 0.0);
        }
        assert_eq!(dice(&a, &b), 0.0);
    }

    #[test]
    fn all_measures_are_bounded_and_symmetric() {
        let (a, b) = vecs(&["x", "x", "y", "w"], &["x", "y", "z"]);
        for m in Measure::ALL {
            let v1 = m.compute(&a, &b);
            let v2 = m.compute(&b, &a);
            assert!((0.0..=1.0).contains(&v1), "{m} out of range: {v1}");
            assert!((v1 - v2).abs() < 1e-12, "{m} asymmetric");
        }
    }

    #[test]
    fn binary_jaccard_ignores_weights() {
        let (a, b) = vecs(&["x", "x", "x", "y"], &["x", "y"]);
        assert!((jaccard(&a, &b) - 1.0).abs() < 1e-12);
        assert!(generalized_jaccard(&a, &b) < 1.0);
    }

    #[test]
    fn partial_overlap_is_strictly_between() {
        let (a, b) = vecs(&["x", "y"], &["y", "z"]);
        for m in Measure::ALL {
            let v = m.compute(&a, &b);
            assert!(v > 0.0 && v < 1.0, "{m} gave {v}");
        }
        let d = dice(&a, &b);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cosine_matches_manual_computation() {
        let (a, b) = vecs(&["x", "y"], &["x"]);
        // a = (0.5, 0.5), b = (1.0) on x.
        let expected = 0.5 / ((0.5f64.powi(2) * 2.0).sqrt() * 1.0);
        assert!((cosine(&a, &b) - expected).abs() < 1e-12);
    }
}
