//! # minoan-bench — the paper-reproduction harness
//!
//! Shared plumbing for the `repro_table{1,2,3}` and `ablation_params`
//! binaries and the Criterion benches: dataset construction, method
//! execution, and the paper's reference numbers for side-by-side
//! comparison.

#![warn(missing_docs)]

pub mod benchutil;
pub mod paper;
pub mod runner;

pub use paper::{PAPER_TABLE1, PAPER_TABLE2, PAPER_TABLE3};
pub use runner::{default_scale, run_methods, DatasetRun, MethodResult, DEFAULT_SEED};
