//! The similarity index: every similarity MinoanER needs, computed once
//! from the purged token blocks.
//!
//! The paper's efficiency argument (§III) is that both `valueSim` and
//! `neighborNSim` are functions of block statistics, so the matching
//! process iterates over blocks instead of the KBs. This module realizes
//! that: one pass over `BT` accumulates `valueSim` for every co-occurring
//! pair (each shared token is exactly one shared block, contributing its
//! `1/log2(EF1·EF2+1)` weight), and a second pass distributes those
//! values onto the containing pairs through `topNneighbors` to obtain
//! `neighborNSim`.

use minoan_blocking::BlockCollection;
use minoan_kb::{EntityId, FxHashMap, KbSide, TokenId};
use minoan_sim::token_weight;
use minoan_text::TokenizedPair;

/// A scored candidate (the other side's entity plus a similarity).
pub type Candidate = (EntityId, f64);

/// Value and neighbor similarities for all co-occurring pairs, with
/// per-entity candidate lists sorted by similarity (descending, ties by
/// entity id for determinism).
#[derive(Debug, Default)]
pub struct SimilarityIndex {
    value: FxHashMap<(u32, u32), f64>,
    neighbor: FxHashMap<(u32, u32), f64>,
    /// Per side, per entity: candidates by value similarity.
    value_cands: [Vec<Vec<Candidate>>; 2],
    /// Per side, per entity: candidates by (non-zero) neighbor similarity.
    neighbor_cands: [Vec<Vec<Candidate>>; 2],
}

impl SimilarityIndex {
    /// Builds the index from the (purged) token blocks.
    ///
    /// `top_neighbors` holds `topNneighbors(e)` per entity for each side
    /// (see [`crate::importance::top_neighbors`]).
    pub fn build(
        blocks: &BlockCollection,
        tokens: &TokenizedPair,
        top_neighbors: [&[Vec<EntityId>]; 2],
    ) -> Self {
        let n1 = tokens.entity_count(KbSide::First);
        let n2 = tokens.entity_count(KbSide::Second);
        let mut value: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        for b in blocks.blocks() {
            let t = TokenId(b.key);
            let w = token_weight(
                tokens.dict().ef(KbSide::First, t),
                tokens.dict().ef(KbSide::Second, t),
            );
            for &e1 in &b.firsts {
                for &e2 in &b.seconds {
                    *value.entry((e1.0, e2.0)).or_insert(0.0) += w;
                }
            }
        }
        let value_cands = pair_map_to_lists(&value, n1, n2);

        // neighborNSim(e1, e2) = Σ_{n1 ∈ top(e1), n2 ∈ top(e2)} valueSim(n1, n2).
        // For each e1: acc[n2] = Σ_{n1 ∈ top(e1)} valueSim(n1, n2), then
        // sum acc over e2's top neighbors for each candidate e2.
        let mut neighbor: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        let mut acc: FxHashMap<u32, f64> = FxHashMap::default();
        for e1 in 0..n1 as u32 {
            let cands = &value_cands[0][e1 as usize];
            if cands.is_empty() {
                continue;
            }
            let tops1 = &top_neighbors[0][e1 as usize];
            if tops1.is_empty() {
                continue;
            }
            acc.clear();
            for &nb1 in tops1 {
                for &(nb2, v) in &value_cands[0][nb1.index()] {
                    *acc.entry(nb2.0).or_insert(0.0) += v;
                }
            }
            if acc.is_empty() {
                continue;
            }
            for &(e2, _) in cands {
                let mut s = 0.0;
                for &nb2 in &top_neighbors[1][e2.index()] {
                    if let Some(&v) = acc.get(&nb2.0) {
                        s += v;
                    }
                }
                if s > 0.0 {
                    neighbor.insert((e1, e2.0), s);
                }
            }
        }
        let neighbor_cands = pair_map_to_lists(&neighbor, n1, n2);
        Self {
            value,
            neighbor,
            value_cands,
            neighbor_cands,
        }
    }

    /// `valueSim(e1, e2)` over the purged blocks (0 when the pair never
    /// co-occurs).
    pub fn value_sim(&self, e1: EntityId, e2: EntityId) -> f64 {
        self.value.get(&(e1.0, e2.0)).copied().unwrap_or(0.0)
    }

    /// `neighborNSim(e1, e2)` (0 when no top-neighbor pair co-occurs).
    pub fn neighbor_sim(&self, e1: EntityId, e2: EntityId) -> f64 {
        self.neighbor.get(&(e1.0, e2.0)).copied().unwrap_or(0.0)
    }

    /// Candidates of `e` (an entity of `side`) sorted by value
    /// similarity, descending.
    pub fn value_candidates(&self, side: KbSide, e: EntityId) -> &[Candidate] {
        &self.value_cands[side.index()][e.index()]
    }

    /// Candidates of `e` with non-zero neighbor similarity, descending.
    pub fn neighbor_candidates(&self, side: KbSide, e: EntityId) -> &[Candidate] {
        &self.neighbor_cands[side.index()][e.index()]
    }

    /// The best value candidate of `e`, if any.
    pub fn top_value_candidate(&self, side: KbSide, e: EntityId) -> Option<Candidate> {
        self.value_cands[side.index()][e.index()].first().copied()
    }

    /// Number of co-occurring pairs with recorded value similarity.
    pub fn pair_count(&self) -> usize {
        self.value.len()
    }

    /// Number of pairs with non-zero neighbor similarity.
    pub fn neighbor_pair_count(&self) -> usize {
        self.neighbor.len()
    }
}

/// Converts a pair→similarity map into per-entity sorted candidate lists
/// for both sides.
fn pair_map_to_lists(
    map: &FxHashMap<(u32, u32), f64>,
    n1: usize,
    n2: usize,
) -> [Vec<Vec<Candidate>>; 2] {
    let mut firsts: Vec<Vec<Candidate>> = vec![Vec::new(); n1];
    let mut seconds: Vec<Vec<Candidate>> = vec![Vec::new(); n2];
    for (&(e1, e2), &v) in map {
        firsts[e1 as usize].push((EntityId(e2), v));
        seconds[e2 as usize].push((EntityId(e1), v));
    }
    for list in firsts.iter_mut().chain(seconds.iter_mut()) {
        list.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
    }
    [firsts, seconds]
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::token_blocking;
    use minoan_kb::{KbBuilder, KbPair};
    use minoan_text::Tokenizer;

    /// Two tiny movie KBs: movies m share a title token with their
    /// counterpart, actors are linked via `starring`.
    fn setup() -> (KbPair, TokenizedPair, BlockCollection, Vec<Vec<EntityId>>, Vec<Vec<EntityId>>) {
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:m0", "title", "zorba dance");
        a.add_uri("a:m0", "starring", "a:p0");
        a.add_literal("a:p0", "name", "anthony quinn");
        a.add_literal("a:m1", "title", "stella");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:m0", "label", "zorba the dance");
        b.add_uri("b:m0", "actor", "b:p0");
        b.add_literal("b:p0", "fullname", "quinn anthony");
        b.add_literal("b:m1", "label", "stella nights");
        let pair = KbPair::new(a.finish(), b.finish());
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&tokens);
        let tn1 = crate::importance::top_neighbors(&pair.first, 3, 32);
        let tn2 = crate::importance::top_neighbors(&pair.second, 3, 32);
        (pair, tokens, bt, tn1, tn2)
    }

    #[test]
    fn value_sims_match_direct_computation() {
        let (pair, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        for e1 in pair.first.entities() {
            for e2 in pair.second.entities() {
                let direct = minoan_sim::value_sim(&tokens, e1, e2);
                let indexed = idx.value_sim(e1, e2);
                assert!(
                    (direct - indexed).abs() < 1e-9,
                    "mismatch for {e1:?},{e2:?}: {direct} vs {indexed}"
                );
            }
        }
    }

    #[test]
    fn candidate_lists_are_sorted_desc() {
        let (_, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        for side in [KbSide::First, KbSide::Second] {
            for e in 0..tokens.entity_count(side) as u32 {
                let c = idx.value_candidates(side, EntityId(e));
                assert!(c.windows(2).all(|w| w[0].1 >= w[1].1));
            }
        }
    }

    #[test]
    fn neighbor_sim_propagates_actor_similarity_to_movies() {
        let (pair, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        let am0 = pair.first.entity_by_uri("a:m0").unwrap();
        let bm0 = pair.second.entity_by_uri("b:m0").unwrap();
        let ap0 = pair.first.entity_by_uri("a:p0").unwrap();
        let bp0 = pair.second.entity_by_uri("b:p0").unwrap();
        let actors = idx.value_sim(ap0, bp0);
        assert!(actors > 0.0);
        // The movies' neighbor similarity equals their actors' value sim.
        assert!((idx.neighbor_sim(am0, bm0) - actors).abs() < 1e-9);
        // And the actors' neighbor similarity equals the movies' value sim
        // (via the incoming edge).
        assert!((idx.neighbor_sim(ap0, bp0) - idx.value_sim(am0, bm0)).abs() < 1e-9);
    }

    #[test]
    fn non_cooccurring_pairs_have_zero_sims() {
        let (pair, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        let am1 = pair.first.entity_by_uri("a:m1").unwrap();
        let bm0 = pair.second.entity_by_uri("b:m0").unwrap();
        assert_eq!(idx.value_sim(am1, bm0), 0.0);
        assert_eq!(idx.neighbor_sim(am1, bm0), 0.0);
    }

    #[test]
    fn neighbor_candidates_only_contain_nonzero_entries() {
        let (_, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        for side in [KbSide::First, KbSide::Second] {
            for e in 0..tokens.entity_count(side) as u32 {
                for &(_, v) in idx.neighbor_candidates(side, EntityId(e)) {
                    assert!(v > 0.0);
                }
            }
        }
    }

    #[test]
    fn both_directions_agree() {
        let (_, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        for e1 in 0..tokens.entity_count(KbSide::First) as u32 {
            for &(e2, v) in idx.value_candidates(KbSide::First, EntityId(e1)) {
                let back = idx.value_candidates(KbSide::Second, e2);
                assert!(back.iter().any(|&(e, bv)| e == EntityId(e1) && (bv - v).abs() < 1e-12));
            }
        }
    }

    #[test]
    fn top_value_candidate_is_the_argmax() {
        let (pair, tokens, bt, tn1, tn2) = setup();
        let idx = SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2]);
        let am0 = pair.first.entity_by_uri("a:m0").unwrap();
        let bm0 = pair.second.entity_by_uri("b:m0").unwrap();
        let (top, v) = idx.top_value_candidate(KbSide::First, am0).unwrap();
        assert_eq!(top, bm0);
        assert!(v > 0.0);
    }
}
