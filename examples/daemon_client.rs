//! A line-delimited JSON client for the `minoaner serve` daemon.
//!
//! ```text
//! cargo run --release --example daemon_client -- <addr> submit '<job json>'
//! cargo run --release --example daemon_client -- <addr> status
//! cargo run --release --example daemon_client -- <addr> cancel <id>
//! cargo run --release --example daemon_client -- <addr> wait <id>
//! cargo run --release --example daemon_client -- <addr> shutdown [drain|cancel]
//! cargo run --release --example daemon_client -- <addr> smoke
//! ```
//!
//! Each mode sends one request line and prints the response line; see
//! `minoan_serve::daemon` for the wire protocol. `submit` takes the
//! manifest job schema, e.g.
//! `'{"name":"r","dataset":"restaurant","scale":0.1}'`.
//!
//! `smoke` is the end-to-end scenario CI runs against a live daemon:
//! submit a small job, submit a second long job and cancel it mid-run,
//! assert the first resolves and the second reports `cancelled`, then
//! shut the daemon down. Exits non-zero on any violated expectation.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::exit;

use minoaner::kb::Json;

#[path = "shared/retry.rs"]
mod retry;
use retry::connect_retry;

/// One open connection to the daemon, with request/response framing.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = connect_retry(addr)?;
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and reads one response line.
    fn request(&mut self, body: &Json) -> Json {
        let line = body.compact() + "\n";
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .unwrap_or_else(|e| fail(&format!("cannot send request: {e}")));
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .unwrap_or_else(|e| fail(&format!("cannot read response: {e}")));
        Json::parse(response.trim())
            .unwrap_or_else(|e| fail(&format!("bad response {response:?}: {e}")))
    }

    fn op(&mut self, op: &str) -> Json {
        self.request(&Json::obj([("op", Json::str(op))]))
    }

    fn op_id(&mut self, op: &str, id: usize) -> Json {
        self.request(&Json::obj([
            ("op", Json::str(op)),
            ("id", Json::num(id as f64)),
        ]))
    }

    fn submit(&mut self, job: Json) -> usize {
        let r = self.request(&Json::obj([("op", Json::str("submit")), ("job", job)]));
        expect_ok(&r);
        r.get("id")
            .and_then(Json::as_usize)
            .unwrap_or_else(|| fail(&format!("submit response lacks an id: {r:?}")))
    }
}

fn fail(message: &str) -> ! {
    eprintln!("daemon_client: {message}");
    exit(1);
}

fn expect_ok(response: &Json) {
    if response.get("ok") != Some(&Json::Bool(true)) {
        fail(&format!("daemon refused the request: {response:?}"));
    }
}

/// A synthetic job spec in the manifest job schema.
fn synthetic_job(name: &str, dataset: &str, scale: f64) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("dataset", Json::str(dataset)),
        ("scale", Json::Num(scale)),
    ])
}

/// The CI smoke scenario: resolve one job, cancel another mid-run,
/// shut down cleanly.
fn smoke(addr: &str) {
    let mut client = Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));

    // A small job that must resolve…
    let quick = client.submit(synthetic_job("smoke-quick", "restaurant", 0.1));
    // …and a heavy one we cancel immediately: it is either still queued
    // (flips without running) or already running (unwinds at the next
    // pipeline checkpoint) — both must end `cancelled`, and neither may
    // disturb the quick job.
    let doomed = client.submit(synthetic_job("smoke-doomed", "yago", 1.0));
    let r = client.op_id("cancel", doomed);
    expect_ok(&r);
    let outcome = r.get("outcome").and_then(Json::as_str).unwrap_or("?");
    if !matches!(outcome, "cancelled" | "cancelling") {
        fail(&format!("unexpected cancel outcome {outcome:?}"));
    }
    eprintln!("smoke: cancel acknowledged ({outcome})");

    let r = client.op_id("wait", doomed);
    expect_ok(&r);
    let status = r
        .get("report")
        .and_then(|rep| rep.get("status"))
        .and_then(Json::as_str);
    if status != Some("cancelled") {
        fail(&format!("doomed job ended {status:?}, expected cancelled"));
    }
    eprintln!("smoke: doomed job reported cancelled");

    let r = client.op_id("wait", quick);
    expect_ok(&r);
    let report = r.get("report").unwrap_or(&Json::Null);
    if report.get("status").and_then(Json::as_str) != Some("ok") {
        fail(&format!("quick job did not resolve: {report:?}"));
    }
    let matches = report.get("matches").and_then(Json::as_usize).unwrap_or(0);
    if matches == 0 {
        fail("quick job resolved zero matches");
    }
    eprintln!("smoke: quick job ok with {matches} matches");

    let r = client.op("status");
    expect_ok(&r);
    if r.get("done").and_then(Json::as_usize) != Some(2) {
        fail(&format!("expected 2 terminal jobs, got {r:?}"));
    }

    expect_ok(&client.op("shutdown"));
    eprintln!("smoke: shutdown acknowledged");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: daemon_client <addr> \
                 (submit <job-json> | status | cancel <id> | wait <id> | \
                 shutdown [drain|cancel] | smoke)";
    let (Some(addr), Some(mode)) = (args.first(), args.get(1)) else {
        fail(usage);
    };
    match mode.as_str() {
        "smoke" => smoke(addr),
        "status" => {
            let mut c = Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));
            println!("{}", c.op("status").pretty());
        }
        "submit" => {
            let Some(job) = args.get(2) else { fail(usage) };
            let job = Json::parse(job).unwrap_or_else(|e| fail(&format!("bad job JSON: {e}")));
            let mut c = Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));
            println!("{}", c.submit(job));
        }
        "cancel" | "wait" => {
            let Some(id) = args.get(2).and_then(|v| v.parse().ok()) else {
                fail(usage)
            };
            let mut c = Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));
            println!("{}", c.op_id(mode, id).pretty());
        }
        "shutdown" => {
            let mut body = vec![("op".to_string(), Json::str("shutdown"))];
            if let Some(mode) = args.get(2) {
                body.push(("mode".to_string(), Json::str(mode.clone())));
            }
            let mut c = Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));
            let r = c.request(&Json::Obj(body));
            expect_ok(&r);
            println!("{}", r.pretty());
        }
        _ => fail(usage),
    }
}
