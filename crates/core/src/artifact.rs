//! Persistent index artifacts: build once, query many times.
//!
//! A MinoanER run produces structures that are expensive to build and
//! cheap to query: the tokenized pair, the blocking graph, the CSR
//! similarity index and the final matching. [`IndexArtifact`] captures
//! all of them from an [`IndexedOutput`](crate::pipeline::IndexedOutput)
//! and persists them in the checksummed section container of
//! [`minoan_kb::artifact`], so a serving process can answer "who matches
//! this entity?" without re-running ingest, blocking or matching.
//!
//! The matching stored in the artifact is byte-for-byte the matching the
//! in-memory run produced — persistence happens *after* the pipeline, on
//! the same output object — so answers served from a loaded artifact are
//! fingerprint-identical to a fresh run by construction. The robustness
//! guarantees (truncation, bad magic, wrong version, flipped bits all
//! rejected with structured [`ArtifactError`]s) come from the container
//! layer; this module adds structural validation on top: every decoded
//! entity id is bounds-checked before any index is rebuilt.

use std::io;
use std::path::Path;
use std::time::{Duration, SystemTime};

use minoan_blocking::{Block, BlockCollection, BlockKind};
use minoan_kb::artifact::{
    put_f64, put_str, put_u32, put_u32s, put_u64, ArtifactError, ArtifactFile, ArtifactWriter,
    Cursor,
};
use minoan_kb::{
    AttrId, Csr, EntityId, Interner, Json, KbPair, KbSide, KnowledgeBase, Matching, Statement,
    TokenId, Value,
};
use minoan_text::{TokenDictionary, TokenizedPair};

use crate::config::MinoanConfig;
use crate::pipeline::{IndexedOutput, Timings};
use crate::simindex::{Candidate, SimilarityIndex};

/// Section tag: artifact metadata (name, counts, timings, config).
pub const TAG_META: u32 = 0x01;
/// Section tag: token dictionary and per-entity token sets.
pub const TAG_TOKENS: u32 = 0x04;
/// Section tag: name blocks (`BN`).
pub const TAG_NAME_BLOCKS: u32 = 0x05;
/// Section tag: token blocks (`BT`, purged).
pub const TAG_TOKEN_BLOCKS: u32 = 0x06;
/// Section tag: the four candidate CSRs of the similarity index.
pub const TAG_SIMINDEX: u32 = 0x07;
/// Section tag: the final matching, as entity-id pairs.
pub const TAG_MATCHING: u32 = 0x08;
/// Section tag: the first knowledge base, embedded whole (name, URI and
/// attribute interners, per-entity statements). Format version 2
/// replaced the bare URI-interner sections (tags `0x02`/`0x03` of
/// version 1) with these so a loaded artifact can be *patched*: delta
/// resolution needs the statements, not just the URIs.
pub const TAG_KB_FIRST: u32 = 0x09;
/// Section tag: the second knowledge base, embedded whole.
pub const TAG_KB_SECOND: u32 = 0x0A;

/// Cheap-to-read metadata about a persisted index.
#[derive(Debug, Clone)]
pub struct ArtifactMeta {
    /// Index name (the build job's manifest key).
    pub name: String,
    /// Format version of the file this meta was read from (the current
    /// [`minoan_kb::artifact::FORMAT_VERSION`] for freshly built ones).
    pub format_version: u32,
    /// Logical content version: 1 for a fresh build, bumped by one on
    /// every persisted delta patch. Readers use it to tell "same file"
    /// from "same index name, newer contents".
    pub content_version: u64,
    /// Total artifact file size in bytes (0 until written or read).
    pub file_bytes: u64,
    /// Human-readable KB names, first and second side.
    pub kb_names: [String; 2],
    /// Entity counts per side.
    pub entity_counts: [u64; 2],
    /// Distinct tokens in the shared dictionary.
    pub token_count: u64,
    /// Name blocks (`|BN|`).
    pub name_block_count: u64,
    /// Token blocks after purging (`|BT|`).
    pub token_block_count: u64,
    /// Pairs with recorded value similarity.
    pub value_pair_count: u64,
    /// Pairs with non-zero neighbor similarity.
    pub neighbor_pair_count: u64,
    /// Pairs in the final matching.
    pub matched_pairs: u64,
    /// Stage timings of the build run.
    pub build_timings: Timings,
    /// Wall-clock build completion time, milliseconds since the epoch.
    pub built_unix_ms: u64,
    /// The build configuration, as compact JSON.
    pub config_json: String,
}

impl ArtifactMeta {
    /// The metadata as a JSON object (the `GET /v1/indexes/{id}` body).
    pub fn to_json(&self) -> Json {
        let config = Json::parse(&self.config_json).unwrap_or(Json::Null);
        let t = &self.build_timings;
        Json::obj([
            ("name", Json::str(&self.name)),
            ("format_version", Json::num(self.format_version as f64)),
            ("content_version", Json::num(self.content_version as f64)),
            ("file_bytes", Json::num(self.file_bytes as f64)),
            ("kb_names", Json::arr(self.kb_names.iter().map(Json::str))),
            (
                "entities",
                Json::arr(self.entity_counts.iter().map(|&n| Json::num(n as f64))),
            ),
            ("tokens", Json::num(self.token_count as f64)),
            ("name_blocks", Json::num(self.name_block_count as f64)),
            ("token_blocks", Json::num(self.token_block_count as f64)),
            ("value_pairs", Json::num(self.value_pair_count as f64)),
            ("neighbor_pairs", Json::num(self.neighbor_pair_count as f64)),
            ("matches", Json::num(self.matched_pairs as f64)),
            ("built_unix_ms", Json::num(self.built_unix_ms as f64)),
            (
                "build_timings_ms",
                Json::obj([
                    ("tokenize", Json::Num(t.tokenize.as_secs_f64() * 1e3)),
                    ("names_h1", Json::Num(t.names_h1.as_secs_f64() * 1e3)),
                    ("blocking", Json::Num(t.blocking.as_secs_f64() * 1e3)),
                    (
                        "similarities",
                        Json::Num(t.similarities.as_secs_f64() * 1e3),
                    ),
                    ("matching", Json::Num(t.matching.as_secs_f64() * 1e3)),
                    ("total", Json::Num(t.total().as_secs_f64() * 1e3)),
                ]),
            ),
            ("config", config),
        ])
    }
}

/// One answer of the online match-query path.
#[derive(Debug, Clone)]
pub struct MatchAnswer {
    /// Which side the queried entity belongs to.
    pub side: KbSide,
    /// The queried entity's URI (as stored).
    pub entity: String,
    /// URIs of the matched counterparts from the final matching
    /// (at most one for a clean partial matching).
    pub matches: Vec<String>,
    /// Top-k value-similarity candidates from the other side, with
    /// scores, best first.
    pub candidates: Vec<(String, f64)>,
}

/// A loaded (or freshly built) persistent index.
///
/// Since format version 2 the artifact embeds both knowledge bases
/// whole, which is what makes it *patchable*: [`crate::delta`] mutates
/// the pair in place and re-resolves only the affected neighborhood.
#[derive(Debug)]
pub struct IndexArtifact {
    pub(crate) meta: ArtifactMeta,
    pub(crate) pair: KbPair,
    pub(crate) tokens: TokenizedPair,
    pub(crate) name_blocks: BlockCollection,
    pub(crate) token_blocks: BlockCollection,
    pub(crate) index: SimilarityIndex,
    pub(crate) matching: Matching,
}

impl IndexArtifact {
    /// Captures an index from a finished pipeline run. `pair` must be
    /// the pair `indexed` was produced from; the artifact keeps its own
    /// copy so patches can mutate it.
    pub fn from_run(
        name: &str,
        pair: &KbPair,
        indexed: IndexedOutput,
        config: &MinoanConfig,
    ) -> Self {
        let IndexedOutput {
            output,
            artifacts,
            index,
        } = indexed;
        let built_unix_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let meta = ArtifactMeta {
            name: name.to_string(),
            format_version: minoan_kb::artifact::FORMAT_VERSION,
            content_version: 1,
            file_bytes: 0,
            kb_names: [
                pair.first.name().to_string(),
                pair.second.name().to_string(),
            ],
            entity_counts: [
                pair.first.entity_count() as u64,
                pair.second.entity_count() as u64,
            ],
            token_count: artifacts.tokens.dict().len() as u64,
            name_block_count: artifacts.name_blocks.len() as u64,
            token_block_count: artifacts.token_blocks.len() as u64,
            value_pair_count: index.pair_count() as u64,
            neighbor_pair_count: index.neighbor_pair_count() as u64,
            matched_pairs: output.matching.len() as u64,
            build_timings: output.report.timings.clone(),
            built_unix_ms,
            config_json: config.to_json().compact(),
        };
        Self {
            meta,
            pair: pair.clone(),
            tokens: artifacts.tokens,
            name_blocks: artifacts.name_blocks,
            token_blocks: artifacts.token_blocks,
            index,
            matching: output.matching,
        }
    }

    /// The artifact's metadata.
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// The persisted final matching.
    pub fn matching(&self) -> &Matching {
        &self.matching
    }

    /// The persisted similarity index.
    pub fn index(&self) -> &SimilarityIndex {
        &self.index
    }

    /// The persisted tokenized pair.
    pub fn tokens(&self) -> &TokenizedPair {
        &self.tokens
    }

    /// The persisted block collection of one kind.
    pub fn blocks(&self, kind: BlockKind) -> &BlockCollection {
        match kind {
            BlockKind::Name => &self.name_blocks,
            BlockKind::Token => &self.token_blocks,
        }
    }

    /// The embedded knowledge-base pair.
    pub fn pair(&self) -> &KbPair {
        &self.pair
    }

    /// The entity-URI dictionary of one side.
    pub fn uris(&self, side: KbSide) -> &Interner {
        self.pair.kb(side).entity_uris()
    }

    /// The matching as URI pairs, in pipeline insertion order — the
    /// deterministic result the bit-identity gate compares against a
    /// fresh run's `matches`.
    pub fn matched_uri_pairs(&self) -> Vec<(String, String)> {
        self.matching
            .iter()
            .map(|(a, b)| {
                (
                    self.pair.first.entity_uri(a).to_string(),
                    self.pair.second.entity_uri(b).to_string(),
                )
            })
            .collect()
    }

    /// Answers "who matches this entity?" from the loaded structures —
    /// no ingest, no blocking, no pipeline. Returns `None` when the IRI
    /// is on neither side.
    pub fn match_query(&self, iri: &str, k: usize) -> Option<MatchAnswer> {
        let (side, id) = if let Some(id) = self.pair.first.entity_by_uri(iri) {
            (KbSide::First, id)
        } else if let Some(id) = self.pair.second.entity_by_uri(iri) {
            (KbSide::Second, id)
        } else {
            return None;
        };
        let other = side.other();
        let matches: Vec<String> = self
            .matching
            .iter()
            .filter_map(|(a, b)| match side {
                KbSide::First => (a == id).then(|| self.pair.second.entity_uri(b).to_string()),
                KbSide::Second => (b == id).then(|| self.pair.first.entity_uri(a).to_string()),
            })
            .collect();
        let candidates: Vec<(String, f64)> = self
            .index
            .value_candidates(side, id)
            .iter()
            .take(k)
            .map(|&(e, v)| (self.pair.kb(other).entity_uri(e).to_string(), v))
            .collect();
        Some(MatchAnswer {
            side,
            entity: iri.to_string(),
            matches,
            candidates,
        })
    }

    /// Serializes the artifact to `path`, returning the file size.
    pub fn write_to(&self, path: &Path) -> io::Result<u64> {
        let mut w = ArtifactWriter::new();
        w.push_section(TAG_META, self.encode_meta());
        w.push_section(TAG_KB_FIRST, encode_kb(&self.pair.first));
        w.push_section(TAG_KB_SECOND, encode_kb(&self.pair.second));
        w.push_section(TAG_TOKENS, encode_tokens(&self.tokens));
        w.push_section(TAG_NAME_BLOCKS, encode_blocks(&self.name_blocks));
        w.push_section(TAG_TOKEN_BLOCKS, encode_blocks(&self.token_blocks));
        w.push_section(TAG_SIMINDEX, encode_simindex(&self.index));
        w.push_section(TAG_MATCHING, encode_matching(&self.matching));
        w.write_to(path)
    }

    /// Loads and fully validates the artifact at `path`.
    pub fn read_from(path: &Path) -> Result<Self, ArtifactError> {
        let file = ArtifactFile::open(path)?;
        let mut meta = decode_meta(file.section(TAG_META)?)?;
        meta.format_version = file.version();
        meta.file_bytes = file.file_bytes();
        let pair = KbPair::new(
            decode_kb(file.section(TAG_KB_FIRST)?)?,
            decode_kb(file.section(TAG_KB_SECOND)?)?,
        );
        let counts = [pair.first.entity_count(), pair.second.entity_count()];
        let tokens = decode_tokens(file.section(TAG_TOKENS)?, counts)?;
        let name_blocks = decode_blocks(file.section(TAG_NAME_BLOCKS)?, BlockKind::Name, counts)?;
        let token_blocks =
            decode_blocks(file.section(TAG_TOKEN_BLOCKS)?, BlockKind::Token, counts)?;
        let index = decode_simindex(file.section(TAG_SIMINDEX)?, counts)?;
        let matching = decode_matching(file.section(TAG_MATCHING)?, counts)?;
        Ok(Self {
            meta,
            pair,
            tokens,
            name_blocks,
            token_blocks,
            index,
            matching,
        })
    }

    /// Reads only the metadata of the artifact at `path` (the file is
    /// still checksum-validated in full, but no structures are rebuilt).
    pub fn read_meta(path: &Path) -> Result<ArtifactMeta, ArtifactError> {
        let file = ArtifactFile::open(path)?;
        let mut meta = decode_meta(file.section(TAG_META)?)?;
        meta.format_version = file.version();
        meta.file_bytes = file.file_bytes();
        Ok(meta)
    }

    fn encode_meta(&self) -> Vec<u8> {
        let m = &self.meta;
        let mut out = Vec::new();
        put_str(&mut out, &m.name);
        put_str(&mut out, &m.kb_names[0]);
        put_str(&mut out, &m.kb_names[1]);
        put_u64(&mut out, m.entity_counts[0]);
        put_u64(&mut out, m.entity_counts[1]);
        put_u64(&mut out, m.token_count);
        put_u64(&mut out, m.name_block_count);
        put_u64(&mut out, m.token_block_count);
        put_u64(&mut out, m.value_pair_count);
        put_u64(&mut out, m.neighbor_pair_count);
        put_u64(&mut out, m.matched_pairs);
        let t = &m.build_timings;
        for d in [
            t.tokenize,
            t.names_h1,
            t.blocking,
            t.similarities,
            t.matching,
        ] {
            put_u64(&mut out, d.as_nanos() as u64);
        }
        put_u64(&mut out, m.built_unix_ms);
        put_str(&mut out, &m.config_json);
        put_u64(&mut out, m.content_version);
        out
    }
}

fn decode_meta(bytes: &[u8]) -> Result<ArtifactMeta, ArtifactError> {
    let mut c = Cursor::new(bytes);
    let name = c.get_str()?;
    let kb_names = [c.get_str()?, c.get_str()?];
    let entity_counts = [c.get_u64()?, c.get_u64()?];
    let token_count = c.get_u64()?;
    let name_block_count = c.get_u64()?;
    let token_block_count = c.get_u64()?;
    let value_pair_count = c.get_u64()?;
    let neighbor_pair_count = c.get_u64()?;
    let matched_pairs = c.get_u64()?;
    let mut durations = [Duration::ZERO; 5];
    for d in &mut durations {
        *d = Duration::from_nanos(c.get_u64()?);
    }
    let built_unix_ms = c.get_u64()?;
    let config_json = c.get_str()?;
    let content_version = c.get_u64()?;
    Ok(ArtifactMeta {
        name,
        format_version: 0,
        content_version,
        file_bytes: 0,
        kb_names,
        entity_counts,
        token_count,
        name_block_count,
        token_block_count,
        value_pair_count,
        neighbor_pair_count,
        matched_pairs,
        build_timings: Timings {
            tokenize: durations[0],
            names_h1: durations[1],
            blocking: durations[2],
            similarities: durations[3],
            matching: durations[4],
        },
        built_unix_ms,
        config_json,
    })
}

/// Statement-value tag byte: a literal string follows.
const VALUE_LITERAL: u8 = 0;
/// Statement-value tag byte: an entity id follows.
const VALUE_ENTITY: u8 = 1;

fn encode_kb(kb: &KnowledgeBase) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, kb.name());
    let uris = encode_interner(kb.entity_uris());
    put_u64(&mut out, uris.len() as u64);
    out.extend_from_slice(&uris);
    let attrs = encode_interner(kb.attr_interner());
    put_u64(&mut out, attrs.len() as u64);
    out.extend_from_slice(&attrs);
    put_u64(&mut out, kb.entity_count() as u64);
    for e in kb.entities() {
        let stmts = kb.statements(e);
        put_u64(&mut out, stmts.len() as u64);
        for s in stmts {
            put_u32(&mut out, s.attr.0);
            match &s.value {
                Value::Literal(lit) => {
                    out.push(VALUE_LITERAL);
                    put_str(&mut out, lit);
                }
                Value::Entity(e) => {
                    out.push(VALUE_ENTITY);
                    put_u32(&mut out, e.0);
                }
            }
        }
    }
    out
}

fn decode_kb(bytes: &[u8]) -> Result<KnowledgeBase, ArtifactError> {
    let mut c = Cursor::new(bytes);
    let name = c.get_str()?;
    let sub_interner = |c: &mut Cursor<'_>| -> Result<Interner, ArtifactError> {
        let len = c.get_len()?;
        let sub = c.get_bytes(len)?;
        decode_interner(sub)
    };
    let uris = sub_interner(&mut c)?;
    let attrs = sub_interner(&mut c)?;
    let n = c.get_len()?;
    if n != uris.len() {
        return Err(ArtifactError::Corrupt(format!(
            "KB section covers {n} entities, URI interner has {}",
            uris.len()
        )));
    }
    let mut statements = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.get_len()?;
        let mut stmts = Vec::with_capacity(len.min(bytes.len() / 5));
        for _ in 0..len {
            let attr = AttrId(c.get_u32()?);
            let value = match c.get_u8()? {
                VALUE_LITERAL => Value::Literal(c.get_str()?.into_boxed_str()),
                VALUE_ENTITY => Value::Entity(EntityId(c.get_u32()?)),
                tag => {
                    return Err(ArtifactError::Corrupt(format!(
                        "unknown statement value tag {tag}"
                    )))
                }
            };
            stmts.push(Statement { attr, value });
        }
        statements.push(stmts);
    }
    KnowledgeBase::from_parts(name, uris, attrs, statements).map_err(ArtifactError::Corrupt)
}

fn encode_interner(interner: &Interner) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, interner.arena());
    put_u64(&mut out, interner.spans().len() as u64);
    for &(start, end) in interner.spans() {
        put_u32(&mut out, start);
        put_u32(&mut out, end);
    }
    out
}

fn decode_interner(bytes: &[u8]) -> Result<Interner, ArtifactError> {
    let mut c = Cursor::new(bytes);
    let arena = c.get_str()?;
    let n = c.get_len()?;
    if c.remaining() < n.saturating_mul(8) {
        return Err(ArtifactError::Corrupt(format!(
            "interner claims {n} spans but only {} bytes remain",
            c.remaining()
        )));
    }
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        spans.push((c.get_u32()?, c.get_u32()?));
    }
    Interner::from_parts(arena, spans).map_err(ArtifactError::Corrupt)
}

fn encode_tokens(tokens: &TokenizedPair) -> Vec<u8> {
    let mut out = Vec::new();
    let dict = tokens.dict();
    let encoded_interner = encode_interner(dict.interner());
    put_u64(&mut out, encoded_interner.len() as u64);
    out.extend_from_slice(&encoded_interner);
    for side in [KbSide::First, KbSide::Second] {
        put_u32s(&mut out, dict.ef_counts(side));
    }
    for side in [KbSide::First, KbSide::Second] {
        put_u64(&mut out, tokens.total_occurrences(side) as u64);
        let n = tokens.entity_count(side);
        put_u64(&mut out, n as u64);
        for e in 0..n {
            let toks = tokens.tokens(side, EntityId(e as u32));
            put_u64(&mut out, toks.len() as u64);
            for t in toks {
                put_u32(&mut out, t.0);
            }
        }
    }
    out
}

fn decode_tokens(bytes: &[u8], counts: [usize; 2]) -> Result<TokenizedPair, ArtifactError> {
    let mut c = Cursor::new(bytes);
    let interner_len = c.get_len()?;
    if c.remaining() < interner_len {
        return Err(ArtifactError::Corrupt(
            "token interner extends past section".into(),
        ));
    }
    let interner = decode_interner(&bytes[8..8 + interner_len])?;
    let mut c = Cursor::new(&bytes[8 + interner_len..]);
    let ef = [c.get_u32s()?, c.get_u32s()?];
    let dict = TokenDictionary::from_parts(interner, ef).map_err(ArtifactError::Corrupt)?;
    let mut sides: [Vec<Box<[TokenId]>>; 2] = [Vec::new(), Vec::new()];
    let mut occurrences = [0usize; 2];
    for (side, counts_n) in counts.iter().enumerate() {
        occurrences[side] = c.get_len()?;
        let n = c.get_len()?;
        if n != *counts_n {
            return Err(ArtifactError::Corrupt(format!(
                "token section covers {n} entities, URI dictionary has {counts_n}"
            )));
        }
        let mut entity_tokens = Vec::with_capacity(n);
        for _ in 0..n {
            let len = c.get_len()?;
            if c.remaining() < len.saturating_mul(4) {
                return Err(ArtifactError::Corrupt(
                    "entity token list extends past section".into(),
                ));
            }
            let mut toks = Vec::with_capacity(len);
            for _ in 0..len {
                toks.push(TokenId(c.get_u32()?));
            }
            entity_tokens.push(toks.into_boxed_slice());
        }
        sides[side] = entity_tokens;
    }
    TokenizedPair::from_parts(dict, sides, occurrences).map_err(ArtifactError::Corrupt)
}

fn encode_blocks(blocks: &BlockCollection) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, blocks.entity_count(KbSide::First) as u64);
    put_u64(&mut out, blocks.entity_count(KbSide::Second) as u64);
    put_u64(&mut out, blocks.len() as u64);
    for b in blocks.blocks() {
        put_u32(&mut out, b.key);
        for side in [&b.firsts, &b.seconds] {
            put_u64(&mut out, side.len() as u64);
            for e in side {
                put_u32(&mut out, e.0);
            }
        }
    }
    out
}

fn decode_blocks(
    bytes: &[u8],
    kind: BlockKind,
    counts: [usize; 2],
) -> Result<BlockCollection, ArtifactError> {
    let mut c = Cursor::new(bytes);
    let n_first = c.get_len()?;
    let n_second = c.get_len()?;
    if [n_first, n_second] != counts {
        return Err(ArtifactError::Corrupt(format!(
            "block collection indexes {n_first}x{n_second} entities, expected {}x{}",
            counts[0], counts[1]
        )));
    }
    let n_blocks = c.get_len()?;
    let mut blocks = Vec::with_capacity(n_blocks.min(bytes.len() / 4));
    for _ in 0..n_blocks {
        let key = c.get_u32()?;
        let mut sides: [Vec<EntityId>; 2] = [Vec::new(), Vec::new()];
        for (i, bound) in [n_first, n_second].into_iter().enumerate() {
            let len = c.get_len()?;
            if c.remaining() < len.saturating_mul(4) {
                return Err(ArtifactError::Corrupt(
                    "block entity list extends past section".into(),
                ));
            }
            let mut entities = Vec::with_capacity(len);
            for _ in 0..len {
                let e = c.get_u32()?;
                if e as usize >= bound {
                    return Err(ArtifactError::Corrupt(format!(
                        "block entity id {e} out of range {bound}"
                    )));
                }
                entities.push(EntityId(e));
            }
            sides[i] = entities;
        }
        let [firsts, seconds] = sides;
        blocks.push(Block {
            key,
            firsts,
            seconds,
        });
    }
    Ok(BlockCollection::new(kind, blocks, n_first, n_second))
}

fn encode_csr(out: &mut Vec<u8>, csr: &Csr<Candidate>) {
    put_u64(out, csr.rows() as u64);
    put_u64(out, csr.item_count() as u64);
    for &off in csr.offsets() {
        put_u64(out, off as u64);
    }
    for &(e, v) in csr.items() {
        put_u32(out, e.0);
        put_f64(out, v);
    }
}

fn decode_csr(c: &mut Cursor<'_>, n_cols: usize) -> Result<Csr<Candidate>, ArtifactError> {
    let rows = c.get_len()?;
    let item_count = c.get_len()?;
    if c.remaining() < rows.saturating_add(1).saturating_mul(8) {
        return Err(ArtifactError::Corrupt(
            "CSR offsets extend past section".into(),
        ));
    }
    let mut lens = Vec::with_capacity(rows);
    let mut prev = c.get_len()?;
    if prev != 0 {
        return Err(ArtifactError::Corrupt("CSR offsets must start at 0".into()));
    }
    for _ in 0..rows {
        let off = c.get_len()?;
        if off < prev {
            return Err(ArtifactError::Corrupt("CSR offsets not monotone".into()));
        }
        lens.push(off - prev);
        prev = off;
    }
    if prev != item_count {
        return Err(ArtifactError::Corrupt(format!(
            "CSR offsets end at {prev}, item count is {item_count}"
        )));
    }
    if c.remaining() < item_count.saturating_mul(12) {
        return Err(ArtifactError::Corrupt(
            "CSR items extend past section".into(),
        ));
    }
    let mut items = Vec::with_capacity(item_count);
    for _ in 0..item_count {
        let e = c.get_u32()?;
        if e as usize >= n_cols {
            return Err(ArtifactError::Corrupt(format!(
                "CSR candidate id {e} out of range {n_cols}"
            )));
        }
        items.push((EntityId(e), c.get_f64()?));
    }
    Ok(Csr::from_lens_and_items(&lens, items))
}

fn encode_simindex(index: &SimilarityIndex) -> Vec<u8> {
    let mut out = Vec::new();
    for csr in [
        index.value_csr(KbSide::First),
        index.value_csr(KbSide::Second),
        index.neighbor_csr(KbSide::First),
        index.neighbor_csr(KbSide::Second),
    ] {
        encode_csr(&mut out, csr);
    }
    out
}

fn decode_simindex(bytes: &[u8], counts: [usize; 2]) -> Result<SimilarityIndex, ArtifactError> {
    let mut c = Cursor::new(bytes);
    let value = [
        decode_csr(&mut c, counts[1])?,
        decode_csr(&mut c, counts[0])?,
    ];
    let neighbor = [
        decode_csr(&mut c, counts[1])?,
        decode_csr(&mut c, counts[0])?,
    ];
    SimilarityIndex::from_parts(value, neighbor).map_err(ArtifactError::Corrupt)
}

fn encode_matching(matching: &Matching) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, matching.len() as u64);
    for (a, b) in matching.iter() {
        put_u32(&mut out, a.0);
        put_u32(&mut out, b.0);
    }
    out
}

fn decode_matching(bytes: &[u8], counts: [usize; 2]) -> Result<Matching, ArtifactError> {
    let mut c = Cursor::new(bytes);
    let n = c.get_len()?;
    if c.remaining() < n.saturating_mul(8) {
        return Err(ArtifactError::Corrupt(
            "matching extends past section".into(),
        ));
    }
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let a = c.get_u32()?;
        let b = c.get_u32()?;
        if a as usize >= counts[0] || b as usize >= counts[1] {
            return Err(ArtifactError::Corrupt(format!(
                "matched pair ({a},{b}) out of range {}x{}",
                counts[0], counts[1]
            )));
        }
        pairs.push((EntityId(a), EntityId(b)));
    }
    Ok(Matching::from_pairs(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_exec::{CancelToken, Executor};
    use minoan_kb::KbBuilder;

    fn sample_pair() -> KbPair {
        let mut a = KbBuilder::new("E1");
        let mut b = KbBuilder::new("E2");
        for (i, name) in ["Kri Kri Taverna", "Labyrinth Grill", "Phaistos Cafe"]
            .iter()
            .enumerate()
        {
            a.add_literal(&format!("a:r{i}"), "name", name);
            a.add_uri(&format!("a:r{i}"), "address", &format!("a:addr{i}"));
            a.add_literal(&format!("a:addr{i}"), "street", &format!("{i} Minos Ave"));
            b.add_literal(&format!("b:r{i}"), "title", name);
            b.add_uri(&format!("b:r{i}"), "location", &format!("b:addr{i}"));
            b.add_literal(
                &format!("b:addr{i}"),
                "street",
                &format!("{i} Minos Avenue"),
            );
        }
        KbPair::new(a.finish(), b.finish())
    }

    fn build_artifact(pair: &KbPair) -> (IndexArtifact, crate::pipeline::MatchOutput) {
        let matcher = crate::MinoanEr::with_defaults();
        let indexed = matcher
            .run_cancellable_indexed(pair, &Executor::sequential(), &CancelToken::new())
            .unwrap();
        let output = indexed.output.clone();
        (
            IndexArtifact::from_run("sample", pair, indexed, matcher.config()),
            output,
        )
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("minoan-core-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.idx", std::process::id()))
    }

    #[test]
    fn indexed_run_matches_plain_run() {
        let pair = sample_pair();
        let (artifact, output) = build_artifact(&pair);
        let plain = crate::MinoanEr::with_defaults().run_with(&pair, &Executor::sequential());
        assert_eq!(
            plain.matching.iter().collect::<Vec<_>>(),
            output.matching.iter().collect::<Vec<_>>()
        );
        assert_eq!(artifact.matching().len(), plain.matching.len());
    }

    #[test]
    fn artifact_round_trips_through_disk() {
        let pair = sample_pair();
        let (artifact, _) = build_artifact(&pair);
        let path = temp_path("roundtrip");
        let bytes = artifact.write_to(&path).unwrap();
        let loaded = IndexArtifact::read_from(&path).unwrap();
        assert_eq!(loaded.meta().file_bytes, bytes);
        assert_eq!(loaded.meta().name, "sample");
        assert_eq!(loaded.matched_uri_pairs(), artifact.matched_uri_pairs());
        assert_eq!(loaded.meta().entity_counts, artifact.meta().entity_counts);
        // The similarity index survives bit for bit.
        for side in [KbSide::First, KbSide::Second] {
            assert_eq!(
                loaded.index().value_csr(side),
                artifact.index().value_csr(side)
            );
            assert_eq!(
                loaded.index().neighbor_csr(side),
                artifact.index().neighbor_csr(side)
            );
        }
        // Blocks and tokens survive too.
        assert_eq!(
            loaded.blocks(BlockKind::Token).len(),
            artifact.blocks(BlockKind::Token).len()
        );
        assert_eq!(loaded.tokens().dict().len(), artifact.tokens().dict().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn match_query_answers_from_the_loaded_index() {
        let pair = sample_pair();
        let (artifact, _) = build_artifact(&pair);
        let path = temp_path("query");
        artifact.write_to(&path).unwrap();
        let loaded = IndexArtifact::read_from(&path).unwrap();
        let answer = loaded.match_query("a:r0", 5).unwrap();
        assert_eq!(answer.side, KbSide::First);
        assert_eq!(answer.matches, vec!["b:r0".to_string()]);
        assert!(!answer.candidates.is_empty());
        assert!(answer.candidates[0].1 > 0.0);
        // Reverse direction resolves too.
        let back = loaded.match_query("b:r1", 3).unwrap();
        assert_eq!(back.side, KbSide::Second);
        assert_eq!(back.matches, vec!["a:r1".to_string()]);
        // Unknown IRIs are a clean miss.
        assert!(loaded.match_query("nope:0", 3).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn meta_reads_without_rebuilding_structures() {
        let pair = sample_pair();
        let (artifact, _) = build_artifact(&pair);
        let path = temp_path("meta");
        artifact.write_to(&path).unwrap();
        let meta = IndexArtifact::read_meta(&path).unwrap();
        assert_eq!(meta.name, "sample");
        assert_eq!(meta.matched_pairs, artifact.meta().matched_pairs);
        let json = meta.to_json();
        assert_eq!(json.get("name").unwrap().as_str(), Some("sample"));
        assert!(json.get("build_timings_ms").is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_sections_are_structural_errors_not_panics() {
        let pair = sample_pair();
        let (artifact, _) = build_artifact(&pair);
        let path = temp_path("corrupt");
        artifact.write_to(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Flip one byte at a time across a sample of offsets; every
        // mutation must yield Err, never a panic.
        for at in (0..good.len()).step_by(97) {
            let mut bad = good.clone();
            bad[at] ^= 0xff;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                IndexArtifact::read_from(&path).is_err(),
                "flipping byte {at} went undetected"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}
