//! Vendored subset of the `rayon` crate API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of rayon the executor layer needs: [`scope`]-based structured
//! fork/join, [`join`], and [`current_num_threads`]. Each spawned task
//! runs on a dedicated `std::thread::scope` thread — no work-stealing
//! pool — which is the right trade-off here because `minoan-exec` always
//! spawns a bounded number of coarse-grained tasks (one per executor
//! thread), never fine-grained per-item tasks. Replacing this shim with
//! the real crate is a manifest change only.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Number of threads the parallel backend uses by default: the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scope for spawning structured tasks; all tasks complete before
/// [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned task finished.
///
/// Panics in spawned tasks propagate when the scope joins, matching
/// rayon's behavior of not swallowing worker panics.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb: Option<RB> = None;
    let ra = std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        rb = Some(hb.join().expect("joined task panicked"));
        ra
    });
    (ra, rb.expect("join closure did not run"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = scope(|_| 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn tasks_can_write_disjoint_slots() {
        let mut out = vec![0usize; 4];
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i * 10);
            }
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
