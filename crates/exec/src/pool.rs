//! The process-wide work-stealing thread pool behind
//! [`ExecutorKind::Pool`](crate::ExecutorKind::Pool).
//!
//! ## Why one pool
//!
//! The fleet scheduler runs many jobs concurrently, and every job's
//! pipeline fans waves out over an executor. With per-job scoped
//! threads (the [`Rayon`](crate::ExecutorKind::Rayon) backend), a
//! 4-slot fleet on a small machine oversubscribes the cores: each job
//! spawns its own workers and the kernel time-slices them against each
//! other — `BENCH_serve.json` once recorded fleet slots 4/8 *regressing*
//! to 0.88×/0.85× of sequential from exactly this. The pool fixes it
//! structurally: there is **one** process-wide [`WorkPool`] sized to
//! `available_parallelism()`, and every job submits its waves into it
//! as task batches. The submitter *helps* with its own wave (it runs
//! the same claim loop the injected helper tasks run — rayon's
//! help-first `join` discipline) and returns when the wave completes,
//! so the runnable CPU-bound threads are the fixed worker set plus at
//! most one submitter per job mid-wave — never `slots × threads`
//! scoped spawns — and an idle worker's share of the machine is
//! donated to whichever job has tasks pending *mid-run*, not only at
//! dispatch time.
//!
//! ## Stealing discipline
//!
//! Each worker owns a deque guarded by its own mutex. New tasks are
//! injected round-robin across the deques; a worker pops its **own**
//! deque from the back (LIFO — the task most recently pushed is the
//! most cache-warm) and, when empty, sweeps the other workers' deques
//! from a random starting victim, popping from the **front** (FIFO —
//! stealing the oldest task minimizes contention with the owner's LIFO
//! end and tends to grab the largest remaining unit of work). A worker
//! that finds nothing anywhere parks on a condvar; every injection
//! notifies. Steals, per-worker task counts and queued depth are
//! counted and surfaced via [`WorkPool::stats`] for the serving layer's
//! telemetry endpoints.
//!
//! ## Determinism argument
//!
//! The pool schedules *execution*, never *results*. A wave is an
//! ordered list of index ranges plus one result slot per range; tasks
//! claim ranges through an atomic cursor in ascending order, each task
//! writes only its own slot, and the submitter collects the slots in
//! range order after the wave completes. Which worker runs which range,
//! in what interleaving, on how many cores — none of it is observable
//! in the output. Combined with the workspace rule that every fan-out
//! merges partials in part order (float accumulation order preserved,
//! shard-by-`e1` ownership fixed), pool runs are bit-identical to
//! sequential runs, which `tests/executor_equivalence.rs` enforces per
//! profile.
//!
//! ## Rayon compatibility
//!
//! The public surface is deliberately shaped like rayon's scoped API:
//! [`WorkPool::scope`] mirrors `rayon::scope` and [`Scope::spawn`]
//! mirrors `rayon::Scope::spawn` (same lifetime contract: spawned
//! closures may borrow anything that outlives the scope, and `scope`
//! does not return until every spawned task finished). Swapping this
//! vendored pool for the real rayon crate is therefore a one-line
//! change at the submission site; the pool exists because the build
//! environment vendors all dependencies.
//!
//! ## Quantum sizing
//!
//! Callers bound each submitted task to a fixed work quantum
//! ([`crate::POOL_TASK_ITEMS`] items, or [`crate::POOL_TASK_BYTES`]
//! bytes for byte-range waves) so a [`CancelToken`](crate::CancelToken)
//! observed between task claims lands within predictable latency even
//! when one logical block is enormous. Smaller quanta would sharpen
//! cancel latency further but pay one cursor claim (an atomic RMW) and
//! one slot write per task; ~1024 items keeps claim overhead well under
//! 1% of realistic per-item work while holding per-task runtime in the
//! low milliseconds.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A queued unit of work: a closure whose borrows are guaranteed (by
/// [`WorkPool::scope`] blocking until completion) to outlive it.
type Job = Box<dyn FnOnce() + Send>;

/// Per-worker state: the owned deque plus the tasks-executed counter.
struct WorkerState {
    deque: Mutex<VecDeque<Job>>,
    /// Wave tasks this worker executed (counted by the executor's claim
    /// loops via [`note_tasks`], not per queued job — one queued job
    /// runs many quantum-bounded tasks).
    tasks: AtomicU64,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    workers: Vec<WorkerState>,
    /// Round-robin injection cursor.
    next_victim: AtomicUsize,
    /// Successful steals (a worker took a job from another's deque).
    steals: AtomicU64,
    /// Jobs injected over the pool's lifetime.
    injected: AtomicU64,
    /// Parking lot for idle workers; every injection notifies.
    sleep: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    /// Total jobs currently sitting in deques (point-in-time).
    fn queued(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.deque.lock().expect("pool deque lock").len())
            .sum()
    }
}

/// Point-in-time pool telemetry, surfaced through
/// `JobQueue::stats()` into the line-JSON `status` response and
/// `GET /v1/metrics`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs queued in worker deques right now.
    pub queued: usize,
    /// Cumulative successful steals.
    pub steals: u64,
    /// Cumulative jobs injected.
    pub injected: u64,
    /// Cumulative wave tasks executed, per worker (index = worker id).
    pub worker_tasks: Vec<u64>,
}

impl PoolStats {
    /// Sum of per-worker task counts.
    pub fn tasks_total(&self) -> u64 {
        self.worker_tasks.iter().sum()
    }
}

/// A work-stealing thread pool. One process-wide instance lives behind
/// [`global`]; constructing private pools is possible for tests.
pub struct WorkPool {
    shared: Arc<Shared>,
}

thread_local! {
    /// The worker index of the current thread, when it is a pool worker.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Whether the current thread is a pool worker thread. Scopes opened on
/// a worker run their spawns inline (see [`Scope::spawn`]) — a worker
/// blocked waiting on other workers could deadlock a saturated pool.
pub fn on_worker() -> bool {
    WORKER_INDEX.with(|w| w.get().is_some())
}

/// Credits `count` executed wave tasks to the current worker's counter
/// (no-op on non-worker threads, e.g. single-part inline waves).
pub fn note_tasks(pool: &WorkPool, count: u64) {
    if count == 0 {
        return;
    }
    if let Some(idx) = WORKER_INDEX.with(|w| w.get()) {
        if let Some(worker) = pool.shared.workers.get(idx) {
            worker.tasks.fetch_add(count, Ordering::Relaxed);
        }
    }
}

impl WorkPool {
    /// A pool with `workers` worker threads (clamped to at least 1).
    /// Worker threads are detached; they live as long as the process.
    pub fn new(workers: usize) -> WorkPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            workers: (0..workers)
                .map(|_| WorkerState {
                    deque: Mutex::new(VecDeque::new()),
                    tasks: AtomicU64::new(0),
                })
                .collect(),
            next_victim: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        });
        for idx in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("minoan-pool-{idx}"))
                .spawn(move || worker_loop(&shared, idx))
                .expect("spawn pool worker");
        }
        WorkPool { shared }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.workers.len()
    }

    /// Point-in-time telemetry snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers(),
            queued: self.shared.queued(),
            steals: self.shared.steals.load(Ordering::Relaxed),
            injected: self.shared.injected.load(Ordering::Relaxed),
            worker_tasks: self
                .shared
                .workers
                .iter()
                .map(|w| w.tasks.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Runs `op` with a [`Scope`] whose spawns execute on the pool, and
    /// blocks until **every** spawned task has finished (even if `op`
    /// or a task panics — the first panic is then propagated). Mirrors
    /// `rayon::scope`: spawned closures may borrow anything alive
    /// across this call.
    pub fn scope<'scope, OP, R>(&'scope self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            latch: Arc::new(Latch::default()),
            inline: on_worker(),
            _marker: PhantomData,
        };
        let result = {
            // Waits on drop, so an unwinding `op` still joins every
            // task it spawned before its borrows die.
            let _guard = WaitGuard(&scope.latch);
            op(&scope)
        };
        if let Some(payload) = scope.latch.take_panic() {
            resume_unwind(payload);
        }
        result
    }

    /// Queues a job round-robin across the worker deques and wakes the
    /// pool.
    fn inject(&self, job: Job) {
        let shared = &self.shared;
        let idx = shared.next_victim.fetch_add(1, Ordering::Relaxed) % shared.workers.len();
        shared.workers[idx]
            .deque
            .lock()
            .expect("pool deque lock")
            .push_back(job);
        shared.injected.fetch_add(1, Ordering::Relaxed);
        // Lock/unlock of the sleep mutex orders this notify after any
        // in-progress "queues empty → park" check, so the push above
        // can never be missed by a worker about to sleep.
        drop(shared.sleep.lock().expect("pool sleep lock"));
        shared.wake.notify_all();
    }
}

/// A scope handle mirroring `rayon::Scope`: tasks spawned through it
/// may borrow anything that outlives `'scope`, and the owning
/// [`WorkPool::scope`] call joins them all before returning.
pub struct Scope<'scope> {
    pool: &'scope WorkPool,
    latch: Arc<Latch>,
    /// Opened on a pool worker: spawns run inline to avoid parking a
    /// worker on work only other workers could do.
    inline: bool,
    /// Invariant in `'scope`, as in rayon.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `f` onto the pool. Panics inside `f` are captured and
    /// re-thrown by the enclosing [`WorkPool::scope`] call after all
    /// tasks joined.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.inline {
            // Nested wave on a worker thread: run it here and now.
            // Panics propagate straight into the enclosing scope call.
            f();
            return;
        }
        self.latch.add();
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            latch.complete(result.err());
        });
        // SAFETY: the job only outlives `'scope` in the type system.
        // `WorkPool::scope` blocks (even on unwind, via `WaitGuard`)
        // until `latch` counts this job complete, so every borrow in
        // the closure is live for as long as the job can run.
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool.inject(job);
    }
}

/// Counts outstanding scope tasks and holds the first panic payload.
#[derive(Default)]
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

#[derive(Default)]
struct LatchState {
    outstanding: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn add(&self) {
        self.state.lock().expect("latch lock").outstanding += 1;
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut state = self.state.lock().expect("latch lock");
        if state.panic.is_none() {
            state.panic = panic;
        }
        state.outstanding -= 1;
        if state.outstanding == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut state = self.state.lock().expect("latch lock");
        while state.outstanding > 0 {
            state = self.done.wait(state).expect("latch lock");
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.state.lock().expect("latch lock").panic.take()
    }
}

/// Joins a scope's tasks on drop, so the join happens on panic paths
/// too.
struct WaitGuard<'a>(&'a Latch);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// The worker thread body: pop own deque (LIFO), steal (FIFO) from a
/// random victim, park when the whole pool is drained.
fn worker_loop(shared: &Shared, idx: usize) {
    WORKER_INDEX.with(|w| w.set(Some(idx)));
    // Scheduling-only RNG (victim selection); results never depend on
    // it. Splitmix-style seeding keeps per-worker streams distinct.
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((idx as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407));
    loop {
        if let Some(job) = take_job(shared, idx, &mut rng) {
            job();
            continue;
        }
        let guard = shared.sleep.lock().expect("pool sleep lock");
        // Re-check under the sleep lock: an injection between the
        // failed sweep above and this park would otherwise be lost
        // (inject() serializes its notify through this same mutex).
        if shared.queued() == 0 {
            drop(shared.wake.wait(guard).expect("pool sleep lock"));
        }
    }
}

/// Pops the worker's own deque from the back, else sweeps the others
/// from a random start, popping fronts.
fn take_job(shared: &Shared, idx: usize, rng: &mut u64) -> Option<Job> {
    if let Some(job) = shared.workers[idx]
        .deque
        .lock()
        .expect("pool deque lock")
        .pop_back()
    {
        return Some(job);
    }
    let n = shared.workers.len();
    let start = (xorshift(rng) as usize) % n;
    for offset in 0..n {
        let victim = (start + offset) % n;
        if victim == idx {
            continue;
        }
        if let Some(job) = shared.workers[victim]
            .deque
            .lock()
            .expect("pool deque lock")
            .pop_front()
        {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
    }
    None
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Worker count of the process-wide pool: `available_parallelism()`,
/// clamped to [`MAX_THREADS`](crate::MAX_THREADS). Usable without
/// starting the pool (e.g. for thread-budget defaults).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(crate::MAX_THREADS)
}

static GLOBAL: OnceLock<WorkPool> = OnceLock::new();

/// The process-wide pool, started on first use with
/// [`default_workers`] workers.
pub fn global() -> &'static WorkPool {
    GLOBAL.get_or_init(|| {
        let workers = default_workers();
        minoan_obs::debug!(
            "exec.pool",
            "work-stealing pool started with {workers} workers"
        );
        WorkPool::new(workers)
    })
}

/// Telemetry of the process-wide pool, or `None` if no pool-backed wave
/// ran yet (reading stats must not start worker threads).
pub fn try_stats() -> Option<PoolStats> {
    GLOBAL.get().map(WorkPool::stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_joins_all_spawns_and_allows_borrows() {
        let pool = WorkPool::new(3);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..50 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        // Scopes are reusable back to back on the same pool.
        pool.scope(|s| s.spawn(|| ()));
        let stats = pool.stats();
        assert_eq!(stats.workers, 3);
        assert!(stats.injected >= 51);
        assert_eq!(stats.queued, 0, "drained after scope returns");
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = WorkPool::new(2);
        assert_eq!(pool.scope(|_| 7), 7);
    }

    #[test]
    fn task_panics_propagate_after_join() {
        let pool = WorkPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task boom"));
                for _ in 0..10 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"task boom"));
        // The panic was held until every sibling joined.
        assert_eq!(finished.load(Ordering::Relaxed), 10);
        // The pool survives a panicked scope.
        pool.scope(|s| {
            s.spawn(|| {
                finished.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(finished.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn nested_scopes_on_workers_run_inline() {
        let pool = WorkPool::new(2);
        let ran = AtomicUsize::new(0);
        pool.scope(|outer| {
            outer.spawn(|| {
                assert!(on_worker());
                // A wave submitted from a worker must not park the
                // worker waiting on its siblings.
                pool.scope(|inner| {
                    for _ in 0..4 {
                        inner.spawn(|| {
                            ran.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        });
        assert_eq!(ran.load(Ordering::Relaxed), 4);
        assert!(!on_worker(), "the submitter never becomes a worker");
    }

    #[test]
    fn work_is_stolen_when_one_deque_holds_everything() {
        // Round-robin injection spreads jobs, but a pool where only one
        // worker ever received work still drains via stealing: inject
        // many slow-ish jobs from a scope on a single-victim basis by
        // saturating a 4-worker pool and checking the steal counter
        // moved (probabilistic in scheduling, deterministic in result).
        let pool = WorkPool::new(4);
        let done = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..200 {
                s.spawn(|| {
                    // Enough work that workers outpace injection and
                    // go hunting in each other's deques.
                    std::hint::black_box((0..500).sum::<u64>());
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn stats_count_noted_tasks_per_worker() {
        let pool = WorkPool::new(2);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| note_tasks(&pool, 3));
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.tasks_total(), 24);
        assert_eq!(stats.worker_tasks.len(), 2);
    }
}
