//! Regenerates the paper's Table I: dataset statistics.
//!
//! Usage: `repro_table1 [scale] [seed]`. The `paper` values quote the
//! real KB pairs; the `ours` values describe the synthetic analogues,
//! whose *relative* signature (size skew, schema scatter, token
//! verbosity) is the reproduced quantity — absolute counts are scaled
//! down by design (DESIGN.md §3).

use minoan_bench::{DEFAULT_SEED, PAPER_TABLE1};
use minoan_datagen::DatasetKind;
use minoan_eval::{scientific, Table};
use minoan_kb::{KbSide, KbStats};
use minoan_text::{TokenizedPair, Tokenizer};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(1.0);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(DEFAULT_SEED);
    println!("Table I — dataset statistics (seed {seed}, scale {scale})\n");

    let mut table = Table::new(&[
        "statistic",
        "Restaurant",
        "Rexa-DBLP",
        "BBCmusic-DBpedia",
        "YAGO-IMDb",
    ]);
    let mut rows: Vec<(String, Vec<String>)> = vec![
        ("E1 entities".into(), vec![]),
        ("E2 entities".into(), vec![]),
        ("E1 triples".into(), vec![]),
        ("E2 triples".into(), vec![]),
        ("E1 av. tokens".into(), vec![]),
        ("E2 av. tokens".into(), vec![]),
        ("E1/E2 attributes".into(), vec![]),
        ("E1/E2 relations".into(), vec![]),
        ("E1/E2 types".into(), vec![]),
        ("E1/E2 vocab.".into(), vec![]),
        ("Matches".into(), vec![]),
    ];
    let datasets: Vec<_> = DatasetKind::ALL
        .iter()
        .map(|&k| k.generate_scaled(seed, scale))
        .collect();
    for (i, d) in datasets.iter().enumerate() {
        let s1 = KbStats::compute(&d.pair.first);
        let s2 = KbStats::compute(&d.pair.second);
        let tokens = TokenizedPair::build(&d.pair, &Tokenizer::default());
        let p = &PAPER_TABLE1[i];
        let fmt2 = |ours: String, paper: String| format!("{ours} (paper {paper})");
        rows[0].1.push(fmt2(
            s1.entities.to_string(),
            scientific(p.entities.0 as u128),
        ));
        rows[1].1.push(fmt2(
            s2.entities.to_string(),
            scientific(p.entities.1 as u128),
        ));
        rows[2].1.push(fmt2(
            s1.triples.to_string(),
            scientific(p.triples.0 as u128),
        ));
        rows[3].1.push(fmt2(
            s2.triples.to_string(),
            scientific(p.triples.1 as u128),
        ));
        rows[4].1.push(fmt2(
            format!("{:.1}", tokens.avg_tokens(KbSide::First)),
            format!("{:.1}", p.avg_tokens.0),
        ));
        rows[5].1.push(fmt2(
            format!("{:.1}", tokens.avg_tokens(KbSide::Second)),
            format!("{:.1}", p.avg_tokens.1),
        ));
        rows[6].1.push(fmt2(
            format!("{}/{}", s1.attributes, s2.attributes),
            format!("{}/{}", p.attributes.0, p.attributes.1),
        ));
        rows[7].1.push(fmt2(
            format!("{}/{}", s1.relations, s2.relations),
            format!("{}/{}", p.relations.0, p.relations.1),
        ));
        rows[8].1.push(fmt2(
            format!("{}/{}", s1.types, s2.types),
            format!("{}/{}", p.types.0, p.types.1),
        ));
        rows[9].1.push(fmt2(
            format!("{}/{}", s1.vocabularies, s2.vocabularies),
            format!("{}/{}", p.vocabularies.0, p.vocabularies.1),
        ));
        rows[10].1.push(fmt2(
            d.truth.len().to_string(),
            scientific(p.matches as u128),
        ));
    }
    for (label, cells) in rows {
        let mut row = vec![label];
        row.extend(cells);
        table.row(&row);
    }
    println!("{}", table.render());

    // Signature checks: the relative shapes Table I is quoted for.
    let mut ok = true;
    let mut check = |name: &str, pass: bool| {
        println!("  [{}] {name}", if pass { "PASS" } else { "FAIL" });
        ok &= pass;
    };
    check(
        "Restaurant & Rexa-DBLP: E2 much larger than E1",
        datasets[0].pair.second.entity_count() > 3 * datasets[0].pair.first.entity_count()
            && datasets[1].pair.second.entity_count() > 3 * datasets[1].pair.first.entity_count(),
    );
    check(
        "BBCmusic-DBpedia: DBpedia side has a far larger schema",
        datasets[2].pair.second.attr_count() > 10 * datasets[2].pair.first.attr_count(),
    );
    let t2 = TokenizedPair::build(&datasets[2].pair, &Tokenizer::default());
    check(
        "BBCmusic-DBpedia: DBpedia descriptions are far more verbose",
        t2.avg_tokens(KbSide::Second) > 2.0 * t2.avg_tokens(KbSide::First),
    );
    let t3 = TokenizedPair::build(&datasets[3].pair, &Tokenizer::default());
    check(
        "YAGO-IMDb: terse descriptions on both sides",
        t3.avg_tokens(KbSide::First) < 25.0 && t3.avg_tokens(KbSide::Second) < 25.0,
    );
    std::process::exit(if ok { 0 } else { 1 });
}
