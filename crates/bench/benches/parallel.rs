//! Sequential vs parallel executor benchmarks: `SimilarityIndex::build`
//! and the end-to-end pipeline at datagen scale 1.0, emitting the
//! `BENCH_pipeline.json` trajectory file at the workspace root.
//!
//! The parallel backend is swept across thread counts (1/2/4/8, clamped
//! to the available cores) and every result records the thread count it
//! ran with — an earlier revision benched "rayon" only at whatever the
//! machine defaulted to, which on a 1-core CI box silently recorded a
//! 1-thread "parallel" run. Peak RSS is recorded where the platform
//! exposes it. `MINOAN_BENCH_SMOKE=1` shrinks scale and iterations for
//! CI, which then validates the emitted JSON via
//! [`minoan_bench::benchutil::check_bench_json`].

use criterion::{BenchmarkId, Criterion};
use minoan_bench::benchutil;
use minoan_core::{build_blocks, top_neighbors, MinoanConfig, MinoanEr, SimilarityIndex};
use minoan_datagen::DatasetKind;
use minoan_exec::{Executor, ExecutorKind};
use minoan_kb::Json;

const SEED: u64 = 20180416;
const DATASET: DatasetKind = DatasetKind::RexaDblp;

fn config_for(exec: &Executor) -> MinoanConfig {
    MinoanConfig {
        executor: exec.kind(),
        threads: exec.threads(),
        ..MinoanConfig::default()
    }
}

fn bench_parallel(c: &mut Criterion, scale: f64, samples: usize) {
    let d = DATASET.generate_scaled(SEED, scale);
    let config = MinoanConfig::default();
    let art = build_blocks(&d.pair, &config);
    let tn1 = top_neighbors(
        &d.pair.first,
        config.top_relations_n,
        config.max_top_neighbors,
    );
    let tn2 = top_neighbors(
        &d.pair.second,
        config.top_relations_n,
        config.max_top_neighbors,
    );

    let mut group = c.benchmark_group("parallel");
    group.sample_size(samples);
    for (name, exec) in benchutil::sweep_executors() {
        group.bench_with_input(
            BenchmarkId::new("simindex_build", &name),
            &exec,
            |b, exec| {
                b.iter(|| {
                    SimilarityIndex::build_with(&art.token_blocks, &art.tokens, [&tn1, &tn2], exec)
                })
            },
        );
    }
    for (name, exec) in benchutil::sweep_executors() {
        let matcher = MinoanEr::new(config_for(&exec)).expect("valid config");
        group.bench_with_input(BenchmarkId::new("end_to_end", &name), &d.pair, |b, pair| {
            b.iter(|| matcher.run(pair))
        });
    }
    group.finish();
}

fn main() {
    let scale = benchutil::smoke_scaled(1.0, 0.05);
    let samples = benchutil::smoke_scaled(10, 2);
    let mut criterion = Criterion::default().configure_from_args();
    bench_parallel(&mut criterion, scale, samples);
    let results = criterion.take_results();

    let sweep = benchutil::thread_sweep();
    // Per-bench speedup of each swept thread count over sequential.
    let speedups = |bench: &str| -> Json {
        benchutil::speedup_map(
            &results,
            &sweep,
            &format!("parallel/{bench}/sequential"),
            |t| format!("parallel/{bench}/rayon-{t}"),
        )
    };
    let mut fields =
        benchutil::trajectory_fields("pipeline_parallel", DATASET.name(), scale, &sweep);
    fields.push((
        "executor_kinds".into(),
        Json::arr([
            Json::str(ExecutorKind::Sequential.name()),
            Json::str(ExecutorKind::Rayon.name()),
        ]),
    ));
    fields.push((
        "speedup".into(),
        Json::obj([
            ("simindex_build", speedups("simindex_build")),
            ("end_to_end", speedups("end_to_end")),
        ]),
    ));
    fields.push(("results".into(), benchutil::results_json(&results)));
    benchutil::emit_checked(
        env!("CARGO_MANIFEST_DIR"),
        "BENCH_pipeline.json",
        &Json::obj(fields),
    );
}
