//! Incremental-patch benchmark: patch latency vs from-scratch rebuild
//! across a delta-size sweep, emitting `BENCH_delta.json` at the
//! workspace root. For each delta size N the bench generates a seeded
//! mutation stream (`minoan_datagen::mutate_stream` — the same
//! generator the equivalence tests replay), applies it incrementally
//! through [`IndexArtifact::apply_delta`], and times a full pipeline
//! rebuild of the mutated pair next to it. The emitted speedup curve
//! is the O(delta)-vs-O(corpus) claim in numbers: small patches must
//! come in far under a rebuild, and the gap must close as the delta
//! approaches corpus scale. `MINOAN_BENCH_SMOKE=1` shrinks scale and
//! the sweep for CI, which validates the emitted JSON via
//! [`minoan_bench::benchutil::check_bench_json`].

use std::time::Instant;

use minoan_bench::benchutil;
use minoan_core::{IndexArtifact, MinoanEr};
use minoan_datagen::{mutate_stream, DatasetKind};
use minoan_exec::CancelToken;
use minoan_kb::Json;

const SEED: u64 = 20180416;
const MUTATE_SEED: u64 = 7;

fn ms(elapsed: std::time::Duration) -> f64 {
    elapsed.as_secs_f64() * 1e3
}

fn main() {
    let scale = benchutil::smoke_scaled(0.4, 0.06);
    let sweep_sizes: &[usize] = if benchutil::smoke() {
        &[1, 10, 50]
    } else {
        &[1, 10, 50, 250, 1000]
    };
    let iters = benchutil::smoke_scaled(3, 1);

    let kind = DatasetKind::Restaurant;
    let d = kind.generate_scaled(SEED, scale);
    let matcher = MinoanEr::with_defaults();
    let exec = matcher.config().executor();

    // Base build, persisted once: every sweep point starts from these
    // bytes, exactly like a PATCH job re-reading the stored artifact.
    let t = Instant::now();
    let indexed = matcher
        .run_cancellable_indexed(&d.pair, &exec, &CancelToken::new())
        .expect("nothing cancels this run");
    let build_ms = ms(t.elapsed());
    let artifact = IndexArtifact::from_run(kind.name(), &d.pair, indexed, matcher.config());
    let dir = std::env::temp_dir().join(format!("minoan-bench-delta-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let path = dir.join("delta-bench.idx");
    artifact.write_to(&path).expect("persist artifact");

    let mut points = Vec::new();
    for &n_ops in sweep_sizes {
        let ops = mutate_stream(kind, SEED, scale, MUTATE_SEED, n_ops);

        // Incremental: load the stored bytes, splice the delta in.
        let mut patch_samples = Vec::with_capacity(iters);
        let mut affected_rows = 0usize;
        let mut patched_pairs = 0usize;
        for _ in 0..iters {
            let mut fresh = IndexArtifact::read_from(&path).expect("load artifact");
            let t = Instant::now();
            let report = fresh
                .apply_delta(&ops, &exec, &CancelToken::new())
                .expect("nothing cancels this run");
            patch_samples.push(ms(t.elapsed()));
            affected_rows = report.affected_rows;
            patched_pairs = report.matched_pairs;
            std::hint::black_box(&fresh);
        }

        // Reference: the same mutated corpus through the whole
        // pipeline — what a patch saves.
        let mut rebuild_samples = Vec::with_capacity(iters);
        let mut rebuilt_pairs = 0usize;
        for _ in 0..iters {
            let mut mutated = d.pair.clone();
            minoan_kb::delta::apply_to_pair(&mut mutated, &ops);
            let t = Instant::now();
            let out = matcher
                .run_cancellable_indexed(&mutated, &exec, &CancelToken::new())
                .expect("nothing cancels this run");
            rebuild_samples.push(ms(t.elapsed()));
            rebuilt_pairs = out.output.matching.len();
        }
        assert_eq!(
            patched_pairs, rebuilt_pairs,
            "delta-size {n_ops}: the patched index diverged from the rebuild"
        );

        let patch_ms = patch_samples.iter().copied().fold(f64::MAX, f64::min);
        let rebuild_ms = rebuild_samples.iter().copied().fold(f64::MAX, f64::min);
        points.push(Json::obj([
            ("delta_ops", Json::num(n_ops as f64)),
            ("affected_rows", Json::num(affected_rows as f64)),
            ("patch_ms", Json::Num(patch_ms)),
            ("rebuild_ms", Json::Num(rebuild_ms)),
            ("speedup", Json::Num(rebuild_ms / patch_ms.max(1e-9))),
        ]));
    }

    let _ = std::fs::remove_dir_all(&dir);

    let sweep = benchutil::thread_sweep();
    let mut fields = benchutil::trajectory_fields("index_delta", kind.name(), scale, &sweep);
    fields.push(("build_ms".into(), Json::Num(build_ms)));
    fields.push(("iterations".into(), Json::num(iters as f64)));
    fields.push(("delta_sweep".into(), Json::Arr(points)));
    benchutil::emit_checked(
        env!("CARGO_MANIFEST_DIR"),
        "BENCH_delta.json",
        &Json::obj(fields),
    );
}
