//! # minoan-baselines — comparison methods
//!
//! The baselines MinoanER is evaluated against in Table III:
//!
//! - [`unique_mapping_clustering`]: the clustering step shared by
//!   pairwise baselines;
//! - [`run_bsl`]: the paper's oracle-tuned, value-only baseline (480
//!   configurations over n-grams × weighting × measure × threshold);
//! - [`run_sigma`]: a SiGMa-like greedy iterative matcher with neighbor
//!   propagation;
//! - [`run_paris`]: a PARIS-like probabilistic matcher driven by exact
//!   shared values and relation functionality.
//!
//! LINDA and RiMOM results are quoted from their publications in the
//! paper itself; the `repro_table3` harness prints those reference rows
//! verbatim (see DESIGN.md §3).

#![warn(missing_docs)]

pub mod bsl;
pub mod paris;
pub mod sigma;
pub mod umc;

pub use bsl::{run_bsl, threshold_grid, BslConfig, BslResult};
pub use paris::{run_paris, ParisConfig};
pub use sigma::{run_sigma, SigmaConfig};
pub use umc::{umc_trace, unique_mapping_clustering, ScoredPair};
