//! # minoan-kb — knowledge-base substrate for MinoanER
//!
//! This crate provides everything below the ER algorithms:
//!
//! - a compact, interned data model for *entity descriptions*
//!   ([`KnowledgeBase`], [`KbBuilder`], [`Value`]): URI-identified sets of
//!   attribute–value pairs whose values are literals or references to
//!   other descriptions, forming an entity graph;
//! - parsers for an N-Triples subset and a TSV exchange format, each in
//!   a whole-string flavor ([`parse::parse_ntriples`],
//!   [`parse::parse_tsv`]) and a **streaming chunked** flavor
//!   ([`parse::parse_ntriples_reader`], [`parse::parse_tsv_reader`]) that
//!   parses line-aligned chunks in parallel through per-thread
//!   [`KbChunk`] partials and never holds the whole input in memory;
//! - structural statistics mirroring the paper's Table I ([`KbStats`]);
//! - pair/ground-truth containers ([`KbPair`], [`Matching`]);
//! - fast hashing ([`FxHashMap`], [`FxHashSet`]), string interning
//!   ([`Interner`]), compressed sparse rows ([`Csr`]) and minimal JSON
//!   ([`Json`]) used across the workspace;
//! - a versioned, checksummed binary container for persisted index
//!   artifacts ([`artifact`]);
//! - the entity-level mutation vocabulary for incremental updates
//!   ([`DeltaOp`], [`delta::apply_to_pair`]), shared by the delta
//!   engine, the wire protocols, and the equivalence tests.

#![warn(missing_docs)]

pub mod artifact;
pub mod csr;
pub mod delta;
pub mod hash;
pub mod ids;
pub mod interner;
pub mod json;
pub mod model;
pub mod pair;
pub mod parse;
pub mod stats;

pub use artifact::{ArtifactError, ArtifactFile, ArtifactWriter};
pub use csr::Csr;
pub use delta::DeltaOp;
pub use hash::{FxHashMap, FxHashSet};
pub use ids::{AttrId, BlockId, EntityId, KbSide, PairEntity, TokenId};
pub use interner::Interner;
pub use json::Json;
pub use model::{AttrProfile, Edge, KbBuilder, KbChunk, KnowledgeBase, Object, Statement, Value};
pub use pair::{GroundTruth, KbPair, Matching};
pub use stats::{is_type_attr, local_name, namespace_prefix, KbStats};
