//! Persistent index artifacts: a persisted-then-loaded index must be
//! **bit-identical** to the fresh in-memory run that produced it (all
//! four benchmark profiles), match queries served over HTTP must report
//! literally zero ingest work, and corrupt artifacts — truncated, bad
//! magic, wrong format version, flipped checksum, injected read faults —
//! must be rejected with structured errors, never a panic.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use minoaner::core::{IndexArtifact, MinoanEr};
use minoaner::datagen::DatasetKind;
use minoaner::exec::faults;
use minoaner::kb::{ArtifactError, Json};
use minoaner::serve::{fnv1a, run_http, CancelToken, HttpOptions, ServeOptions};

/// A scratch directory that cleans up after itself.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir =
            std::env::temp_dir().join(format!("minoan-artifact-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Builds the index artifact for one synthetic profile through the
/// pipeline's indexed run — the same code path the serving layer uses.
fn build_artifact(kind: DatasetKind, scale: f64) -> IndexArtifact {
    let d = kind.generate_scaled(20180416, scale);
    let matcher = MinoanEr::with_defaults();
    let exec = matcher.config().executor();
    let indexed = matcher
        .run_cancellable_indexed(&d.pair, &exec, &CancelToken::new())
        .expect("nothing cancels this run");
    IndexArtifact::from_run(kind.name(), &d.pair, indexed, matcher.config())
}

/// Canonical fingerprint of a match result set: FNV-1a over the
/// newline-joined URI pairs, the same scheme job reports use.
fn pairs_fingerprint(pairs: &[(String, String)]) -> u64 {
    let mut canon = String::new();
    for (a, b) in pairs {
        canon.push_str(a);
        canon.push('\t');
        canon.push_str(b);
        canon.push('\n');
    }
    fnv1a(canon.as_bytes())
}

#[test]
fn persisted_artifacts_are_bit_identical_to_fresh_runs_on_all_profiles() {
    let scratch = ScratchDir::new("roundtrip");
    for kind in DatasetKind::ALL {
        let fresh = build_artifact(kind, 0.08);
        let fresh_pairs = fresh.matched_uri_pairs();
        assert!(!fresh_pairs.is_empty(), "{kind:?} resolved zero matches");

        let path = scratch.path(&format!("{}.idx", kind.name()));
        fresh.write_to(&path).expect("persist artifact");
        let loaded = IndexArtifact::read_from(&path).expect("load artifact");

        // The match set is fingerprint-identical after the disk trip.
        let loaded_pairs = loaded.matched_uri_pairs();
        assert_eq!(
            pairs_fingerprint(&fresh_pairs),
            pairs_fingerprint(&loaded_pairs),
            "{kind:?}: persisted-then-loaded matches diverge from the fresh run"
        );

        // So is every per-entity query answer, matches and ranked
        // candidates alike, on both sides of the pair.
        for (first, second) in fresh_pairs.iter().take(16) {
            for uri in [first, second] {
                let a = fresh.match_query(uri, 8).expect("fresh answer");
                let b = loaded.match_query(uri, 8).expect("loaded answer");
                assert_eq!(a.side, b.side, "{kind:?}/{uri}");
                assert_eq!(a.matches, b.matches, "{kind:?}/{uri}");
                assert_eq!(a.candidates, b.candidates, "{kind:?}/{uri}");
            }
        }

        // Metadata survives, and reading it alone agrees with the
        // loaded artifact.
        let meta = IndexArtifact::read_meta(&path).expect("read meta");
        assert_eq!(meta.matched_pairs as usize, loaded_pairs.len());
        assert_eq!(meta.entity_counts, loaded.meta().entity_counts);
        assert_eq!(meta.file_bytes, std::fs::metadata(&path).unwrap().len());
    }
}

#[test]
fn corrupted_artifacts_are_rejected_with_structured_errors_not_panics() {
    let scratch = ScratchDir::new("corrupt");
    let path = scratch.path("victim.idx");
    build_artifact(DatasetKind::Restaurant, 0.05)
        .write_to(&path)
        .expect("persist artifact");
    let pristine = std::fs::read(&path).expect("read back");

    let reload = |bytes: &[u8]| {
        let mangled = scratch.path("mangled.idx");
        std::fs::write(&mangled, bytes).expect("write mangled copy");
        IndexArtifact::read_from(&mangled)
    };

    // Truncated: the section table survives but a payload is cut off.
    let err = reload(&pristine[..pristine.len() / 2]).unwrap_err();
    assert!(
        matches!(err, ArtifactError::Truncated { .. }),
        "truncation reported as {err:?}"
    );

    // Bad magic: the first byte is not ours.
    let mut bad_magic = pristine.clone();
    bad_magic[0] ^= 0xFF;
    let err = reload(&bad_magic).unwrap_err();
    assert!(
        matches!(err, ArtifactError::BadMagic),
        "bad magic reported as {err:?}"
    );

    // Wrong format version: a future writer's file.
    let mut future = pristine.clone();
    future[8] = 0xFE;
    let err = reload(&future).unwrap_err();
    assert!(
        matches!(err, ArtifactError::UnsupportedVersion { found } if found != 1),
        "version mismatch reported as {err:?}"
    );

    // Flipped payload byte: the owning section's checksum must catch it.
    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x01;
    let err = reload(&flipped).unwrap_err();
    assert!(
        matches!(err, ArtifactError::ChecksumMismatch { .. }),
        "checksum flip reported as {err:?}"
    );

    // Every error Displays without panicking, and the pristine file
    // still loads after all that.
    assert!(!err.to_string().is_empty());
    IndexArtifact::read_from(&path).expect("pristine artifact still loads");
}

#[test]
fn injected_read_faults_surface_as_clean_io_errors() {
    /// Disarms the process-global fault plan even if the test panics.
    struct DisarmGuard;
    impl Drop for DisarmGuard {
        fn drop(&mut self) {
            faults::disarm();
        }
    }
    let _disarm = DisarmGuard;

    let scratch = ScratchDir::new("faults");
    let path = scratch.path("faulted.idx");
    build_artifact(DatasetKind::Restaurant, 0.05)
        .write_to(&path)
        .expect("persist artifact");

    // Arm the artifact-read fault site: first hit fails, then clean.
    faults::arm(&format!(
        "seed:42,{}:1:io:1",
        minoaner::kb::artifact::READ_FAULT_SITE
    ))
    .expect("valid fault plan");
    let err = IndexArtifact::read_from(&path).unwrap_err();
    assert!(
        matches!(err, ArtifactError::Io(_)),
        "injected fault reported as {err:?}"
    );
    assert!(err.to_string().contains("injected fault"), "{err}");

    // The fault budget is spent; the same path now loads fine.
    IndexArtifact::read_from(&path).expect("post-fault read recovers");
}

// ---------------------------------------------------------------------
// HTTP serving: zero-ingest telemetry through /v1/indexes
// ---------------------------------------------------------------------

/// Minimal HTTP client: one fresh connection per request.
struct Http {
    addr: SocketAddr,
}

impl Http {
    fn request(&self, method: &str, path: &str, body: Option<&Json>) -> (u16, String) {
        let payload = body.map(Json::compact).unwrap_or_default();
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
        if !payload.is_empty() {
            head += &format!("Content-Length: {}\r\n", payload.len());
        }
        head += "\r\n";
        let mut stream = TcpStream::connect(self.addr).expect("connect");
        stream
            .write_all(format!("{head}{payload}").as_bytes())
            .expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        (status, body.to_string())
    }

    fn json(&self, method: &str, path: &str, body: Option<&Json>, expect: u16) -> Json {
        let (status, body) = self.request(method, path, body);
        assert_eq!(status, expect, "{method} {path}: {body}");
        Json::parse(&body).expect("JSON body")
    }
}

#[test]
fn http_match_queries_answer_with_zero_ingest_telemetry() {
    let scratch = ScratchDir::new("http");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = ServeOptions {
        slots: Some(2),
        threads: Some(2),
        index_dir: Some(scratch.path("indexes")),
        ..ServeOptions::default()
    };
    std::thread::scope(|scope| {
        let server = scope.spawn(move || run_http(listener, &opts, HttpOptions::default(), |_| {}));
        let http = Http { addr };

        // Build-and-persist through the job queue; ?wait=true holds the
        // 201 until the artifact is on disk.
        let job = Json::obj([
            ("name", Json::str("rt")),
            ("dataset", Json::str("restaurant")),
            ("seed", Json::num(20180416.0)),
            ("scale", Json::Num(0.1)),
        ]);
        let built = http.json("POST", "/v1/indexes?wait=true", Some(&job), 201);
        assert_eq!(built.get("index").and_then(Json::as_str), Some("rt"));

        // The listing sees the artifact on disk.
        let listing = http.json("GET", "/v1/indexes", None, 200);
        let Some(Json::Arr(indexes)) = listing.get("indexes") else {
            panic!("no indexes array in {}", listing.compact());
        };
        assert!(indexes
            .iter()
            .any(|e| e.get("id").and_then(Json::as_str) == Some("rt")));

        // The hot path: a match query with a percent-encoded IRI. The
        // stage-timing telemetry must show literally zero ingest,
        // blocking and similarity work — the artifact answers alone.
        let answer = http.json("GET", "/v1/indexes/rt/match?entity=r1%3Ae0&k=5", None, 200);
        assert_eq!(answer.get("entity").and_then(Json::as_str), Some("r1:e0"));
        assert_eq!(answer.get("side").and_then(Json::as_str), Some("first"));
        let timings = answer.get("stage_timings_ms").expect("stage timings");
        for stage in ["ingest", "blocking", "similarities"] {
            assert_eq!(
                timings.get(stage).and_then(Json::as_f64),
                Some(0.0),
                "{stage} must be zero in {}",
                answer.compact()
            );
        }
        assert!(timings.get("query").and_then(Json::as_f64).is_some());
        let Some(Json::Arr(matches)) = answer.get("matches") else {
            panic!("no matches array in {}", answer.compact());
        };
        assert!(!matches.is_empty(), "r1:e0 must have a match at scale 0.1");

        // Unknown entities and unknown indexes map to structured 404s.
        let (status, body) = http.request("GET", "/v1/indexes/rt/match?entity=nope%3A0", None);
        assert_eq!(status, 404, "{body}");
        let err = Json::parse(&body).unwrap();
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("not_found"),
            "{body}"
        );

        // DELETE removes the artifact and the loaded copy.
        http.json("DELETE", "/v1/indexes/rt", None, 200);
        let (status, _) = http.request("GET", "/v1/indexes/rt", None);
        assert_eq!(status, 404);

        http.json("POST", "/v1/shutdown", None, 200);
        server.join().unwrap().unwrap();
    });
}
