//! The loaded-index registry behind `/v1/indexes`.
//!
//! A registry owns a directory of persisted index artifacts (one
//! `<id>.idx` file per index, written by `POST /v1/indexes` builds) and
//! an in-memory cache of loaded [`IndexArtifact`]s so the hot match
//! path (`GET /v1/indexes/{id}/match`) does not re-read and re-validate
//! the file on every query. The cache is:
//!
//! - **load-once**: concurrent queries for a cold index block on a
//!   condvar while one loader reads the file; nobody loads twice;
//! - **bounded**: a byte budget (artifact file size as the resident
//!   proxy) evicts least-recently-used entries; in-flight queries keep
//!   their `Arc` alive, so eviction never invalidates an answer being
//!   computed;
//! - **shared-nothing with the job queue**: builds go through the
//!   supervised [`JobQueue`](crate::scheduler::JobQueue) and only the
//!   finished file ever becomes visible here (the artifact writer
//!   publishes with an atomic rename).
//!
//! Index ids are job names restricted to a filesystem-safe alphabet —
//! `[A-Za-z0-9._-]`, not starting with a dot — so a wire id can never
//! escape the registry directory.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

use minoan_core::{ArtifactMeta, IndexArtifact};
use minoan_kb::artifact::ArtifactError;
use minoan_kb::Json;

/// Default byte budget for loaded artifacts (512 MiB).
pub const DEFAULT_CACHE_BYTES: u64 = 512 << 20;

/// File extension of persisted index artifacts inside a registry
/// directory.
pub const ARTIFACT_EXT: &str = "idx";

/// Longest accepted index id, in bytes.
pub const MAX_ID_LEN: usize = 120;

/// Why a registry operation failed.
#[derive(Debug)]
pub enum RegistryError {
    /// The id is not in the filesystem-safe alphabet.
    InvalidId,
    /// No artifact with this id exists in the registry directory.
    NotFound,
    /// The artifact exists but could not be read or validated.
    Artifact(ArtifactError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::InvalidId => write!(
                f,
                "invalid index id (use [A-Za-z0-9._-], not starting with '.', \
                 at most {MAX_ID_LEN} bytes)"
            ),
            RegistryError::NotFound => write!(f, "no such index"),
            RegistryError::Artifact(e) => write!(f, "cannot load index: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl RegistryError {
    /// Whether retrying the operation could succeed (I/O trouble is
    /// transient; a missing, corrupt or mis-addressed artifact is not).
    pub fn retryable(&self) -> bool {
        matches!(self, RegistryError::Artifact(ArtifactError::Io(_)))
    }
}

/// One row of [`IndexRegistry::list`].
#[derive(Debug, Clone)]
pub struct IndexEntry {
    /// The index id (artifact file stem).
    pub id: String,
    /// On-disk artifact size in bytes.
    pub file_bytes: u64,
    /// Whether the artifact is currently loaded in the cache.
    pub loaded: bool,
}

enum Slot {
    /// One thread is reading the file; waiters block on the condvar.
    Loading,
    Loaded {
        artifact: Arc<IndexArtifact>,
        bytes: u64,
        last_used: u64,
    },
}

#[derive(Default)]
struct Inner {
    slots: HashMap<String, Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// A directory of persisted indexes plus the LRU cache of loaded ones.
pub struct IndexRegistry {
    dir: PathBuf,
    budget: u64,
    inner: Mutex<Inner>,
    loaded_cond: Condvar,
}

/// Whether `id` is acceptable as an index id (and thus artifact file
/// stem): non-empty, at most [`MAX_ID_LEN`] bytes of `[A-Za-z0-9._-]`,
/// not starting with a dot.
pub fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_ID_LEN
        && !id.starts_with('.')
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

impl IndexRegistry {
    /// Opens (creating if needed) the registry directory. `budget` is
    /// the loaded-artifact byte budget; `None` uses
    /// [`DEFAULT_CACHE_BYTES`].
    pub fn open(dir: impl Into<PathBuf>, budget: Option<u64>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            budget: budget.unwrap_or(DEFAULT_CACHE_BYTES),
            inner: Mutex::new(Inner::default()),
            loaded_cond: Condvar::new(),
        })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path for `id` (whether or not it exists yet).
    /// Errors on invalid ids so no wire string ever forms a path.
    pub fn path_for(&self, id: &str) -> Result<PathBuf, RegistryError> {
        if !valid_id(id) {
            return Err(RegistryError::InvalidId);
        }
        Ok(self.dir.join(format!("{id}.{ARTIFACT_EXT}")))
    }

    /// Lists persisted indexes, sorted by id.
    pub fn list(&self) -> std::io::Result<Vec<IndexEntry>> {
        let mut entries = Vec::new();
        let inner = self.inner.lock().unwrap();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name.strip_suffix(&format!(".{ARTIFACT_EXT}")) else {
                continue;
            };
            if !valid_id(id) {
                continue;
            }
            let file_bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            let loaded = matches!(inner.slots.get(id), Some(Slot::Loaded { .. }));
            entries.push(IndexEntry {
                id: id.to_string(),
                file_bytes,
                loaded,
            });
        }
        drop(inner);
        entries.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(entries)
    }

    /// Reads the metadata of one index — from the cache when loaded,
    /// from disk (full checksum validation, no structure rebuild)
    /// otherwise.
    pub fn meta(&self, id: &str) -> Result<ArtifactMeta, RegistryError> {
        let path = self.path_for(id)?;
        {
            let inner = self.inner.lock().unwrap();
            if let Some(Slot::Loaded { artifact, .. }) = inner.slots.get(id) {
                return Ok(artifact.meta().clone());
            }
        }
        if !path.exists() {
            return Err(RegistryError::NotFound);
        }
        IndexArtifact::read_meta(&path).map_err(RegistryError::Artifact)
    }

    /// Returns the loaded artifact for `id`, reading it from disk at
    /// most once however many queries arrive concurrently.
    pub fn load(&self, id: &str) -> Result<Arc<IndexArtifact>, RegistryError> {
        let path = self.path_for(id)?;
        let mut inner = self.inner.lock().unwrap();
        loop {
            match inner.slots.get(id) {
                Some(Slot::Loaded { .. }) => {
                    inner.tick += 1;
                    inner.hits += 1;
                    let tick = inner.tick;
                    let Some(Slot::Loaded {
                        artifact,
                        last_used,
                        ..
                    }) = inner.slots.get_mut(id)
                    else {
                        unreachable!("slot vanished under the lock");
                    };
                    *last_used = tick;
                    return Ok(Arc::clone(artifact));
                }
                Some(Slot::Loading) => {
                    inner = self.loaded_cond.wait(inner).unwrap();
                }
                None => break,
            }
        }
        // Cold: this thread is the loader.
        inner.misses += 1;
        inner.slots.insert(id.to_string(), Slot::Loading);
        drop(inner);
        let load_span = minoan_obs::trace::span(minoan_obs::Level::Debug, "registry.load", || {
            format!("index={id:?} path={}", path.display())
        });
        let result = IndexArtifact::read_from(&path);
        drop(load_span);
        let mut inner = self.inner.lock().unwrap();
        match result {
            Ok(artifact) => {
                let artifact = Arc::new(artifact);
                // Cache only while the file still exists: a DELETE that
                // raced the load must not resurrect the index.
                if path.exists() {
                    inner.tick += 1;
                    let slot = Slot::Loaded {
                        artifact: Arc::clone(&artifact),
                        bytes: artifact.meta().file_bytes,
                        last_used: inner.tick,
                    };
                    inner.slots.insert(id.to_string(), slot);
                    self.evict_over_budget(&mut inner);
                } else {
                    inner.slots.remove(id);
                }
                self.loaded_cond.notify_all();
                Ok(artifact)
            }
            Err(e) => {
                inner.slots.remove(id);
                self.loaded_cond.notify_all();
                if matches!(&e, ArtifactError::Io(io) if io.kind() == std::io::ErrorKind::NotFound)
                {
                    Err(RegistryError::NotFound)
                } else {
                    Err(RegistryError::Artifact(e))
                }
            }
        }
    }

    /// Drops the cached copy of `id` (if any) without touching the
    /// file: the invalidation hook for `PATCH /v1/indexes/{id}` — the
    /// patch job rewrote the artifact on disk, so the next query must
    /// re-read it. Queries holding an `Arc` to the pre-patch artifact
    /// finish undisturbed against that consistent snapshot. A slot
    /// mid-load is left alone: the loader's file handle already sees
    /// either the fully-old or fully-new artifact (the writer publishes
    /// with an atomic rename), never a torn one.
    pub fn invalidate(&self, id: &str) {
        let mut inner = self.inner.lock().unwrap();
        if matches!(inner.slots.get(id), Some(Slot::Loaded { .. })) {
            inner.slots.remove(id);
            inner.invalidations += 1;
        }
    }

    /// Cache counters as plain numbers, in the order (loaded entries,
    /// resident bytes, budget bytes, hits, misses, evictions,
    /// invalidations) — the Prometheus exposition's view of
    /// [`IndexRegistry::stats_json`].
    pub fn stats_counts(&self) -> (usize, u64, u64, u64, u64, u64, u64) {
        let inner = self.inner.lock().unwrap();
        let loaded = inner
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Loaded { .. }))
            .count();
        let bytes: u64 = inner
            .slots
            .values()
            .map(|s| match s {
                Slot::Loaded { bytes, .. } => *bytes,
                Slot::Loading => 0,
            })
            .sum();
        (
            loaded,
            bytes,
            self.budget,
            inner.hits,
            inner.misses,
            inner.evictions,
            inner.invalidations,
        )
    }

    /// Deletes the persisted artifact and evicts any cached copy.
    /// Queries holding an `Arc` to the old artifact finish undisturbed.
    pub fn delete(&self, id: &str) -> Result<(), RegistryError> {
        let path = self.path_for(id)?;
        let mut inner = self.inner.lock().unwrap();
        inner.slots.remove(id);
        drop(inner);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(RegistryError::NotFound),
            Err(e) => Err(RegistryError::Artifact(ArtifactError::Io(e))),
        }
    }

    /// Cache telemetry: loaded entries, resident bytes, hit/miss/evict
    /// counters — surfaced in the daemon's status snapshot.
    pub fn stats_json(&self) -> Json {
        let (loaded, bytes, budget, hits, misses, evictions, invalidations) = self.stats_counts();
        Json::obj([
            ("loaded", Json::num(loaded as f64)),
            ("cached_bytes", Json::num(bytes as f64)),
            ("budget_bytes", Json::num(budget as f64)),
            ("hits", Json::num(hits as f64)),
            ("misses", Json::num(misses as f64)),
            ("evictions", Json::num(evictions as f64)),
            ("invalidations", Json::num(invalidations as f64)),
        ])
    }

    fn evict_over_budget(&self, inner: &mut Inner) {
        loop {
            let total: u64 = inner
                .slots
                .values()
                .map(|s| match s {
                    Slot::Loaded { bytes, .. } => *bytes,
                    Slot::Loading => 0,
                })
                .sum();
            if total <= self.budget {
                return;
            }
            let victim = inner
                .slots
                .iter()
                .filter_map(|(id, s)| match s {
                    Slot::Loaded { last_used, .. } => Some((*last_used, id.clone())),
                    Slot::Loading => None,
                })
                .min();
            let Some((_, id)) = victim else { return };
            inner.slots.remove(&id);
            inner.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_core::MinoanEr;
    use minoan_exec::{CancelToken, Executor};
    use minoan_kb::{KbBuilder, KbPair};

    fn sample_artifact(name: &str) -> IndexArtifact {
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:1", "name", "Minos of Knossos");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:1", "label", "Knossos Minos");
        let pair = KbPair::new(a.finish(), b.finish());
        let matcher = MinoanEr::with_defaults();
        let indexed = matcher
            .run_cancellable_indexed(&pair, &Executor::sequential(), &CancelToken::new())
            .unwrap();
        IndexArtifact::from_run(name, &pair, indexed, matcher.config())
    }

    fn temp_registry(tag: &str, budget: Option<u64>) -> IndexRegistry {
        let dir =
            std::env::temp_dir().join(format!("minoan-registry-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        IndexRegistry::open(dir, budget).unwrap()
    }

    #[test]
    fn id_validation_rejects_path_escapes() {
        assert!(valid_id("rexa-small"));
        assert!(valid_id("a.b_c-9"));
        assert!(!valid_id(""));
        assert!(!valid_id(".hidden"));
        assert!(!valid_id("../../etc/passwd"));
        assert!(!valid_id("a/b"));
        assert!(!valid_id("a b"));
        assert!(!valid_id(&"x".repeat(MAX_ID_LEN + 1)));
    }

    #[test]
    fn build_list_load_query_delete_round_trip() {
        let reg = temp_registry("round", None);
        let art = sample_artifact("demo");
        art.write_to(&reg.path_for("demo").unwrap()).unwrap();

        let listed = reg.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].id, "demo");
        assert!(!listed[0].loaded);
        assert!(listed[0].file_bytes > 0);

        let meta = reg.meta("demo").unwrap();
        assert_eq!(meta.name, "demo");

        let loaded = reg.load("demo").unwrap();
        assert_eq!(loaded.match_query("a:1", 3).unwrap().matches, vec!["b:1"]);
        assert!(reg.list().unwrap()[0].loaded);

        reg.delete("demo").unwrap();
        assert!(reg.list().unwrap().is_empty());
        assert!(matches!(reg.load("demo"), Err(RegistryError::NotFound)));
        assert!(matches!(reg.delete("demo"), Err(RegistryError::NotFound)));
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn concurrent_queries_load_once() {
        let reg = Arc::new(temp_registry("once", None));
        sample_artifact("hot")
            .write_to(&reg.path_for("hot").unwrap())
            .unwrap();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || reg.load("hot").unwrap().meta().name.clone())
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), "hot");
        }
        let stats = reg.stats_json();
        assert_eq!(stats.get("misses").unwrap().as_f64(), Some(1.0));
        assert_eq!(stats.get("loaded").unwrap().as_f64(), Some(1.0));
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn zero_budget_evicts_after_every_load() {
        let reg = temp_registry("evict", Some(0));
        sample_artifact("tiny")
            .write_to(&reg.path_for("tiny").unwrap())
            .unwrap();
        let a = reg.load("tiny").unwrap();
        // The caller's Arc survives eviction.
        assert_eq!(a.meta().name, "tiny");
        let stats = reg.stats_json();
        assert_eq!(stats.get("loaded").unwrap().as_f64(), Some(0.0));
        assert_eq!(stats.get("evictions").unwrap().as_f64(), Some(1.0));
        // The next load is a fresh miss, not a hit.
        reg.load("tiny").unwrap();
        assert_eq!(reg.stats_json().get("misses").unwrap().as_f64(), Some(2.0));
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn stampede_across_ids_loads_each_once() {
        let reg = Arc::new(temp_registry("stampede", None));
        for id in ["alpha", "beta"] {
            sample_artifact(id)
                .write_to(&reg.path_for(id).unwrap())
                .unwrap();
        }
        let threads: Vec<_> = (0..16)
            .map(|i| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let id = if i % 2 == 0 { "alpha" } else { "beta" };
                    reg.load(id).unwrap().meta().name.clone()
                })
            })
            .collect();
        for (i, t) in threads.into_iter().enumerate() {
            let expect = if i % 2 == 0 { "alpha" } else { "beta" };
            assert_eq!(t.join().unwrap(), expect);
        }
        // Every thread either loaded or waited on the condvar and then
        // took the hit path — exactly one disk read per id.
        let (loaded, _, _, hits, misses, evictions, _) = reg.stats_counts();
        assert_eq!(misses, 2);
        assert_eq!(hits, 14);
        assert_eq!(loaded, 2);
        assert_eq!(evictions, 0);
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn eviction_pressure_never_disturbs_in_flight_queries() {
        // Budget 0: every load caches, then the LRU immediately evicts
        // it — maximum churn. Queries run on Arcs the readers hold, so
        // eviction under them must never invalidate an answer.
        let reg = Arc::new(temp_registry("pressure", Some(0)));
        for id in ["p0", "p1", "p2"] {
            sample_artifact(id)
                .write_to(&reg.path_for(id).unwrap())
                .unwrap();
        }
        let threads: Vec<_> = (0..6)
            .map(|i| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let id = ["p0", "p1", "p2"][i % 3];
                    for _ in 0..25 {
                        let artifact = reg.load(id).unwrap();
                        assert_eq!(artifact.meta().name, id);
                        let answer = artifact.match_query("a:1", 3).expect("entity exists");
                        assert_eq!(answer.matches, vec!["b:1"]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let (loaded, _, _, _, misses, evictions, _) = reg.stats_counts();
        assert_eq!(loaded, 0, "a zero budget keeps nothing resident");
        assert_eq!(
            evictions, misses,
            "every cached load must have been evicted"
        );
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn invalidation_racing_readers_always_serves_a_full_artifact() {
        use minoan_kb::{DeltaOp, KbSide, Object};
        use std::sync::atomic::{AtomicBool, Ordering};

        let reg = Arc::new(temp_registry("inval", None));
        let path = reg.path_for("live").unwrap();
        sample_artifact("live").write_to(&path).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut versions = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        // A read racing the writer's rename + invalidate
                        // must always get a whole artifact: either fully
                        // old or fully new, never a checksum error.
                        let artifact = reg.load("live").unwrap();
                        versions.push(artifact.meta().content_version);
                        assert!(artifact.match_query("a:1", 3).is_some());
                    }
                    versions
                })
            })
            .collect();

        // The writer: patch the on-disk artifact (atomic temp+rename)
        // and drop the cached copy, exactly as a completed PATCH job
        // does through the daemon's completion hook.
        let mut disk = IndexArtifact::read_from(&path).unwrap();
        for round in 0..5u32 {
            let ops = vec![DeltaOp::Upsert {
                side: KbSide::First,
                uri: "a:1".into(),
                statements: vec![(
                    "name".into(),
                    Object::Literal(format!("Minos of Knossos {round}")),
                )],
            }];
            disk.apply_delta(&ops, &Executor::sequential(), &CancelToken::new())
                .unwrap();
            disk.persist_patch(&path).unwrap();
            reg.invalidate("live");
        }
        stop.store(true, Ordering::Relaxed);
        let mut seen = Vec::new();
        for t in readers {
            seen.extend(t.join().unwrap());
        }
        // Readers only ever observed committed versions, monotonically
        // available — nothing outside [1, 6].
        assert!(
            seen.iter().all(|v| (1..=6).contains(v)),
            "versions: {seen:?}"
        );

        // A load-in-flight during the last invalidation may have cached
        // the previous version; one more invalidation with no readers
        // racing must surface the final bytes.
        reg.invalidate("live");
        assert_eq!(reg.load("live").unwrap().meta().content_version, 6);
        let (.., invalidations) = reg.stats_counts();
        // Only drops of *cached* copies count; a round that raced a
        // still-loading slot is a no-op, so the exact total is timing
        // dependent — but the initial cached load must have been hit.
        assert!(invalidations >= 1, "invalidations: {invalidations}");
        let _ = std::fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn corrupt_artifacts_surface_structured_errors() {
        let reg = temp_registry("corrupt", None);
        std::fs::write(reg.path_for("bad").unwrap(), b"NOTMINOAN-GARBAGE").unwrap();
        let err = reg.load("bad").unwrap_err();
        assert!(matches!(&err, RegistryError::Artifact(_)), "{err}");
        assert!(!err.retryable());
        assert!(matches!(reg.load("../oops"), Err(RegistryError::InvalidId)));
        let _ = std::fs::remove_dir_all(reg.dir());
    }
}
