//! Cooperative cancellation for executor-driven work.
//!
//! A [`CancelToken`] is a shared flag observed at **checkpoints between
//! executor waves**: a fan-out that has already been dispatched always
//! runs to completion (waves are never torn down mid-flight — partial
//! results merged from an interrupted wave could not be bit-identical
//! to a sequential run), and the stage driving the waves calls
//! [`CancelToken::checkpoint`] before dispatching the next one. A
//! cancelled computation therefore unwinds with [`Cancelled`] within a
//! bounded number of checkpoints — at most one wave of work after the
//! flag is set — leaving no partial state behind.
//!
//! The token lives in `minoan-exec`, the bottom of the crate stack, so
//! ingest (`minoan-kb`), the pipeline (`minoan-core`) and the serving
//! layer (`minoan-serve`) can all thread the same token through their
//! stages without dependency cycles.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The error a cancelled computation unwinds with. Carries no payload:
/// cancellation is a request honored cooperatively, not a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Cooperative cancellation flag, cheap to clone and share across
/// threads. Setting it never interrupts running code; work observes it
/// at its next [`CancelToken::checkpoint`] and unwinds cleanly.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// The cooperative checkpoint: returns `Err(Cancelled)` once
    /// [`CancelToken::cancel`] has been called. Stages call this between
    /// executor waves so a cancelled job stops dispatching new work and
    /// unwinds within a bounded number of checkpoints.
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Runs `f`, converting an unwind carrying [`Cancelled`] into
/// `Err(Cancelled)`. Pool-backed waves abort a cancelled fan-out by
/// panicking with `Cancelled` (they cannot return a partial result
/// vector); stage drivers wrap their wave sequence in `catch_cancel` so
/// a mid-wave cancel surfaces as the same `Err(Cancelled)` a
/// between-wave [`CancelToken::checkpoint`] produces. Any other panic
/// payload is resumed untouched.
pub fn catch_cancel<R>(f: impl FnOnce() -> Result<R, Cancelled>) -> Result<R, Cancelled> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            if payload.downcast_ref::<Cancelled>().is_some() {
                Err(Cancelled)
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes_checkpoints() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.checkpoint(), Ok(()));
    }

    #[test]
    fn cancelled_token_fails_checkpoints_forever() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
        assert_eq!(t.checkpoint(), Err(Cancelled));
        assert_eq!(t.checkpoint(), Err(Cancelled));
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let seen_by_worker = t.clone();
        t.cancel();
        assert!(seen_by_worker.is_cancelled());
    }

    #[test]
    fn cancel_is_visible_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::spawn(move || u.cancel()).join().unwrap();
        assert_eq!(t.checkpoint(), Err(Cancelled));
    }

    #[test]
    fn cancelled_formats_as_an_error() {
        assert_eq!(Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn catch_cancel_passes_values_and_plain_errors_through() {
        assert_eq!(catch_cancel(|| Ok(41)), Ok(41));
        assert_eq!(catch_cancel::<u8>(|| Err(Cancelled)), Err(Cancelled));
    }

    #[test]
    fn catch_cancel_downcasts_cancelled_unwinds() {
        let result = catch_cancel::<u8>(|| std::panic::panic_any(Cancelled));
        assert_eq!(result, Err(Cancelled));
    }

    #[test]
    fn catch_cancel_resumes_foreign_panics() {
        let unwound = std::panic::catch_unwind(|| catch_cancel::<u8>(|| panic!("boom")));
        let payload = unwound.expect_err("foreign panic must resume");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    }
}
