//! Strongly-typed, compact identifiers.
//!
//! Every object the pipeline touches millions of times — entities,
//! attributes, tokens, blocks — is referred to by a `u32` newtype. This
//! keeps hot structures small (see the type-size guidance in the perf
//! book) and prevents mixing id spaces at compile time.

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Builds an id from a `usize` index, panicking on overflow.
            ///
            /// KBs in this workspace are bounded well below `u32::MAX`
            /// entities; overflow here is a programming error.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize, "id space overflow");
                Self(index as u32)
            }

            /// Returns the id as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

define_id! {
    /// Identifies an entity description within one [`crate::KnowledgeBase`].
    EntityId
}
define_id! {
    /// Identifies an attribute (predicate) within one [`crate::KnowledgeBase`].
    AttrId
}
define_id! {
    /// Identifies a token within a [`minoan_text::TokenDictionary`]-style
    /// dictionary shared by a KB pair.
    TokenId
}
define_id! {
    /// Identifies a block within a block collection.
    BlockId
}

/// Which side of a KB pair an entity belongs to.
///
/// MinoanER is a *clean-clean* ER method: it links two individually
/// duplicate-free KBs, conventionally called `E1` and `E2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KbSide {
    /// The first KB (`E1` in the paper). Recall is reported w.r.t. its
    /// ground-truth entities.
    First,
    /// The second KB (`E2` in the paper).
    Second,
}

impl KbSide {
    /// The opposite side.
    #[inline]
    pub fn other(self) -> Self {
        match self {
            KbSide::First => KbSide::Second,
            KbSide::Second => KbSide::First,
        }
    }

    /// Index (0 for `First`, 1 for `Second`) for array-of-two storage.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            KbSide::First => 0,
            KbSide::Second => 1,
        }
    }
}

/// An entity qualified by the side of the pair it lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairEntity {
    /// Which KB the entity belongs to.
    pub side: KbSide,
    /// The entity within that KB.
    pub entity: EntityId,
}

impl PairEntity {
    /// Convenience constructor.
    #[inline]
    pub fn new(side: KbSide, entity: EntityId) -> Self {
        Self { side, entity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let e = EntityId::from_index(42);
        assert_eq!(e.index(), 42);
        assert_eq!(e, EntityId(42));
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(AttrId(1) < AttrId(2));
        assert!(TokenId(0) < TokenId(u32::MAX));
    }

    #[test]
    fn side_other_is_involutive() {
        assert_eq!(KbSide::First.other(), KbSide::Second);
        assert_eq!(KbSide::Second.other().other(), KbSide::Second);
        assert_eq!(KbSide::First.index(), 0);
        assert_eq!(KbSide::Second.index(), 1);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(EntityId(7).to_string(), "EntityId#7");
    }

    #[test]
    fn pair_entity_orders_side_first() {
        let a = PairEntity::new(KbSide::First, EntityId(9));
        let b = PairEntity::new(KbSide::Second, EntityId(0));
        assert!(a < b);
    }
}
