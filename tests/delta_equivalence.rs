//! Delta equivalence: the incremental re-resolution engine must
//! reproduce a from-scratch rebuild **bit for bit**. For every
//! benchmark profile we build an index, stream N seeded upserts and
//! deletes through [`apply_delta`](minoaner::core::IndexArtifact::apply_delta),
//! and compare the patched artifact against a full pipeline run over
//! the same mutated pair — identical matchings, identical CSR bytes,
//! identical stage counters — on every executor backend. This is the
//! contract that makes `PATCH /v1/indexes/{id}` an O(delta) shortcut
//! rather than a second, divergent resolution algorithm.

use minoaner::core::{IndexArtifact, MinoanConfig, MinoanEr};
use minoaner::datagen::{mutate_stream, DatasetKind};
use minoaner::exec::{CancelToken, Executor, ExecutorKind};
use minoaner::kb::{DeltaOp, KbPair, KbSide};

const SEED: u64 = 20180416;
const SCALE: f64 = 0.1;
const MUTATE_SEED: u64 = 7;
/// Ops per profile — the acceptance gate asks for at least 50.
const N_OPS: usize = 60;

const BACKENDS: [(ExecutorKind, usize); 3] = [
    (ExecutorKind::Sequential, 1),
    (ExecutorKind::Rayon, 3),
    (ExecutorKind::Pool, 3),
];

fn executor_for(kind: ExecutorKind, threads: usize) -> Executor {
    MinoanConfig {
        executor: kind,
        threads,
        ..MinoanConfig::default()
    }
    .executor()
}

fn build_artifact(pair: &KbPair, exec: &Executor) -> IndexArtifact {
    let matcher = MinoanEr::with_defaults();
    let indexed = matcher
        .run_cancellable_indexed(pair, exec, &CancelToken::new())
        .expect("no cancellation source");
    IndexArtifact::from_run("equivalence", pair, indexed, matcher.config())
}

/// The reference result: mutate a clone of the pair with the same ops
/// and run the whole pipeline from scratch.
fn rebuild(pair: &KbPair, ops: &[DeltaOp], exec: &Executor) -> IndexArtifact {
    let mut mutated = pair.clone();
    minoaner::kb::delta::apply_to_pair(&mut mutated, ops);
    build_artifact(&mutated, exec)
}

fn assert_bit_identical(patched: &IndexArtifact, reference: &IndexArtifact, label: &str) {
    assert_eq!(
        patched.matched_uri_pairs(),
        reference.matched_uri_pairs(),
        "{label}: matched pairs differ"
    );
    for side in [KbSide::First, KbSide::Second] {
        assert_eq!(
            patched.index().value_csr(side),
            reference.index().value_csr(side),
            "{label}: value CSR differs on {side:?}"
        );
        assert_eq!(
            patched.index().neighbor_csr(side),
            reference.index().neighbor_csr(side),
            "{label}: neighbor CSR differs on {side:?}"
        );
    }
    assert_eq!(
        patched.meta().matched_pairs,
        reference.meta().matched_pairs,
        "{label}: matched_pairs meta differs"
    );
    assert_eq!(
        patched.meta().token_block_count,
        reference.meta().token_block_count,
        "{label}: token_block_count differs"
    );
}

#[test]
fn incremental_patches_match_a_rebuild_on_every_profile_and_backend() {
    for kind in DatasetKind::ALL {
        let pair = kind.generate_scaled(SEED, SCALE).pair;
        let ops = mutate_stream(kind, SEED, SCALE, MUTATE_SEED, N_OPS);
        assert!(ops.len() >= 50, "{kind:?}: stream too short");
        for (backend, threads) in BACKENDS {
            let exec = executor_for(backend, threads);
            let mut artifact = build_artifact(&pair, &exec);
            let report = artifact
                .apply_delta(&ops, &exec, &CancelToken::new())
                .expect("no cancellation source");
            assert_eq!(
                report.ops_applied + report.ops_noop,
                N_OPS,
                "{kind:?}/{backend:?}: op accounting is off"
            );
            assert_bit_identical(
                &artifact,
                &rebuild(&pair, &ops, &exec),
                &format!("{kind:?}/{backend:?}"),
            );
        }
    }
}

/// A patch split into many small patches must land on the same bytes
/// as one big patch — incremental application is associative over the
/// stream, not just equivalent at the end.
#[test]
fn chunked_patches_converge_to_the_same_artifact() {
    let kind = DatasetKind::Restaurant;
    let pair = kind.generate_scaled(SEED, SCALE).pair;
    let ops = mutate_stream(kind, SEED, SCALE, MUTATE_SEED, N_OPS);
    let exec = executor_for(ExecutorKind::Sequential, 1);

    let mut one_shot = build_artifact(&pair, &exec);
    one_shot
        .apply_delta(&ops, &exec, &CancelToken::new())
        .unwrap();

    let mut chunked = build_artifact(&pair, &exec);
    for chunk in ops.chunks(7) {
        chunked
            .apply_delta(chunk, &exec, &CancelToken::new())
            .unwrap();
    }
    assert_bit_identical(&chunked, &one_shot, "chunked vs one-shot");
    assert!(chunked.meta().content_version > one_shot.meta().content_version);
}

/// Persisting a patch is atomic: the artifact on disk round-trips to
/// the patched bytes, and a reader holding the *old* path never sees a
/// half-written file (temp + rename).
#[test]
fn persisted_patch_round_trips() {
    let kind = DatasetKind::Restaurant;
    let pair = kind.generate_scaled(SEED, SCALE).pair;
    let ops = mutate_stream(kind, SEED, SCALE, MUTATE_SEED, N_OPS);
    let exec = executor_for(ExecutorKind::Sequential, 1);

    let dir = std::env::temp_dir().join(format!("minoan-delta-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("equivalence.idx");

    let mut artifact = build_artifact(&pair, &exec);
    artifact.write_to(&path).unwrap();
    artifact
        .apply_delta(&ops, &exec, &CancelToken::new())
        .unwrap();
    artifact.persist_patch(&path).unwrap();

    let reloaded = IndexArtifact::read_from(&path).unwrap();
    assert_eq!(reloaded.meta().content_version, 2);
    assert_bit_identical(&reloaded, &rebuild(&pair, &ops, &exec), "reloaded");
    std::fs::remove_dir_all(&dir).ok();
}
