//! Shared event-stream plumbing: JSON views of trace-ring records and
//! assembled span trees, plus the subscriber filter both front-ends
//! apply — the SSE stream (`GET /v1/events`) and the line-JSON
//! `events` verb read the same global ring through the same cursor
//! semantics, so a fanned-out lifecycle event looks identical on
//! either protocol.

use minoan_kb::Json;
use minoan_obs::trace::{self, Record, RecordKind, SpanNode, TraceTree};
use minoan_obs::Level;

use crate::scheduler::{JobId, JobQueue};

/// Most records one `events` batch (or SSE wakeup) carries.
pub(crate) const MAX_EVENT_BATCH: usize = 256;

/// What a subscriber wants out of the ring: point events only, at or
/// above a severity, optionally for one job.
pub(crate) struct EventFilter {
    /// Only records of this job (`None` = every job, including
    /// job-less server events).
    pub job: Option<i64>,
    /// Severity threshold (`Info` admits error/warn/info).
    pub level: Level,
}

impl EventFilter {
    pub(crate) fn matches(&self, r: &Record) -> bool {
        r.kind == RecordKind::Event && r.level <= self.level && self.job.is_none_or(|j| r.job == j)
    }
}

/// One ring record as a wire object. `job` and `trace` are `null` when
/// the record has none.
pub(crate) fn record_json(r: &Record) -> Json {
    let job = if r.job < 0 {
        Json::Null
    } else {
        Json::num(r.job as f64)
    };
    let trace = if r.trace == 0 {
        Json::Null
    } else {
        Json::num(r.trace as f64)
    };
    Json::obj([
        ("seq", Json::num(r.seq as f64)),
        ("micros", Json::num(r.micros as f64)),
        ("level", Json::str(r.level.label())),
        ("name", Json::str(r.name)),
        ("job", job),
        ("trace", trace),
        ("detail", Json::str(&r.detail)),
    ])
}

/// Reads one batch of matching events at or after `from`:
/// `{"events":[…],"next":N,"dropped":N}`. `next` is the cursor for the
/// following call; `dropped` counts ring records evicted before this
/// subscriber saw them (a slow-consumer gap, not a filter miss). With
/// `wait`, blocks up to `timeout` for at least one record.
pub(crate) fn events_batch_json(
    from: u64,
    filter: &EventFilter,
    wait: bool,
    timeout: std::time::Duration,
) -> Json {
    let collector = trace::collector();
    let batch = if wait {
        collector.wait_since(from, MAX_EVENT_BATCH, timeout)
    } else {
        collector.read_since(from, MAX_EVENT_BATCH)
    };
    let events: Vec<Json> = batch
        .records
        .iter()
        .filter(|r| filter.matches(r))
        .map(record_json)
        .collect();
    Json::obj([
        ("events", Json::Arr(events)),
        ("next", Json::num(batch.next as f64)),
        ("dropped", Json::num(batch.dropped as f64)),
    ])
}

fn span_node_json(n: &SpanNode) -> Json {
    Json::obj([
        ("span", Json::num(n.span as f64)),
        ("name", Json::str(n.name)),
        ("level", Json::str(n.level.label())),
        ("start_micros", Json::num(n.start_micros as f64)),
        (
            "dur_micros",
            match n.dur_micros {
                Some(d) => Json::num(d as f64),
                None => Json::Null,
            },
        ),
        ("detail", Json::str(&n.detail)),
        ("events", Json::arr(n.events.iter().map(record_json))),
        ("children", Json::arr(n.children.iter().map(span_node_json))),
    ])
}

fn trace_tree_json(t: &TraceTree) -> Json {
    Json::obj([
        ("trace", Json::num(t.trace as f64)),
        ("spans", Json::arr(t.roots.iter().map(span_node_json))),
        ("events", Json::arr(t.events.iter().map(record_json))),
    ])
}

/// The span-tree view of one job: one assembled [`TraceTree`] per
/// attempt (fresh trace ID each), from whatever the ring still
/// retains. `None` for an unknown job id.
pub(crate) fn job_trace_json(queue: &JobQueue, id: JobId) -> Option<Json> {
    let snapshot = queue.job_snapshot(id)?;
    let traces = queue.trace_ids(id)?;
    let records = trace::collector().records_for_traces(&traces);
    let attempts: Vec<Json> = traces
        .iter()
        .map(|&t| trace_tree_json(&trace::assemble_trace(t, &records)))
        .collect();
    let mut fields = vec![
        ("id".to_string(), Json::num(id as f64)),
        ("name".to_string(), Json::str(&snapshot.name)),
        ("phase".to_string(), Json::str(snapshot.phase.label())),
        ("attempts".to_string(), Json::Arr(attempts)),
    ];
    if let Some(status) = &snapshot.status {
        fields.insert(3, ("status".to_string(), Json::str(status.label())));
    }
    Some(Json::Obj(fields))
}
