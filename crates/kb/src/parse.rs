//! Parsers for loading KBs from files.
//!
//! Two formats are supported:
//!
//! - A pragmatic **N-Triples subset**: `<s> <p> <o> .` and
//!   `<s> <p> "literal"(^^<dt>|@lang)? .` lines, `#` comments, blank lines.
//!   Datatype/language tags are dropped; the lexical form is kept.
//! - A simple **TSV** format used by the synthetic datasets:
//!   `subject \t predicate \t kind \t object` with `kind ∈ {uri, lit}`.

use crate::model::{KbBuilder, KnowledgeBase, Object};
use std::fmt;

/// A parse failure, with 1-based line number and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses N-Triples text into a KB named `name`.
pub fn parse_ntriples(name: &str, text: &str) -> Result<KnowledgeBase, ParseError> {
    let mut builder = KbBuilder::new(name);
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (subject, rest) = parse_uri_term(line, line_no)?;
        let rest = rest.trim_start();
        let (predicate, rest) = parse_uri_term(rest, line_no)?;
        let rest = rest.trim_start();
        let (object, rest) = parse_object_term(rest, line_no)?;
        let rest = rest.trim_start();
        if !rest.starts_with('.') {
            return Err(err(line_no, "expected terminating '.'"));
        }
        builder.add(&subject, &predicate, object);
    }
    Ok(builder.finish())
}

fn parse_uri_term(s: &str, line: usize) -> Result<(String, &str), ParseError> {
    let rest = s
        .strip_prefix('<')
        .ok_or_else(|| err(line, "expected '<' opening a URI term"))?;
    let end = rest
        .find('>')
        .ok_or_else(|| err(line, "unterminated URI term"))?;
    Ok((rest[..end].to_string(), &rest[end + 1..]))
}

fn parse_object_term(s: &str, line: usize) -> Result<(Object, &str), ParseError> {
    if s.starts_with('<') {
        let (uri, rest) = parse_uri_term(s, line)?;
        return Ok((Object::Uri(uri), rest));
    }
    let rest = s
        .strip_prefix('"')
        .ok_or_else(|| err(line, "expected URI or literal object"))?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    let mut end = None;
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                end = Some(i);
                break;
            }
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, other)) => {
                    // Unknown escape: keep it verbatim rather than failing;
                    // Web data is messy and the lexical form is all we need.
                    out.push('\\');
                    out.push(other);
                }
                None => return Err(err(line, "dangling escape in literal")),
            },
            c => out.push(c),
        }
    }
    let end = end.ok_or_else(|| err(line, "unterminated literal"))?;
    let mut rest = &rest[end + 1..];
    // Skip datatype (^^<...>) or language (@lang) suffixes.
    if let Some(dt) = rest.strip_prefix("^^") {
        let (_, r) = parse_uri_term(dt, line)?;
        rest = r;
    } else if let Some(lang) = rest.strip_prefix('@') {
        let stop = lang
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
            .unwrap_or(lang.len());
        rest = &lang[stop..];
    }
    Ok((Object::Literal(out), rest))
}

/// Parses the 4-column TSV format into a KB named `name`.
pub fn parse_tsv(name: &str, text: &str) -> Result<KnowledgeBase, ParseError> {
    let mut builder = KbBuilder::new(name);
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim_end_matches(['\r', '\n']);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.splitn(4, '\t');
        let subject = cols.next().filter(|s| !s.is_empty());
        let predicate = cols.next().filter(|s| !s.is_empty());
        let kind = cols.next();
        let object = cols.next();
        match (subject, predicate, kind, object) {
            (Some(s), Some(p), Some("uri"), Some(o)) => {
                builder.add(s, p, Object::Uri(o.to_string()))
            }
            (Some(s), Some(p), Some("lit"), Some(o)) => {
                builder.add(s, p, Object::Literal(o.to_string()))
            }
            (_, _, Some(k), _) if k != "uri" && k != "lit" => {
                return Err(err(line_no, format!("unknown object kind {k:?}")))
            }
            _ => return Err(err(line_no, "expected 4 tab-separated columns")),
        }
    }
    Ok(builder.finish())
}

/// Serializes a KB to the TSV format accepted by [`parse_tsv`].
///
/// Round-trips entities and statements (modulo the uri-vs-literal
/// distinction for unresolvable URIs, which were already downgraded).
pub fn to_tsv(kb: &KnowledgeBase) -> String {
    let mut out = String::new();
    for e in kb.entities() {
        let uri = kb.entity_uri(e);
        for stmt in kb.statements(e) {
            let attr = kb.attr_name(stmt.attr);
            match &stmt.value {
                crate::model::Value::Literal(l) => {
                    out.push_str(uri);
                    out.push('\t');
                    out.push_str(attr);
                    out.push_str("\tlit\t");
                    out.push_str(&l.replace(['\t', '\n'], " "));
                    out.push('\n');
                }
                crate::model::Value::Entity(n) => {
                    out.push_str(uri);
                    out.push('\t');
                    out.push_str(attr);
                    out.push_str("\turi\t");
                    out.push_str(kb.entity_uri(*n));
                    out.push('\n');
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_ntriples() {
        let text = r#"
# a comment
<http://a/r1> <http://v/name> "Kri Kri" .
<http://a/r1> <http://v/address> <http://a/addr1> .
<http://a/addr1> <http://v/street> "12 Minos Ave"@en .
<http://a/addr1> <http://v/zip> "71202"^^<http://www.w3.org/2001/XMLSchema#string> .
"#;
        let kb = parse_ntriples("t", text).unwrap();
        assert_eq!(kb.entity_count(), 2);
        assert_eq!(kb.triple_count(), 4);
        let r1 = kb.entity_by_uri("http://a/r1").unwrap();
        assert!(kb.literals(r1).any(|l| l == "Kri Kri"));
        assert_eq!(kb.out_edges(r1).count(), 1);
        let a1 = kb.entity_by_uri("http://a/addr1").unwrap();
        assert!(kb.literals(a1).any(|l| l == "71202"));
    }

    #[test]
    fn literal_escapes() {
        let text = r#"<e:s> <e:p> "a \"quoted\" va\\lue\nnext" ."#;
        let kb = parse_ntriples("t", text).unwrap();
        let e = kb.entity_by_uri("e:s").unwrap();
        assert_eq!(kb.literals(e).next().unwrap(), "a \"quoted\" va\\lue\nnext");
    }

    #[test]
    fn unknown_escape_is_kept_verbatim() {
        let text = r#"<e:s> <e:p> "weird \q escape" ."#;
        let kb = parse_ntriples("t", text).unwrap();
        let e = kb.entity_by_uri("e:s").unwrap();
        assert_eq!(kb.literals(e).next().unwrap(), "weird \\q escape");
    }

    #[test]
    fn missing_dot_is_an_error() {
        let text = "<e:s> <e:p> <e:o>";
        let e = parse_ntriples("t", text).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("terminating"));
    }

    #[test]
    fn unterminated_literal_is_an_error() {
        let text = "<e:s> <e:p> \"oops .";
        let e = parse_ntriples("t", text).unwrap_err();
        assert!(e.message.contains("unterminated literal"));
    }

    #[test]
    fn bad_subject_reports_line_number() {
        let text = "<e:a> <e:p> \"x\" .\nnot-a-uri <e:p> \"y\" .";
        let e = parse_ntriples("t", text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn tsv_round_trip() {
        let text = "s1\tname\tlit\tAlpha Beta\ns1\tknows\turi\ts2\ns2\tname\tlit\tGamma\n";
        let kb = parse_tsv("t", text).unwrap();
        assert_eq!(kb.entity_count(), 2);
        let dumped = to_tsv(&kb);
        let kb2 = parse_tsv("t2", &dumped).unwrap();
        assert_eq!(kb2.entity_count(), 2);
        assert_eq!(kb2.triple_count(), 3);
        let s1 = kb2.entity_by_uri("s1").unwrap();
        assert!(kb2.literals(s1).any(|l| l == "Alpha Beta"));
        assert_eq!(kb2.out_edges(s1).count(), 1);
    }

    #[test]
    fn tsv_rejects_unknown_kind() {
        let e = parse_tsv("t", "s\tp\tblank\tx").unwrap_err();
        assert!(e.message.contains("unknown object kind"));
    }

    #[test]
    fn tsv_rejects_short_rows() {
        let e = parse_tsv("t", "s\tp\tlit").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn tsv_object_may_contain_further_tabs_no() {
        // The object is the 4th column onward (splitn keeps the tail intact).
        let kb = parse_tsv("t", "s\tp\tlit\ta\tb").unwrap();
        let s = kb.entity_by_uri("s").unwrap();
        assert_eq!(kb.literals(s).next().unwrap(), "a\tb");
    }
}
