//! The entity-description data model.
//!
//! Following the paper, an *entity description* is a URI-identifiable set
//! of attribute–value pairs, where each value is either a literal or the
//! URI of another description. Descriptions of one KB therefore form an
//! *entity graph* whose edges are the object-valued statements.

use crate::hash::{FxHashMap, FxHashSet};
use crate::ids::{AttrId, EntityId};
use crate::interner::Interner;

/// A statement value: a literal string or a reference to another entity
/// of the same KB.
///
/// Object URIs that do not identify a described entity are kept as
/// literals (their string content still contributes matching evidence,
/// exactly as in the schema-agnostic "bag of strings" view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A literal value (or an unresolvable URI, kept as its string form).
    Literal(Box<str>),
    /// A reference to another entity described in the same KB.
    Entity(EntityId),
}

impl Value {
    /// Returns the literal string, if this is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Value::Literal(s) => Some(s),
            Value::Entity(_) => None,
        }
    }

    /// Returns the referenced entity, if this is an entity reference.
    pub fn as_entity(&self) -> Option<EntityId> {
        match self {
            Value::Literal(_) => None,
            Value::Entity(e) => Some(*e),
        }
    }
}

/// One attribute–value pair of an entity description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// The attribute (predicate).
    pub attr: AttrId,
    /// The value (literal or entity reference).
    pub value: Value,
}

/// An incoming or outgoing edge of the entity graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// The relation along which the neighbor is reached.
    pub relation: AttrId,
    /// The neighboring entity.
    pub neighbor: EntityId,
}

/// A single, immutable knowledge base: a set of entity descriptions plus
/// the interners that give entities and attributes their dense ids.
///
/// Build one with [`KbBuilder`]; entity ids are assigned in subject
/// first-seen order and are dense `0..entity_count()`.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    name: String,
    entity_uris: Interner,
    attrs: Interner,
    /// Statements per entity, indexed by `EntityId`.
    statements: Vec<Vec<Statement>>,
    /// Reverse edges per entity (who points at me, and via what).
    in_edges: Vec<Vec<Edge>>,
    triple_count: usize,
}

impl KnowledgeBase {
    /// Human-readable KB name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entity descriptions.
    pub fn entity_count(&self) -> usize {
        self.statements.len()
    }

    /// Number of statements (triples) across all descriptions.
    pub fn triple_count(&self) -> usize {
        self.triple_count
    }

    /// Number of distinct attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Iterates all entity ids.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> {
        (0..self.statements.len() as u32).map(EntityId)
    }

    /// The URI of an entity.
    pub fn entity_uri(&self, e: EntityId) -> &str {
        self.entity_uris.resolve(e.0)
    }

    /// Looks up an entity by URI.
    pub fn entity_by_uri(&self, uri: &str) -> Option<EntityId> {
        self.entity_uris.get(uri).map(EntityId)
    }

    /// The entity-URI interner (URIs in id order). Exposed so the
    /// artifact layer can persist the URI dictionary and answer
    /// URI-keyed queries against a loaded index without the full model.
    pub fn entity_uris(&self) -> &Interner {
        &self.entity_uris
    }

    /// The attribute-name interner (names in id order). Exposed so the
    /// artifact layer can persist whole KBs.
    pub fn attr_interner(&self) -> &Interner {
        &self.attrs
    }

    /// The name of an attribute.
    pub fn attr_name(&self, a: AttrId) -> &str {
        self.attrs.resolve(a.0)
    }

    /// Looks up an attribute by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs.get(name).map(AttrId)
    }

    /// Iterates all attribute ids.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attrs.len() as u32).map(AttrId)
    }

    /// The statements of an entity description.
    pub fn statements(&self, e: EntityId) -> &[Statement] {
        &self.statements[e.index()]
    }

    /// Iterates the literal values of an entity (the schema-agnostic
    /// "bag of strings" the paper matches on).
    pub fn literals(&self, e: EntityId) -> impl Iterator<Item = &str> {
        self.statements[e.index()]
            .iter()
            .filter_map(|s| s.value.as_literal())
    }

    /// Iterates the literal values of `e` restricted to attribute `a`.
    pub fn literals_of_attr(&self, e: EntityId, a: AttrId) -> impl Iterator<Item = &str> {
        self.statements[e.index()]
            .iter()
            .filter(move |s| s.attr == a)
            .filter_map(|s| s.value.as_literal())
    }

    /// Outgoing edges of the entity graph (object-valued statements).
    pub fn out_edges(&self, e: EntityId) -> impl Iterator<Item = Edge> + '_ {
        self.statements[e.index()].iter().filter_map(|s| {
            s.value.as_entity().map(|n| Edge {
                relation: s.attr,
                neighbor: n,
            })
        })
    }

    /// Incoming edges of the entity graph.
    pub fn in_edges(&self, e: EntityId) -> &[Edge] {
        &self.in_edges[e.index()]
    }

    /// Outgoing then incoming edges: the full neighborhood the paper uses
    /// ("immediate in- and out-neighbors").
    pub fn edges(&self, e: EntityId) -> impl Iterator<Item = Edge> + '_ {
        self.out_edges(e).chain(self.in_edges(e).iter().copied())
    }

    /// Attributes that act as *relations*, i.e. have at least one
    /// entity-valued statement, with their edge counts.
    pub fn relation_edge_counts(&self) -> FxHashMap<AttrId, usize> {
        let mut counts = FxHashMap::default();
        for stmts in &self.statements {
            for s in stmts {
                if s.value.as_entity().is_some() {
                    *counts.entry(s.attr).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// Number of distinct relation attributes.
    pub fn relation_count(&self) -> usize {
        self.relation_edge_counts().len()
    }

    /// Ensures `uri` names a described entity, appending an empty
    /// description if it is new, and returns its id. Appended entities
    /// extend the dense id space without disturbing existing ids —
    /// the append semantics the delta layer relies on.
    pub fn ensure_entity(&mut self, uri: &str) -> EntityId {
        let id = self.entity_uris.intern(uri);
        if id as usize == self.statements.len() {
            self.statements.push(Vec::new());
            self.in_edges.push(Vec::new());
        }
        EntityId(id)
    }

    /// Interns an attribute name, appending it if new.
    pub fn ensure_attr(&mut self, name: &str) -> AttrId {
        AttrId(self.attrs.intern(name))
    }

    /// Replaces the whole description of `e`, maintaining reverse edges
    /// and the triple count. An upsert replaces the description; a
    /// delete passes an empty vector (a *tombstone*: the id and URI
    /// survive so entity ids stay dense and stable, and edges pointing
    /// *at* the tombstone remain valid).
    ///
    /// Entity references in `stmts` must be in range (panics otherwise —
    /// the delta layer resolves URIs before calling this).
    pub fn replace_statements(&mut self, e: EntityId, stmts: Vec<Statement>) {
        let old = std::mem::take(&mut self.statements[e.index()]);
        self.triple_count -= old.len();
        for s in &old {
            if let Some(t) = s.value.as_entity() {
                let edges = &mut self.in_edges[t.index()];
                if let Some(pos) = edges
                    .iter()
                    .position(|d| d.relation == s.attr && d.neighbor == e)
                {
                    edges.remove(pos);
                }
            }
        }
        for s in &stmts {
            if let Some(t) = s.value.as_entity() {
                assert!(
                    t.index() < self.statements.len(),
                    "statement references entity {t} beyond {}",
                    self.statements.len()
                );
                self.in_edges[t.index()].push(Edge {
                    relation: s.attr,
                    neighbor: e,
                });
            }
        }
        self.triple_count += stmts.len();
        self.statements[e.index()] = stmts;
    }

    /// Reassembles a KB from its persisted parts. Reverse edges are
    /// rebuilt by a subject-order scan (the same order [`KbBuilder`]
    /// produces) and the triple count is recomputed. Rejects structural
    /// mismatches instead of panicking — this is the artifact decode
    /// path, which must survive corrupt inputs.
    pub fn from_parts(
        name: String,
        entity_uris: Interner,
        attrs: Interner,
        statements: Vec<Vec<Statement>>,
    ) -> Result<Self, String> {
        if entity_uris.len() != statements.len() {
            return Err(format!(
                "{} entity URIs but {} statement lists",
                entity_uris.len(),
                statements.len()
            ));
        }
        let n = statements.len();
        let mut in_edges: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut triple_count = 0usize;
        for (subj, stmts) in statements.iter().enumerate() {
            triple_count += stmts.len();
            for s in stmts {
                if s.attr.index() >= attrs.len() {
                    return Err(format!("statement attr {} out of range", s.attr));
                }
                if let Some(t) = s.value.as_entity() {
                    if t.index() >= n {
                        return Err(format!("statement references entity {t} beyond {n}"));
                    }
                    in_edges[t.index()].push(Edge {
                        relation: s.attr,
                        neighbor: EntityId(subj as u32),
                    });
                }
            }
        }
        Ok(Self {
            name,
            entity_uris,
            attrs,
            statements,
            in_edges,
            triple_count,
        })
    }

    /// Per-attribute aggregates needed by the importance metric:
    /// (number of entities containing the attribute, number of distinct
    /// values associated with it). Entity-valued and literal values both
    /// count as values, keyed by their canonical form.
    pub fn attr_profile(&self) -> Vec<AttrProfile> {
        let mut containing = vec![0usize; self.attrs.len()];
        let mut distinct: Vec<FxHashSet<u64>> = vec![FxHashSet::default(); self.attrs.len()];
        let mut seen_attr: FxHashSet<AttrId> = FxHashSet::default();
        for stmts in &self.statements {
            seen_attr.clear();
            for s in stmts {
                if seen_attr.insert(s.attr) {
                    containing[s.attr.index()] += 1;
                }
                let key = match &s.value {
                    Value::Literal(l) => hash_str(l),
                    // Offset entity keys so they cannot collide with literal
                    // hashes in a systematic way.
                    Value::Entity(e) => u64::from(e.0) | (1u64 << 63),
                };
                distinct[s.attr.index()].insert(key);
            }
        }
        containing
            .into_iter()
            .zip(distinct)
            .enumerate()
            .map(|(i, (entities_containing, distinct_values))| AttrProfile {
                attr: AttrId(i as u32),
                entities_containing,
                distinct_values: distinct_values.len(),
            })
            .collect()
    }
}

/// Structural equality: same name, same entities/attributes in the same
/// id order, same statements and reverse edges. Two KBs built from the
/// same triples in the same order — whether through the whole-string or
/// the chunked streaming parser — compare equal.
impl PartialEq for KnowledgeBase {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.entity_uris == other.entity_uris
            && self.attrs == other.attrs
            && self.statements == other.statements
            && self.in_edges == other.in_edges
            && self.triple_count == other.triple_count
    }
}

impl Eq for KnowledgeBase {}

/// Per-attribute aggregates used for support/discriminability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrProfile {
    /// The attribute these aggregates describe.
    pub attr: AttrId,
    /// How many entities contain the attribute at least once.
    pub entities_containing: usize,
    /// How many distinct values the attribute takes across the KB.
    pub distinct_values: usize,
}

fn hash_str(s: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = crate::hash::FxHasher::default();
    s.hash(&mut h);
    h.finish()
}

/// Object of a raw triple fed to [`KbBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Object {
    /// An object URI; resolved to an entity reference if the URI is a
    /// described subject, otherwise downgraded to a literal.
    Uri(String),
    /// A literal object.
    Literal(String),
}

/// Incrementally builds a [`KnowledgeBase`] from raw triples.
///
/// Object URIs may reference subjects that are only described later; the
/// resolution happens in [`KbBuilder::finish`].
///
/// For parallel ingest, per-thread [`KbChunk`]s collect triples with
/// chunk-local interners and are merged in input order via
/// [`KbBuilder::absorb`]; the merged builder state is identical to one
/// fed the same triples sequentially.
#[derive(Debug, Default)]
pub struct KbBuilder {
    name: String,
    entity_uris: Interner,
    attrs: Interner,
    object_uris: Interner,
    raw: Vec<Vec<(AttrId, RawValue)>>,
    /// Reusable scratch for building `\u{1}`-marked literal keys.
    key_buf: String,
}

#[derive(Debug, Clone, Copy)]
enum RawValue {
    LiteralId(u32),
    UriId(u32),
}

/// Marks a literal in the shared object interner so a literal and a URI
/// with identical text never collide.
fn literal_key<'b>(buf: &'b mut String, literal: &str) -> &'b str {
    buf.clear();
    buf.push('\u{1}');
    buf.push_str(literal);
    buf
}

impl KbBuilder {
    /// Creates an empty builder for a KB named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Ensures `uri` is a described entity (even if it never gets a
    /// statement) and returns its id.
    pub fn declare_entity(&mut self, uri: &str) -> EntityId {
        let id = self.entity_uris.intern(uri);
        if id as usize == self.raw.len() {
            self.raw.push(Vec::new());
        }
        EntityId(id)
    }

    /// Adds one triple. The subject becomes a described entity.
    pub fn add(&mut self, subject: &str, predicate: &str, object: Object) {
        let subj = self.declare_entity(subject);
        let attr = AttrId(self.attrs.intern(predicate));
        let raw = match object {
            // Literals are interned via the object interner too: repeated
            // values (countries, genres, years) are extremely common.
            Object::Literal(l) => {
                let key = literal_key(&mut self.key_buf, &l);
                RawValue::LiteralId(self.object_uris.intern(key))
            }
            Object::Uri(u) => RawValue::UriId(self.object_uris.intern(&u)),
        };
        self.raw[subj.index()].push((attr, raw));
    }

    /// Merges a chunk-local partial into this builder, remapping every
    /// chunk-local id to a global one.
    ///
    /// Absorbing the chunks of a split input **in input order** leaves the
    /// builder in exactly the state sequential [`KbBuilder::add`] calls
    /// over the unsplit input would: a string's global first occurrence
    /// lies in the earliest chunk containing it, and chunk-local ids are
    /// assigned in first-seen order, so re-interning each chunk's
    /// dictionary in id order reproduces the global first-seen order —
    /// and replaying the chunk's triples in order reproduces every
    /// entity's statement order.
    pub fn absorb(&mut self, chunk: KbChunk) {
        let subj_map: Vec<EntityId> = chunk
            .subjects
            .iter()
            .map(|(_, uri)| self.declare_entity(uri))
            .collect();
        let attr_map: Vec<AttrId> = chunk
            .attrs
            .iter()
            .map(|(_, name)| AttrId(self.attrs.intern(name)))
            .collect();
        let obj_map: Vec<u32> = chunk
            .objects
            .iter()
            .map(|(_, key)| self.object_uris.intern(key))
            .collect();
        for (subj, attr, raw) in chunk.triples {
            let raw = match raw {
                RawValue::LiteralId(id) => RawValue::LiteralId(obj_map[id as usize]),
                RawValue::UriId(id) => RawValue::UriId(obj_map[id as usize]),
            };
            self.raw[subj_map[subj as usize].index()].push((attr_map[attr as usize], raw));
        }
    }

    /// Adds a literal-valued triple without allocating an [`Object`].
    pub fn add_literal(&mut self, subject: &str, predicate: &str, literal: &str) {
        let subj = self.declare_entity(subject);
        let attr = AttrId(self.attrs.intern(predicate));
        let key = literal_key(&mut self.key_buf, literal);
        let raw = RawValue::LiteralId(self.object_uris.intern(key));
        self.raw[subj.index()].push((attr, raw));
    }

    /// Adds a URI-valued triple without allocating an [`Object`].
    pub fn add_uri(&mut self, subject: &str, predicate: &str, object_uri: &str) {
        let subj = self.declare_entity(subject);
        let attr = AttrId(self.attrs.intern(predicate));
        let raw = RawValue::UriId(self.object_uris.intern(object_uri));
        self.raw[subj.index()].push((attr, raw));
    }

    /// Resolves object URIs against the described subjects and freezes
    /// the KB.
    pub fn finish(self) -> KnowledgeBase {
        let n = self.raw.len();
        let mut statements: Vec<Vec<Statement>> = Vec::with_capacity(n);
        let mut in_edges: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut triple_count = 0usize;
        for (subj_idx, raw_stmts) in self.raw.into_iter().enumerate() {
            let mut stmts = Vec::with_capacity(raw_stmts.len());
            for (attr, raw) in raw_stmts {
                triple_count += 1;
                let value = match raw {
                    RawValue::LiteralId(id) => {
                        let s = self.object_uris.resolve(id);
                        // Strip the \u{1} literal marker.
                        Value::Literal(s[1..].into())
                    }
                    RawValue::UriId(id) => {
                        let uri = self.object_uris.resolve(id);
                        match self.entity_uris.get(uri) {
                            Some(e) => {
                                in_edges[e as usize].push(Edge {
                                    relation: attr,
                                    neighbor: EntityId(subj_idx as u32),
                                });
                                Value::Entity(EntityId(e))
                            }
                            None => Value::Literal(uri.into()),
                        }
                    }
                };
                stmts.push(Statement { attr, value });
            }
            statements.push(stmts);
        }
        KnowledgeBase {
            name: self.name,
            entity_uris: self.entity_uris,
            attrs: self.attrs,
            statements,
            in_edges,
            triple_count,
        }
    }
}

/// A chunk-local partial KB: the per-thread builder of the streaming
/// parsers. Collects triples against chunk-local interners (no shared
/// state, no locks) and is merged into the global [`KbBuilder`] with
/// [`KbBuilder::absorb`].
#[derive(Debug, Default)]
pub struct KbChunk {
    subjects: Interner,
    attrs: Interner,
    /// Shared literal/URI dictionary; literals carry a `\u{1}` marker.
    objects: Interner,
    /// Triples in occurrence order, as chunk-local ids.
    triples: Vec<(u32, u32, RawValue)>,
    key_buf: String,
}

impl KbChunk {
    /// Creates an empty chunk builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one triple (chunk-local mirror of [`KbBuilder::add`]).
    pub fn add(&mut self, subject: &str, predicate: &str, object: &Object) {
        match object {
            Object::Literal(l) => self.add_literal(subject, predicate, l),
            Object::Uri(u) => self.add_uri(subject, predicate, u),
        }
    }

    /// Adds a literal-valued triple (mirror of [`KbBuilder::add_literal`]).
    pub fn add_literal(&mut self, subject: &str, predicate: &str, literal: &str) {
        let subj = self.subjects.intern(subject);
        let attr = self.attrs.intern(predicate);
        let key = literal_key(&mut self.key_buf, literal);
        let raw = RawValue::LiteralId(self.objects.intern(key));
        self.triples.push((subj, attr, raw));
    }

    /// Adds a URI-valued triple (mirror of [`KbBuilder::add_uri`]).
    pub fn add_uri(&mut self, subject: &str, predicate: &str, object_uri: &str) {
        let subj = self.subjects.intern(subject);
        let attr = self.attrs.intern(predicate);
        let raw = RawValue::UriId(self.objects.intern(object_uri));
        self.triples.push((subj, attr, raw));
    }

    /// Number of triples collected so far.
    pub fn triple_count(&self) -> usize {
        self.triples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeBase {
        let mut b = KbBuilder::new("test");
        b.add_literal("e:r1", "name", "Taverna Kri Kri");
        b.add_literal("e:r1", "phone", "555-0199");
        b.add_uri("e:r1", "address", "e:a1");
        b.add_literal("e:a1", "street", "12 Minos Ave");
        b.add_uri("e:r2", "address", "e:a1");
        b.add_literal("e:r2", "name", "Labyrinth Grill");
        b.add_uri("e:r2", "sameCity", "e:unknown-uri");
        b.finish()
    }

    #[test]
    fn builder_assigns_dense_entity_ids_in_subject_order() {
        let kb = sample();
        assert_eq!(kb.entity_count(), 3);
        assert_eq!(kb.entity_uri(EntityId(0)), "e:r1");
        assert_eq!(kb.entity_uri(EntityId(1)), "e:a1");
        assert_eq!(kb.entity_uri(EntityId(2)), "e:r2");
        assert_eq!(kb.triple_count(), 7);
    }

    #[test]
    fn object_uri_resolution() {
        let kb = sample();
        let r1 = kb.entity_by_uri("e:r1").unwrap();
        let a1 = kb.entity_by_uri("e:a1").unwrap();
        let out: Vec<_> = kb.out_edges(r1).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].neighbor, a1);
        // Unresolvable URI stays a literal.
        let r2 = kb.entity_by_uri("e:r2").unwrap();
        assert!(kb.literals(r2).any(|l| l == "e:unknown-uri"));
    }

    #[test]
    fn in_edges_are_reverse_of_out_edges() {
        let kb = sample();
        let a1 = kb.entity_by_uri("e:a1").unwrap();
        let incoming: Vec<_> = kb.in_edges(a1).iter().map(|e| e.neighbor).collect();
        assert_eq!(incoming.len(), 2);
        assert!(incoming.contains(&kb.entity_by_uri("e:r1").unwrap()));
        assert!(incoming.contains(&kb.entity_by_uri("e:r2").unwrap()));
    }

    #[test]
    fn edges_chains_out_then_in() {
        let kb = sample();
        let a1 = kb.entity_by_uri("e:a1").unwrap();
        assert_eq!(kb.edges(a1).count(), 2);
        let r1 = kb.entity_by_uri("e:r1").unwrap();
        assert_eq!(kb.edges(r1).count(), 1);
    }

    #[test]
    fn relation_counts_only_entity_valued_attrs() {
        let kb = sample();
        let rels = kb.relation_edge_counts();
        assert_eq!(rels.len(), 1);
        let addr = kb.attr_by_name("address").unwrap();
        assert_eq!(rels[&addr], 2);
        assert_eq!(kb.relation_count(), 1);
    }

    #[test]
    fn attr_profile_counts_support_and_distinct_values() {
        let kb = sample();
        let profiles = kb.attr_profile();
        let name = kb.attr_by_name("name").unwrap();
        let p = profiles.iter().find(|p| p.attr == name).unwrap();
        assert_eq!(p.entities_containing, 2);
        assert_eq!(p.distinct_values, 2);
        let addr = kb.attr_by_name("address").unwrap();
        let p = profiles.iter().find(|p| p.attr == addr).unwrap();
        assert_eq!(p.entities_containing, 2);
        assert_eq!(p.distinct_values, 1);
    }

    #[test]
    fn literal_marker_does_not_leak() {
        let mut b = KbBuilder::new("m");
        b.add_literal("s", "p", "plain");
        let kb = b.finish();
        let e = kb.entity_by_uri("s").unwrap();
        assert_eq!(kb.literals(e).collect::<Vec<_>>(), vec!["plain"]);
    }

    #[test]
    fn literal_and_uri_with_same_text_do_not_collide() {
        let mut b = KbBuilder::new("m");
        b.add_literal("s", "p", "e:target");
        b.add_uri("s", "q", "e:target");
        b.add_literal("e:target", "name", "t");
        let kb = b.finish();
        let s = kb.entity_by_uri("s").unwrap();
        let lits: Vec<_> = kb.literals(s).collect();
        assert_eq!(lits, vec!["e:target"]);
        assert_eq!(kb.out_edges(s).count(), 1);
    }

    #[test]
    fn absorbing_chunks_in_order_matches_sequential_adds() {
        // One triple stream, split across three chunks at arbitrary
        // points; repeated subjects/attrs/objects straddle the cuts.
        let triples: Vec<(&str, &str, Object)> = vec![
            ("e:a", "name", Object::Literal("alpha".into())),
            ("e:b", "name", Object::Literal("beta".into())),
            ("e:a", "knows", Object::Uri("e:b".into())),
            ("e:c", "name", Object::Literal("alpha".into())),
            ("e:b", "knows", Object::Uri("e:c".into())),
            ("e:a", "tag", Object::Literal("e:b".into())),
            ("e:d", "knows", Object::Uri("e:missing".into())),
        ];
        let mut sequential = KbBuilder::new("t");
        for (s, p, o) in &triples {
            sequential.add(s, p, o.clone());
        }
        let mut merged = KbBuilder::new("t");
        for range in [0..3, 3..5, 5..7] {
            let mut chunk = KbChunk::new();
            for (s, p, o) in &triples[range] {
                chunk.add(s, p, o);
            }
            merged.absorb(chunk);
        }
        assert_eq!(sequential.finish(), merged.finish());
    }

    #[test]
    fn replace_statements_maintains_edges_and_counts() {
        let mut kb = sample();
        let r1 = kb.entity_by_uri("e:r1").unwrap();
        let a1 = kb.entity_by_uri("e:a1").unwrap();
        let name = kb.ensure_attr("name");
        // Tombstone r1: its address edge into a1 must disappear.
        kb.replace_statements(r1, Vec::new());
        assert_eq!(kb.triple_count(), 4);
        assert!(kb.statements(r1).is_empty());
        assert_eq!(kb.in_edges(a1).len(), 1);
        // Re-describe r1 with a fresh literal and a fresh edge.
        let addr = kb.ensure_attr("address");
        kb.replace_statements(
            r1,
            vec![
                Statement {
                    attr: name,
                    value: Value::Literal("Renamed".into()),
                },
                Statement {
                    attr: addr,
                    value: Value::Entity(a1),
                },
            ],
        );
        assert_eq!(kb.triple_count(), 6);
        assert_eq!(kb.in_edges(a1).len(), 2);
        assert!(kb.literals(r1).any(|l| l == "Renamed"));
    }

    #[test]
    fn ensure_entity_appends_dense_ids() {
        let mut kb = sample();
        let before = kb.entity_count();
        let e = kb.ensure_entity("e:new");
        assert_eq!(e.index(), before);
        assert_eq!(kb.entity_count(), before + 1);
        assert!(kb.statements(e).is_empty());
        // Existing URIs keep their ids.
        assert_eq!(kb.ensure_entity("e:r1"), EntityId(0));
        assert_eq!(kb.entity_count(), before + 1);
    }

    #[test]
    fn from_parts_round_trips_builder_output() {
        let kb = sample();
        let statements: Vec<Vec<Statement>> =
            kb.entities().map(|e| kb.statements(e).to_vec()).collect();
        let back = KnowledgeBase::from_parts(
            kb.name().to_string(),
            kb.entity_uris().clone(),
            kb.attr_interner().clone(),
            statements,
        )
        .unwrap();
        assert_eq!(back, kb);
    }

    #[test]
    fn from_parts_rejects_structural_mismatches() {
        let kb = sample();
        let statements: Vec<Vec<Statement>> =
            kb.entities().map(|e| kb.statements(e).to_vec()).collect();
        // Too few statement lists for the URI dictionary.
        assert!(KnowledgeBase::from_parts(
            "x".into(),
            kb.entity_uris().clone(),
            kb.attr_interner().clone(),
            statements[..2].to_vec(),
        )
        .is_err());
        // Out-of-range entity reference.
        let mut bad = statements.clone();
        bad[0].push(Statement {
            attr: AttrId(0),
            value: Value::Entity(EntityId(99)),
        });
        assert!(KnowledgeBase::from_parts(
            "x".into(),
            kb.entity_uris().clone(),
            kb.attr_interner().clone(),
            bad,
        )
        .is_err());
    }

    #[test]
    fn declare_entity_without_statements() {
        let mut b = KbBuilder::new("m");
        b.declare_entity("lonely");
        let kb = b.finish();
        assert_eq!(kb.entity_count(), 1);
        assert!(kb.statements(EntityId(0)).is_empty());
    }
}
