//! # minoan-eval — evaluation harness
//!
//! [`MatchQuality`]: pairwise precision/recall/F1 against ground truth,
//! as the paper reports them; [`Table`]: plain-text tables for the
//! `repro_*` binaries that regenerate the paper's Tables I–III.

#![warn(missing_docs)]

pub mod metrics;
pub mod report;

pub use metrics::MatchQuality;
pub use report::{scientific, Table};
