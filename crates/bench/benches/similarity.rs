//! Similarity benchmarks: the paper's `valueSim` against the vector-
//! space measures BSL sweeps over.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minoan_datagen::DatasetKind;
use minoan_kb::{EntityId, KbSide};
use minoan_sim::{build_vectors, value_sim, Measure, Weighting};
use minoan_text::{TokenizedPair, Tokenizer};

fn bench_similarity(c: &mut Criterion) {
    let d = DatasetKind::RexaDblp.generate_scaled(7, 0.1);
    let tokens = TokenizedPair::build(&d.pair, &Tokenizer::default());
    let n1 = tokens.entity_count(KbSide::First) as u32;
    let n2 = tokens.entity_count(KbSide::Second) as u32;
    let pairs: Vec<(EntityId, EntityId)> = (0..1000u32)
        .map(|i| (EntityId(i % n1), EntityId((i * 7) % n2)))
        .collect();
    let mut group = c.benchmark_group("similarity");
    group.bench_function("value_sim_1k_pairs", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(a, e)| value_sim(&tokens, a, e))
                .sum::<f64>()
        })
    });
    let docs1: Vec<Vec<String>> = d
        .pair
        .first
        .entities()
        .map(|e| d.pair.first.literals(e).map(str::to_string).collect())
        .collect();
    let docs2: Vec<Vec<String>> = d
        .pair
        .second
        .entities()
        .map(|e| d.pair.second.literals(e).map(str::to_string).collect())
        .collect();
    let (v1, v2) = build_vectors(&docs1, &docs2, Weighting::TfIdf);
    for m in Measure::ALL {
        group.bench_with_input(
            BenchmarkId::new("measure_1k_pairs", m.to_string()),
            &m,
            |b, &m| {
                b.iter(|| {
                    pairs
                        .iter()
                        .map(|&(a, e)| m.compute(&v1[a.index()], &v2[e.index()]))
                        .sum::<f64>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
