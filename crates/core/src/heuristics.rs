//! The four threshold-free heuristics H1–H4 (paper §III).
//!
//! Each heuristic is a pure function over the blocking/similarity
//! artifacts; the pipeline composes them as
//! `M = (H1 ∨ H2 ∨ H3) ∧ H4`.

use minoan_blocking::{unique_name_pairs, BlockCollection};
use minoan_exec::Executor;
use minoan_kb::{EntityId, FxHashSet, KbSide};

use crate::simindex::SimilarityIndex;

/// Orients an `(entity-of-side, candidate-of-other-side)` pair into the
/// canonical `(first, second)` order.
#[inline]
fn orient(side: KbSide, e: EntityId, other: EntityId) -> (EntityId, EntityId) {
    match side {
        KbSide::First => (e, other),
        KbSide::Second => (other, e),
    }
}

/// **H1 — Name Heuristic.** Two entities match if they, and only they,
/// share the same distinctive name: every name block with exactly one
/// entity per KB yields a match.
pub fn h1_name_matches(bn: &BlockCollection) -> Vec<(EntityId, EntityId)> {
    unique_name_pairs(bn)
}

/// **H2 — Value Heuristic.** For every not-yet-matched entity of the
/// smaller KB, take its best value-similarity candidate `ej` (vmax); if
/// `vmax ≥ 1` the pair is a *strongly similar* match.
///
/// The paper's rationale is that two entities match "if they, **and only
/// they**, share a common token, or share many infrequent tokens": the
/// strong-similarity evidence must be exclusive. H2 therefore abstains
/// when the runner-up candidate is *also* strongly similar (`≥ 1`) —
/// homonym entities with near-identical content are left to H3, whose
/// neighbor evidence can tell them apart.
///
/// Entities already matched by H1 are not examined, neither as probes
/// nor as candidates.
pub fn h2_value_matches(
    idx: &SimilarityIndex,
    smaller: KbSide,
    n_smaller: usize,
    matched: [&FxHashSet<EntityId>; 2],
) -> Vec<(EntityId, EntityId)> {
    h2_value_matches_with(idx, smaller, n_smaller, matched, &Executor::sequential())
}

/// [`h2_value_matches`] fanned out over entity ranges on `exec`. Each
/// entity's decision is independent and partials are concatenated in
/// entity order, so the output is identical for any thread count.
pub fn h2_value_matches_with(
    idx: &SimilarityIndex,
    smaller: KbSide,
    n_smaller: usize,
    matched: [&FxHashSet<EntityId>; 2],
    exec: &Executor,
) -> Vec<(EntityId, EntityId)> {
    let matched_own = matched[smaller.index()];
    let matched_other = matched[smaller.other().index()];
    exec.map_parts(n_smaller, |range| {
        let mut out = Vec::new();
        for e in range.map(|e| EntityId(e as u32)) {
            if matched_own.contains(&e) {
                continue;
            }
            let mut usable = idx
                .value_candidates(smaller, e)
                .iter()
                .filter(|(c, _)| !matched_other.contains(c));
            if let Some(&(c, vmax)) = usable.next() {
                let runner_up = usable.next().map(|&(_, v)| v).unwrap_or(0.0);
                if vmax >= 1.0 && runner_up < 1.0 {
                    out.push(orient(smaller, e, c));
                }
            }
        }
        out
    })
    .concat()
}

/// **H3 — Rank Aggregation Heuristic.** For a not-yet-matched entity,
/// candidates are ranked twice — by value similarity and by non-zero
/// neighbor similarity — and the two rankings are aggregated with
/// normalized rank scores weighted `θ` (values) vs `1-θ` (neighbors).
/// The top-1 aggregate candidate is the match.
///
/// Returns `None` when the entity has no usable candidate.
pub fn h3_top_candidate(
    idx: &SimilarityIndex,
    side: KbSide,
    e: EntityId,
    k: usize,
    theta: f64,
    matched_other: &FxHashSet<EntityId>,
) -> Option<(EntityId, f64)> {
    let value_list: Vec<EntityId> = idx
        .value_candidates(side, e)
        .iter()
        .filter(|(c, v)| *v > 0.0 && !matched_other.contains(c))
        .take(k)
        .map(|&(c, _)| c)
        .collect();
    let neighbor_list: Vec<EntityId> = idx
        .neighbor_candidates(side, e)
        .iter()
        .filter(|(c, _)| !matched_other.contains(c))
        .take(k)
        .map(|&(c, _)| c)
        .collect();
    if value_list.is_empty() && neighbor_list.is_empty() {
        return None;
    }
    // Normalized rank of position p in a list of size L: (L - p) / L.
    let mut scores: Vec<(EntityId, f64)> = Vec::new();
    let bump = |scores: &mut Vec<(EntityId, f64)>, c: EntityId, s: f64| match scores
        .iter_mut()
        .find(|(e, _)| *e == c)
    {
        Some((_, acc)) => *acc += s,
        None => scores.push((c, s)),
    };
    let lv = value_list.len() as f64;
    for (p, &c) in value_list.iter().enumerate() {
        bump(&mut scores, c, theta * (lv - p as f64) / lv);
    }
    let ln = neighbor_list.len() as f64;
    for (p, &c) in neighbor_list.iter().enumerate() {
        bump(&mut scores, c, (1.0 - theta) * (ln - p as f64) / ln);
    }
    scores.into_iter().max_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.0.cmp(&a.0))
    })
}

/// Runs H3 over every not-yet-matched entity of the smaller KB.
pub fn h3_rank_matches(
    idx: &SimilarityIndex,
    smaller: KbSide,
    n_smaller: usize,
    k: usize,
    theta: f64,
    matched: [&FxHashSet<EntityId>; 2],
) -> Vec<(EntityId, EntityId)> {
    h3_rank_matches_with(
        idx,
        smaller,
        n_smaller,
        k,
        theta,
        matched,
        &Executor::sequential(),
    )
}

/// [`h3_rank_matches`] fanned out over entity ranges on `exec`; output
/// identical for any thread count (independent per-entity decisions,
/// partials concatenated in entity order).
pub fn h3_rank_matches_with(
    idx: &SimilarityIndex,
    smaller: KbSide,
    n_smaller: usize,
    k: usize,
    theta: f64,
    matched: [&FxHashSet<EntityId>; 2],
    exec: &Executor,
) -> Vec<(EntityId, EntityId)> {
    let matched_own = matched[smaller.index()];
    let matched_other = matched[smaller.other().index()];
    exec.map_parts(n_smaller, |range| {
        let mut out = Vec::new();
        for e in range.map(|e| EntityId(e as u32)) {
            if matched_own.contains(&e) {
                continue;
            }
            if let Some((c, _)) = h3_top_candidate(idx, smaller, e, k, theta, matched_other) {
                out.push(orient(smaller, e, c));
            }
        }
        out
    })
    .concat()
}

/// **H4 — Reciprocity Heuristic.** A pair `(e1, e2)` survives only if
/// `e2` is among the top-`K` value *or* neighbor candidates of `e1`,
/// **and** vice versa.
pub fn h4_reciprocal(idx: &SimilarityIndex, k: usize, e1: EntityId, e2: EntityId) -> bool {
    in_top_k(idx, KbSide::First, e1, e2, k) && in_top_k(idx, KbSide::Second, e2, e1, k)
}

/// Evaluates H4 for a batch of pairs on `exec`, returning one keep-flag
/// per pair in input order. Pure reads over the index.
pub fn h4_reciprocal_batch(
    idx: &SimilarityIndex,
    k: usize,
    pairs: &[(EntityId, EntityId)],
    exec: &Executor,
) -> Vec<bool> {
    exec.map_range(pairs.len(), |i| {
        let (e1, e2) = pairs[i];
        h4_reciprocal(idx, k, e1, e2)
    })
}

fn in_top_k(idx: &SimilarityIndex, side: KbSide, e: EntityId, other: EntityId, k: usize) -> bool {
    idx.value_candidates(side, e)
        .iter()
        .take(k)
        .any(|&(c, _)| c == other)
        || idx
            .neighbor_candidates(side, e)
            .iter()
            .take(k)
            .any(|&(c, _)| c == other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::token_blocking;
    use minoan_kb::{KbBuilder, KbPair};
    use minoan_text::{TokenizedPair, Tokenizer};

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    /// Builds an index over two KBs given (uri, literal) rows.
    fn index_of(lits1: &[&str], lits2: &[&str]) -> SimilarityIndex {
        let mut a = KbBuilder::new("E1");
        for (i, l) in lits1.iter().enumerate() {
            a.add_literal(&format!("a:{i}"), "v", l);
        }
        let mut b = KbBuilder::new("E2");
        for (i, l) in lits2.iter().enumerate() {
            b.add_literal(&format!("b:{i}"), "v", l);
        }
        let pair = KbPair::new(a.finish(), b.finish());
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&tokens);
        let tn1 = vec![Vec::new(); pair.first.entity_count()];
        let tn2 = vec![Vec::new(); pair.second.entity_count()];
        SimilarityIndex::build(&bt, &tokens, [&tn1, &tn2])
    }

    #[test]
    fn h2_matches_strongly_similar_pairs_only() {
        // a:0/b:0 share a mutually-unique token (weight 1 => vmax >= 1).
        // a:1/b:1 share only a token frequent on both sides.
        let idx = index_of(&["unique0 common", "common"], &["unique0 common", "common"]);
        let none = FxHashSet::default();
        let pairs = h2_value_matches(&idx, KbSide::First, 2, [&none, &none]);
        assert_eq!(pairs, vec![(e(0), e(0))]);
    }

    #[test]
    fn h2_skips_matched_entities() {
        let idx = index_of(&["unique0"], &["unique0"]);
        let mut m1 = FxHashSet::default();
        m1.insert(e(0));
        let none = FxHashSet::default();
        assert!(h2_value_matches(&idx, KbSide::First, 1, [&m1, &none]).is_empty());
        // Candidate side matched: the probe finds no usable candidate.
        let mut m2 = FxHashSet::default();
        m2.insert(e(0));
        assert!(h2_value_matches(&idx, KbSide::First, 1, [&none, &m2]).is_empty());
    }

    #[test]
    fn h2_iterates_the_declared_smaller_side() {
        let idx = index_of(&["unique0"], &["unique0", "nothing shared"]);
        let none = FxHashSet::default();
        let pairs = h2_value_matches(&idx, KbSide::First, 1, [&none, &none]);
        assert_eq!(pairs, vec![(e(0), e(0))]);
        // From the second side, pairs stay oriented (first, second).
        let pairs = h2_value_matches(&idx, KbSide::Second, 2, [&none, &none]);
        assert_eq!(pairs, vec![(e(0), e(0))]);
    }

    #[test]
    fn h3_prefers_value_rank_with_high_theta() {
        // a:0 shares more (and rarer) tokens with b:0 than with b:1.
        let idx = index_of(&["x y z"], &["x y z", "x"]);
        let none = FxHashSet::default();
        let (top, score) = h3_top_candidate(&idx, KbSide::First, e(0), 15, 0.6, &none).unwrap();
        assert_eq!(top, e(0));
        assert!(score > 0.0);
    }

    #[test]
    fn h3_returns_none_without_candidates() {
        let idx = index_of(&["alpha"], &["beta"]);
        let none = FxHashSet::default();
        assert!(h3_top_candidate(&idx, KbSide::First, e(0), 15, 0.6, &none).is_none());
    }

    #[test]
    fn h3_excluding_the_winner_promotes_the_runner_up() {
        let idx = index_of(&["x y z"], &["x y z", "x y"]);
        let none = FxHashSet::default();
        let (top, _) = h3_top_candidate(&idx, KbSide::First, e(0), 15, 0.6, &none).unwrap();
        assert_eq!(top, e(0));
        let mut excl = FxHashSet::default();
        excl.insert(e(0));
        let (top, _) = h3_top_candidate(&idx, KbSide::First, e(0), 15, 0.6, &excl).unwrap();
        assert_eq!(top, e(1));
    }

    #[test]
    fn h3_k_truncates_the_lists() {
        // With k=1 only the best value candidate is rankable.
        let idx = index_of(&["x y"], &["x y", "x"]);
        let none = FxHashSet::default();
        let (top, score) = h3_top_candidate(&idx, KbSide::First, e(0), 1, 0.6, &none).unwrap();
        assert_eq!(top, e(0));
        // Full normalized rank on a single-element list: theta * 1.
        assert!((score - 0.6).abs() < 1e-12);
    }

    #[test]
    fn h4_requires_mutual_top_k() {
        let idx = index_of(&["x y z"], &["x y z"]);
        assert!(h4_reciprocal(&idx, 15, e(0), e(0)));
        // A pair that never co-occurs is not reciprocal.
        let idx2 = index_of(&["a"], &["b"]);
        assert!(!h4_reciprocal(&idx2, 15, e(0), e(0)));
    }

    #[test]
    fn h4_k_window_matters() {
        // b-side entity 0 is "popular": many a-side entities rank it top,
        // but from b:0's perspective a:2 (sharing two tokens) outranks the
        // single-token probes. With k=1 only the mutual best survives.
        let idx = index_of(&["x", "x", "x y"], &["x y"]);
        assert!(h4_reciprocal(&idx, 1, e(2), e(0)));
        assert!(!h4_reciprocal(&idx, 1, e(0), e(0)));
        assert!(h4_reciprocal(&idx, 3, e(0), e(0)));
    }

    #[test]
    fn h3_full_pass_orients_pairs() {
        let idx = index_of(&["x q"], &["x q"]);
        let none = FxHashSet::default();
        let pairs = h3_rank_matches(&idx, KbSide::Second, 1, 15, 0.6, [&none, &none]);
        assert_eq!(pairs, vec![(e(0), e(0))]);
    }
}
