//! Entity-level deltas against a KB pair.
//!
//! A production KB is never static. This module defines the *mutation
//! vocabulary* shared by every layer that touches incremental updates:
//! the delta generator in `datagen`, the incremental re-resolution
//! engine in `minoan-core`, the `PATCH /v1/indexes/{id}` wire format in
//! `minoan-serve`, and the from-scratch reference rebuild the
//! equivalence tests compare against. Keeping [`apply_op`] here — and
//! having both the incremental path and the rebuild path call it on the
//! same pair — is what makes "incremental result ≡ rebuild result" a
//! statement about the *pipeline*, not about two divergent mutation
//! implementations.
//!
//! # Semantics
//!
//! - **Upsert** replaces the whole description of a URI (creating the
//!   entity if new). Object URIs are resolved against the entities
//!   described *at apply time*: a reference to a URI that only appears
//!   later in the stream stays a literal, exactly as a re-parse of the
//!   mutated corpus at that moment would leave it.
//! - **Delete** tombstones a description: its statements are cleared
//!   (removing its outgoing edges and their reverse entries), but the
//!   id and URI survive so entity ids stay dense and stable and edges
//!   *into* the tombstone remain valid. Deleting an unknown URI is a
//!   no-op.

use crate::hash::FxHashSet;
use crate::ids::{EntityId, KbSide};
use crate::json::Json;
use crate::model::{Object, Statement, Value};
use crate::pair::KbPair;

/// One mutation against a KB pair.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Replace (or create) the full description of `uri` on `side`.
    Upsert {
        /// Which KB the description lives in.
        side: KbSide,
        /// Subject URI of the description.
        uri: String,
        /// The complete new statement list, as raw attribute/object
        /// pairs (resolved against described entities at apply time).
        statements: Vec<(String, Object)>,
    },
    /// Tombstone the description of `uri` on `side`.
    Delete {
        /// Which KB the description lives in.
        side: KbSide,
        /// Subject URI of the description.
        uri: String,
    },
}

impl DeltaOp {
    /// The side the op targets.
    pub fn side(&self) -> KbSide {
        match self {
            DeltaOp::Upsert { side, .. } | DeltaOp::Delete { side, .. } => *side,
        }
    }

    /// The subject URI the op targets.
    pub fn uri(&self) -> &str {
        match self {
            DeltaOp::Upsert { uri, .. } | DeltaOp::Delete { uri, .. } => uri,
        }
    }
}

/// Applies one op to the pair. Returns the touched entity and whether
/// it was newly created, or `None` for a delete of an unknown URI
/// (a documented no-op).
pub fn apply_op(pair: &mut KbPair, op: &DeltaOp) -> Option<(KbSide, EntityId, bool)> {
    match op {
        DeltaOp::Upsert {
            side,
            uri,
            statements,
        } => {
            let kb = pair.kb_mut(*side);
            let before = kb.entity_count();
            let e = kb.ensure_entity(uri);
            let created = kb.entity_count() > before;
            let mut stmts = Vec::with_capacity(statements.len());
            for (attr, obj) in statements {
                let attr = kb.ensure_attr(attr);
                let value = match obj {
                    Object::Literal(l) => Value::Literal(l.as_str().into()),
                    Object::Uri(u) => match kb.entity_by_uri(u) {
                        Some(t) => Value::Entity(t),
                        None => Value::Literal(u.as_str().into()),
                    },
                };
                stmts.push(Statement { attr, value });
            }
            kb.replace_statements(e, stmts);
            Some((*side, e, created))
        }
        DeltaOp::Delete { side, uri } => {
            let kb = pair.kb_mut(*side);
            let e = kb.entity_by_uri(uri)?;
            kb.replace_statements(e, Vec::new());
            Some((*side, e, false))
        }
    }
}

/// Applies a stream of ops in order and returns the dirty entity set
/// per side — every entity whose description the stream touched
/// (created, replaced, or tombstoned).
pub fn apply_to_pair(pair: &mut KbPair, ops: &[DeltaOp]) -> [FxHashSet<EntityId>; 2] {
    let mut dirty = [FxHashSet::default(), FxHashSet::default()];
    for op in ops {
        if let Some((side, e, _)) = apply_op(pair, op) {
            dirty[side.index()].insert(e);
        }
    }
    dirty
}

fn side_str(side: KbSide) -> &'static str {
    match side {
        KbSide::First => "first",
        KbSide::Second => "second",
    }
}

/// Serializes one op as its wire JSON object.
pub fn op_to_json(op: &DeltaOp) -> Json {
    match op {
        DeltaOp::Upsert {
            side,
            uri,
            statements,
        } => Json::obj([
            ("op", Json::str("upsert")),
            ("side", Json::str(side_str(*side))),
            ("uri", Json::str(uri.clone())),
            (
                "statements",
                Json::arr(statements.iter().map(|(attr, obj)| match obj {
                    Object::Literal(l) => Json::obj([
                        ("attr", Json::str(attr.clone())),
                        ("value", Json::str(l.clone())),
                    ]),
                    Object::Uri(u) => Json::obj([
                        ("attr", Json::str(attr.clone())),
                        ("uri", Json::str(u.clone())),
                    ]),
                })),
            ),
        ]),
        DeltaOp::Delete { side, uri } => Json::obj([
            ("op", Json::str("delete")),
            ("side", Json::str(side_str(*side))),
            ("uri", Json::str(uri.clone())),
        ]),
    }
}

/// Serializes a stream of ops as the wire body `{"deltas":[…]}`.
pub fn ops_to_json(ops: &[DeltaOp]) -> Json {
    Json::obj([("deltas", Json::arr(ops.iter().map(op_to_json)))])
}

/// Parses one wire JSON object into an op.
pub fn op_from_json(v: &Json) -> Result<DeltaOp, String> {
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("delta op missing string field 'op'")?;
    let side = match v.get("side").and_then(Json::as_str) {
        Some("first") => KbSide::First,
        Some("second") => KbSide::Second,
        Some(other) => return Err(format!("delta op side must be first|second, got {other:?}")),
        None => return Err("delta op missing string field 'side'".into()),
    };
    let uri = v
        .get("uri")
        .and_then(Json::as_str)
        .ok_or("delta op missing string field 'uri'")?
        .to_string();
    if uri.is_empty() {
        return Err("delta op uri must be non-empty".into());
    }
    match op {
        "delete" => Ok(DeltaOp::Delete { side, uri }),
        "upsert" => {
            let stmts = match v.get("statements") {
                Some(Json::Arr(items)) => items,
                Some(_) => return Err("upsert 'statements' must be an array".into()),
                None => return Err("upsert missing array field 'statements'".into()),
            };
            let mut statements = Vec::with_capacity(stmts.len());
            for s in stmts {
                let attr = s
                    .get("attr")
                    .and_then(Json::as_str)
                    .ok_or("statement missing string field 'attr'")?
                    .to_string();
                let obj = match (s.get("value"), s.get("uri")) {
                    (Some(Json::Str(l)), None) => Object::Literal(l.clone()),
                    (None, Some(Json::Str(u))) => Object::Uri(u.clone()),
                    _ => {
                        return Err("statement needs exactly one of string 'value' or 'uri'".into())
                    }
                };
                statements.push((attr, obj));
            }
            Ok(DeltaOp::Upsert {
                side,
                uri,
                statements,
            })
        }
        other => Err(format!("delta op must be upsert|delete, got {other:?}")),
    }
}

/// Parses the wire body `{"deltas":[…]}` into an op stream. Rejects
/// empty streams — a patch with nothing in it is a caller bug, not a
/// cheap no-op worth a job slot.
pub fn ops_from_json(v: &Json) -> Result<Vec<DeltaOp>, String> {
    let items = match v.get("deltas") {
        Some(Json::Arr(items)) => items,
        Some(_) => return Err("'deltas' must be an array".into()),
        None => return Err("body missing array field 'deltas'".into()),
    };
    if items.is_empty() {
        return Err("'deltas' must contain at least one op".into());
    }
    items.iter().map(op_from_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::KbBuilder;

    fn pair() -> KbPair {
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:r1", "name", "Kri Kri");
        a.add_uri("a:r1", "address", "a:a1");
        a.add_literal("a:a1", "street", "12 Minos Ave");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:r1", "label", "Kri-Kri Taverna");
        KbPair::new(a.finish(), b.finish())
    }

    #[test]
    fn upsert_replaces_and_creates() {
        let mut p = pair();
        let op = DeltaOp::Upsert {
            side: KbSide::First,
            uri: "a:r1".into(),
            statements: vec![("name".into(), Object::Literal("Renamed".into()))],
        };
        let (side, e, created) = apply_op(&mut p, &op).unwrap();
        assert_eq!((side, created), (KbSide::First, false));
        assert_eq!(p.first.literals(e).collect::<Vec<_>>(), vec!["Renamed"]);
        // The old address edge is gone.
        let a1 = p.first.entity_by_uri("a:a1").unwrap();
        assert!(p.first.in_edges(a1).is_empty());

        let op = DeltaOp::Upsert {
            side: KbSide::Second,
            uri: "b:new".into(),
            statements: vec![("ref".into(), Object::Uri("b:r1".into()))],
        };
        let (_, e, created) = apply_op(&mut p, &op).unwrap();
        assert!(created);
        assert_eq!(p.second.out_edges(e).count(), 1);
    }

    #[test]
    fn upsert_resolves_uris_at_apply_time() {
        let mut p = pair();
        // "a:later" is not described yet: the reference stays a literal.
        apply_op(
            &mut p,
            &DeltaOp::Upsert {
                side: KbSide::First,
                uri: "a:r1".into(),
                statements: vec![("see".into(), Object::Uri("a:later".into()))],
            },
        );
        let r1 = p.first.entity_by_uri("a:r1").unwrap();
        assert_eq!(p.first.out_edges(r1).count(), 0);
        assert!(p.first.literals(r1).any(|l| l == "a:later"));
    }

    #[test]
    fn delete_tombstones_and_unknown_delete_is_noop() {
        let mut p = pair();
        let n = p.first.entity_count();
        let op = DeltaOp::Delete {
            side: KbSide::First,
            uri: "a:r1".into(),
        };
        let (_, e, _) = apply_op(&mut p, &op).unwrap();
        assert!(p.first.statements(e).is_empty());
        assert_eq!(p.first.entity_count(), n, "tombstone keeps the id slot");
        assert!(apply_op(
            &mut p,
            &DeltaOp::Delete {
                side: KbSide::Second,
                uri: "b:missing".into(),
            }
        )
        .is_none());
    }

    #[test]
    fn apply_to_pair_collects_dirty_sets() {
        let mut p = pair();
        let ops = vec![
            DeltaOp::Upsert {
                side: KbSide::First,
                uri: "a:r1".into(),
                statements: vec![("name".into(), Object::Literal("x".into()))],
            },
            DeltaOp::Delete {
                side: KbSide::Second,
                uri: "b:r1".into(),
            },
            DeltaOp::Delete {
                side: KbSide::Second,
                uri: "b:missing".into(),
            },
        ];
        let dirty = apply_to_pair(&mut p, &ops);
        assert_eq!(dirty[0].len(), 1);
        assert_eq!(dirty[1].len(), 1);
    }

    #[test]
    fn wire_json_round_trips() {
        let ops = vec![
            DeltaOp::Upsert {
                side: KbSide::First,
                uri: "a:r1".into(),
                statements: vec![
                    ("name".into(), Object::Literal("lit \"q\"".into())),
                    ("address".into(), Object::Uri("a:a1".into())),
                ],
            },
            DeltaOp::Delete {
                side: KbSide::Second,
                uri: "b:r9".into(),
            },
        ];
        let wire = ops_to_json(&ops).compact();
        let back = ops_from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn wire_json_rejects_malformed_bodies() {
        for bad in [
            r#"{}"#,
            r#"{"deltas":[]}"#,
            r#"{"deltas":[{"op":"upsert","side":"first","uri":"a"}]}"#,
            r#"{"deltas":[{"op":"upsert","side":"third","uri":"a","statements":[]}]}"#,
            r#"{"deltas":[{"op":"merge","side":"first","uri":"a"}]}"#,
            r#"{"deltas":[{"op":"delete","side":"first","uri":""}]}"#,
            r#"{"deltas":[{"op":"upsert","side":"first","uri":"a","statements":[{"attr":"p","value":"v","uri":"u"}]}]}"#,
        ] {
            assert!(
                ops_from_json(&Json::parse(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }
}
