//! Property-based tests over the core data structures and invariants.

use minoaner::baselines::{umc_trace, unique_mapping_clustering};
use minoaner::blocking::{canonical_name, purge, token_blocking, Block, BlockCollection, BlockKind};
use minoaner::core::MinoanEr;
use minoaner::kb::{EntityId, KbBuilder, KbPair, Matching};
use minoaner::sim::{token_weight, value_sim};
use minoaner::text::{TokenizedPair, Tokenizer};
use proptest::prelude::*;

fn arb_kb_pair() -> impl Strategy<Value = KbPair> {
    // Random small KBs over a small token universe.
    let word = prop_oneof![
        Just("alpha"), Just("beta"), Just("gamma"), Just("delta"),
        Just("knossos"), Just("zakros"), Just("malia"), Just("phaistos"),
    ];
    let literal = prop::collection::vec(word, 1..5).prop_map(|ws| ws.join(" "));
    let entity = prop::collection::vec(literal, 1..4);
    let side = prop::collection::vec(entity, 1..12);
    (side.clone(), side).prop_map(|(s1, s2)| {
        let mut a = KbBuilder::new("E1");
        for (i, lits) in s1.iter().enumerate() {
            for (j, l) in lits.iter().enumerate() {
                a.add_literal(&format!("a:{i}"), &format!("p{j}"), l);
            }
        }
        let mut b = KbBuilder::new("E2");
        for (i, lits) in s2.iter().enumerate() {
            for (j, l) in lits.iter().enumerate() {
                b.add_literal(&format!("b:{i}"), &format!("q{j}"), l);
            }
        }
        KbPair::new(a.finish(), b.finish())
    })
}

proptest! {
    #[test]
    fn value_sim_is_nonnegative_and_zero_without_overlap(pair in arb_kb_pair()) {
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        for e1 in pair.first.entities() {
            for e2 in pair.second.entities() {
                let v = value_sim(&tokens, e1, e2);
                prop_assert!(v >= 0.0);
                prop_assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn token_weight_is_in_unit_range(ef1 in 1u32..100_000, ef2 in 1u32..100_000) {
        let w = token_weight(ef1, ef2);
        prop_assert!(w > 0.0 && w <= 1.0, "weight {w} for ({ef1},{ef2})");
    }

    #[test]
    fn token_weight_decreases_with_frequency(ef in 1u32..10_000) {
        prop_assert!(token_weight(ef, 1) >= token_weight(ef + 1, 1));
        prop_assert!(token_weight(ef, ef) >= token_weight(ef + 1, ef + 1));
    }

    #[test]
    fn purging_never_increases_comparisons_or_blocks(
        sizes in prop::collection::vec((1usize..20, 1usize..20), 1..40)
    ) {
        let blocks: Vec<Block> = sizes
            .iter()
            .enumerate()
            .map(|(k, &(n1, n2))| Block {
                key: k as u32,
                firsts: (0..n1 as u32).map(EntityId).collect(),
                seconds: (0..n2 as u32).map(EntityId).collect(),
            })
            .collect();
        let c = BlockCollection::new(BlockKind::Token, blocks, 20, 20);
        let (p, report) = purge(&c);
        prop_assert!(p.total_comparisons() <= c.total_comparisons());
        prop_assert!(p.len() <= c.len());
        prop_assert_eq!(report.comparisons_after, p.total_comparisons());
        // The survivors respect the threshold.
        for b in p.blocks() {
            prop_assert!(b.comparisons() <= report.max_comparisons_per_block);
        }
    }

    #[test]
    fn umc_output_is_a_partial_matching_and_respects_threshold(
        pairs in prop::collection::vec((0u32..30, 0u32..30, 0.0f64..1.0), 0..200),
        t in 0.0f64..1.0
    ) {
        let scored: Vec<_> = pairs
            .iter()
            .map(|&(a, b, s)| (EntityId(a), EntityId(b), s))
            .collect();
        let m = unique_mapping_clustering(&scored, t);
        prop_assert!(m.is_partial_matching());
        // Trace is sorted by score descending.
        let trace = umc_trace(&scored);
        prop_assert!(trace.windows(2).all(|w| w[0].2 >= w[1].2));
    }

    #[test]
    fn canonical_name_is_idempotent_and_space_normal(s in "\\PC{0,60}") {
        let c1 = canonical_name(&s);
        let c2 = canonical_name(&c1);
        prop_assert_eq!(&c1, &c2);
        prop_assert!(!c1.contains("  "));
        prop_assert!(!c1.starts_with(' ') && !c1.ends_with(' '));
    }

    #[test]
    fn token_blocking_only_pairs_entities_sharing_a_token(pair in arb_kb_pair()) {
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&tokens);
        for (e1, e2) in bt.distinct_pairs() {
            let v = value_sim(&tokens, e1, e2);
            prop_assert!(v > 0.0, "co-occurring pair must share a token");
        }
    }

    #[test]
    fn pipeline_never_panics_and_reports_consistently(pair in arb_kb_pair()) {
        let out = MinoanEr::with_defaults().run(&pair);
        let r = &out.report;
        prop_assert_eq!(
            out.matching.len() + r.h4_removed,
            r.h1_matches + r.h2_matches + r.h3_matches
        );
    }

    #[test]
    fn matching_insert_contains_roundtrip(pairs in prop::collection::vec((0u32..50, 0u32..50), 0..100)) {
        let m = Matching::from_pairs(pairs.iter().map(|&(a, b)| (EntityId(a), EntityId(b))));
        for &(a, b) in &pairs {
            prop_assert!(m.contains(EntityId(a), EntityId(b)));
        }
        let distinct: std::collections::HashSet<_> = pairs.iter().collect();
        prop_assert_eq!(m.len(), distinct.len());
    }
}
