//! Deterministic synthetic lexicon.
//!
//! The generator needs control over token frequency distributions — the
//! single statistic all of MinoanER's similarity evidence derives from —
//! so it builds its own vocabulary instead of shipping word lists:
//! pronounceable words assembled from consonant–vowel syllables, drawn
//! from a seeded RNG.

use rand::rngs::StdRng;
use rand::Rng;

const CONSONANTS: &[&str] = &[
    "b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "th", "ch", "st", "kr",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ou"];

/// Generates one synthetic word with `syllables` syllables.
pub fn synth_word(rng: &mut StdRng, syllables: usize) -> String {
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(CONSONANTS[rng.gen_range(0..CONSONANTS.len())]);
        w.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
    }
    w
}

/// A pool of distinct synthetic words.
#[derive(Debug, Clone)]
pub struct WordPool {
    words: Vec<String>,
}

impl WordPool {
    /// Builds a pool of `n` distinct words with 2–4 syllables.
    pub fn generate(rng: &mut StdRng, n: usize) -> Self {
        let mut words = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::new();
        while words.len() < n {
            let syl = rng.gen_range(2..=4);
            let mut w = synth_word(rng, syl);
            // Suffix a counter when the syllable space collides, so pools
            // stay exactly the requested size.
            if !seen.insert(w.clone()) {
                w.push_str(&words.len().to_string());
                seen.insert(w.clone());
            }
            words.push(w);
        }
        Self { words }
    }

    /// A uniformly random word from the pool.
    pub fn pick(&self, rng: &mut StdRng) -> &str {
        &self.words[rng.gen_range(0..self.words.len())]
    }

    /// The `i`-th word (wrapping), for deterministic unique assignment.
    pub fn nth(&self, i: usize) -> &str {
        &self.words[i % self.words.len()]
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn words_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(synth_word(&mut a, 3), synth_word(&mut b, 3));
        let pa = WordPool::generate(&mut a, 50);
        let pb = WordPool::generate(&mut b, 50);
        assert_eq!(pa.words, pb.words);
    }

    #[test]
    fn pool_has_requested_size_and_distinct_words() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = WordPool::generate(&mut rng, 2000);
        assert_eq!(p.len(), 2000);
        let set: std::collections::HashSet<_> = p.words.iter().collect();
        assert_eq!(set.len(), 2000);
        assert!(!p.is_empty());
    }

    #[test]
    fn words_are_lowercase_alphanumeric() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = WordPool::generate(&mut rng, 200);
        for w in &p.words {
            assert!(w
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            assert!(w.len() >= 2);
        }
    }

    #[test]
    fn nth_wraps() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = WordPool::generate(&mut rng, 10);
        assert_eq!(p.nth(0), p.nth(10));
    }
}
