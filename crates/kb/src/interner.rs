//! String interning.
//!
//! URIs, attribute names and tokens repeat heavily in Web KBs; interning
//! maps each distinct string to a dense `u32` id once, after which the
//! whole pipeline works on integers.
//!
//! Storage is a **bump arena**: every distinct string is appended to one
//! contiguous byte buffer and addressed by a `(start, len)` span, so the
//! parse hot loop performs zero per-string heap allocations (the old
//! implementation boxed every string twice — once for the map key, once
//! for the id table). Lookup is an open-addressing table of ids probed
//! against the arena, which also halves the resident size.

use std::hash::Hasher;

use crate::hash::FxHasher;

const EMPTY: u32 = u32::MAX;

/// A dense string interner: `intern` assigns ids in first-seen order,
/// `resolve` maps an id back to the string.
///
/// Ids are dense (`0..len`), so they can index parallel `Vec`s directly.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    /// Arena of all distinct strings, concatenated.
    arena: String,
    /// Per id: `(start, end)` byte span into the arena.
    spans: Vec<(u32, u32)>,
    /// Open-addressing table of ids (linear probing, power-of-two size).
    table: Vec<u32>,
}

fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty interner with capacity for `cap` distinct strings.
    pub fn with_capacity(cap: usize) -> Self {
        let mut this = Self {
            arena: String::new(),
            spans: Vec::with_capacity(cap),
            table: Vec::new(),
        };
        this.grow_table((cap * 2).next_power_of_two().max(16));
        this
    }

    fn grow_table(&mut self, new_len: usize) {
        self.table = vec![EMPTY; new_len];
        let mask = new_len - 1;
        for (id, &(start, end)) in self.spans.iter().enumerate() {
            let s = &self.arena[start as usize..end as usize];
            let mut i = hash_str(s) as usize & mask;
            while self.table[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.table[i] = id as u32;
        }
    }

    fn span_str(&self, id: u32) -> &str {
        let (start, end) = self.spans[id as usize];
        &self.arena[start as usize..end as usize]
    }

    /// Interns `s`, returning its id. Idempotent.
    pub fn intern(&mut self, s: &str) -> u32 {
        // Keep the table at most half full so probe chains stay short.
        if self.table.len() < (self.spans.len() + 1) * 2 {
            let target = ((self.spans.len() + 1) * 4).next_power_of_two().max(16);
            self.grow_table(target);
        }
        let mask = self.table.len() - 1;
        let mut i = hash_str(s) as usize & mask;
        loop {
            let slot = self.table[i];
            if slot == EMPTY {
                let id = u32::try_from(self.spans.len()).expect("interner overflow");
                let start = u32::try_from(self.arena.len()).expect("interner arena overflow");
                self.arena.push_str(s);
                let end = u32::try_from(self.arena.len()).expect("interner arena overflow");
                self.spans.push((start, end));
                self.table[i] = id;
                return id;
            }
            if self.span_str(slot) == s {
                return slot;
            }
            i = (i + 1) & mask;
        }
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<u32> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut i = hash_str(s) as usize & mask;
        loop {
            let slot = self.table[i];
            if slot == EMPTY {
                return None;
            }
            if self.span_str(slot) == s {
                return Some(slot);
            }
            i = (i + 1) & mask;
        }
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        self.span_str(id)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total bytes of distinct string content held by the arena.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// The raw arena: every distinct string, concatenated in id order.
    /// Together with [`Interner::spans`] this is the interner's entire
    /// persistent state (the probe table is derived).
    pub fn arena(&self) -> &str {
        &self.arena
    }

    /// Per-id `(start, end)` byte spans into the arena.
    pub fn spans(&self) -> &[(u32, u32)] {
        &self.spans
    }

    /// Rebuilds an interner from a persisted arena and spans, validating
    /// that every span lies inside the arena on UTF-8 boundaries, and
    /// reconstructing the probe table. Duplicate strings across spans are
    /// rejected: they would make `get` ambiguous.
    pub fn from_parts(arena: String, spans: Vec<(u32, u32)>) -> Result<Self, String> {
        for &(start, end) in &spans {
            let (s, e) = (start as usize, end as usize);
            if s > e || e > arena.len() {
                return Err(format!("span {start}..{end} outside arena"));
            }
            if !arena.is_char_boundary(s) || !arena.is_char_boundary(e) {
                return Err(format!("span {start}..{end} splits a UTF-8 sequence"));
            }
        }
        let mut this = Self {
            arena,
            spans,
            table: Vec::new(),
        };
        this.grow_table((this.spans.len() * 2).next_power_of_two().max(16));
        for (id, &(start, end)) in this.spans.iter().enumerate() {
            let s = &this.arena[start as usize..end as usize];
            if this.get(s) != Some(id as u32) {
                return Err(format!("duplicate interned string at id {id}"));
            }
        }
        Ok(this)
    }

    /// Iterates `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        (0..self.spans.len() as u32).map(|id| (id, self.span_str(id)))
    }
}

/// Two interners are equal when they hold the same strings in the same
/// id order; the probe table is derived state and does not participate.
impl PartialEq for Interner {
    fn eq(&self, other: &Self) -> bool {
        self.spans.len() == other.spans.len()
            && self.iter().zip(other.iter()).all(|((_, a), (_, b))| a == b)
    }
}

impl Eq for Interner {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        let a2 = i.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::with_capacity(4);
        let id = i.intern("http://example.org/x");
        assert_eq!(i.resolve(id), "http://example.org/x");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        i.intern("present");
        assert_eq!(i.get("present"), Some(0));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_preserves_first_seen_order() {
        let mut i = Interner::new();
        for s in ["c", "a", "b", "a"] {
            i.intern(s);
        }
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["c", "a", "b"]);
    }

    #[test]
    fn empty_interner_reports_empty() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
        assert_eq!(i.arena_bytes(), 0);
    }

    #[test]
    fn survives_table_growth() {
        let mut i = Interner::new();
        let ids: Vec<u32> = (0..10_000).map(|n| i.intern(&format!("str-{n}"))).collect();
        assert_eq!(i.len(), 10_000);
        for (n, &id) in ids.iter().enumerate() {
            assert_eq!(id, n as u32, "ids are dense in first-seen order");
            assert_eq!(i.resolve(id), format!("str-{n}"));
            assert_eq!(i.get(&format!("str-{n}")), Some(id));
        }
    }

    #[test]
    fn equality_ignores_probe_table_shape() {
        // Same strings, different insertion histories (re-interning and
        // different initial capacities) must still compare equal.
        let mut a = Interner::new();
        let mut b = Interner::with_capacity(1000);
        for s in ["x", "y", "z"] {
            a.intern(s);
        }
        for s in ["x", "y", "x", "z", "y"] {
            b.intern(s);
        }
        assert_eq!(a, b);
        b.intern("w");
        assert_ne!(a, b);
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let mut a = Interner::new();
        for s in ["knossos", "phaistos", "zakros", ""] {
            a.intern(s);
        }
        let b = Interner::from_parts(a.arena().to_string(), a.spans().to_vec()).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.get("phaistos"), Some(1));
        assert_eq!(b.resolve(3), "");
        // Out-of-bounds span.
        assert!(Interner::from_parts("ab".into(), vec![(0, 9)]).is_err());
        // Inverted span.
        assert!(Interner::from_parts("ab".into(), vec![(2, 1)]).is_err());
        // Split UTF-8 sequence.
        assert!(Interner::from_parts("é".into(), vec![(0, 1)]).is_err());
        // Duplicate strings.
        assert!(Interner::from_parts("abab".into(), vec![(0, 2), (2, 4)]).is_err());
    }

    #[test]
    fn empty_string_interns_fine() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
        assert_eq!(i.intern(""), e);
        assert_eq!(i.len(), 1);
    }
}
