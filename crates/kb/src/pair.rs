//! KB pairs and ground truth.
//!
//! MinoanER is clean–clean ER: it links two individually duplicate-free
//! KBs. [`KbPair`] bundles the two sides; [`GroundTruth`] is the set of
//! known matching pairs used for evaluation.

use crate::hash::{FxHashMap, FxHashSet};
use crate::ids::{EntityId, KbSide};
use crate::model::KnowledgeBase;

/// The two KBs being resolved against each other.
#[derive(Debug, Clone)]
pub struct KbPair {
    /// `E1` in the paper's notation.
    pub first: KnowledgeBase,
    /// `E2` in the paper's notation.
    pub second: KnowledgeBase,
}

impl KbPair {
    /// Bundles two KBs.
    pub fn new(first: KnowledgeBase, second: KnowledgeBase) -> Self {
        Self { first, second }
    }

    /// The KB on `side`.
    pub fn kb(&self, side: KbSide) -> &KnowledgeBase {
        match side {
            KbSide::First => &self.first,
            KbSide::Second => &self.second,
        }
    }

    /// Mutable access to the KB on `side` (the delta layer's entry
    /// point for upserts and deletes).
    pub fn kb_mut(&mut self, side: KbSide) -> &mut KnowledgeBase {
        match side {
            KbSide::First => &mut self.first,
            KbSide::Second => &mut self.second,
        }
    }

    /// The side with fewer entities (H2 iterates the smaller KB).
    pub fn smaller_side(&self) -> KbSide {
        if self.first.entity_count() <= self.second.entity_count() {
            KbSide::First
        } else {
            KbSide::Second
        }
    }

    /// The Cartesian comparison count `|E1| · |E2|` (brute-force baseline
    /// of Table II), saturating at `u128` scale.
    pub fn cartesian_comparisons(&self) -> u128 {
        self.first.entity_count() as u128 * self.second.entity_count() as u128
    }
}

/// A matching between the two sides: a set of `(e1, e2)` pairs.
///
/// Used both for ground truth and for algorithm output. Clean–clean ER
/// output should be a partial matching (each entity in at most one pair);
/// [`Matching::is_partial_matching`] checks that invariant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matching {
    pairs: Vec<(EntityId, EntityId)>,
    set: FxHashSet<(EntityId, EntityId)>,
}

impl Matching {
    /// Creates an empty matching.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a matching from pairs, dropping exact duplicates.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (EntityId, EntityId)>) -> Self {
        let mut m = Self::new();
        for (a, b) in pairs {
            m.insert(a, b);
        }
        m
    }

    /// Adds a pair; returns `false` if it was already present.
    pub fn insert(&mut self, e1: EntityId, e2: EntityId) -> bool {
        if self.set.insert((e1, e2)) {
            self.pairs.push((e1, e2));
            true
        } else {
            false
        }
    }

    /// Whether the pair is present.
    pub fn contains(&self, e1: EntityId, e2: EntityId) -> bool {
        self.set.contains(&(e1, e2))
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the matching is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, EntityId)> + '_ {
        self.pairs.iter().copied()
    }

    /// The distinct first-KB entities mentioned.
    pub fn first_entities(&self) -> FxHashSet<EntityId> {
        self.pairs.iter().map(|&(a, _)| a).collect()
    }

    /// The distinct second-KB entities mentioned.
    pub fn second_entities(&self) -> FxHashSet<EntityId> {
        self.pairs.iter().map(|&(_, b)| b).collect()
    }

    /// Whether no entity participates in more than one pair.
    pub fn is_partial_matching(&self) -> bool {
        self.first_entities().len() == self.pairs.len()
            && self.second_entities().len() == self.pairs.len()
    }

    /// Map from first-KB entity to its matched second-KB entities.
    pub fn by_first(&self) -> FxHashMap<EntityId, Vec<EntityId>> {
        let mut m: FxHashMap<EntityId, Vec<EntityId>> = FxHashMap::default();
        for &(a, b) in &self.pairs {
            m.entry(a).or_default().push(b);
        }
        m
    }

    /// Retains only pairs satisfying `keep`.
    pub fn retain(&mut self, mut keep: impl FnMut(EntityId, EntityId) -> bool) {
        let set = &mut self.set;
        self.pairs.retain(|&(a, b)| {
            let k = keep(a, b);
            if !k {
                set.remove(&(a, b));
            }
            k
        });
    }
}

/// Ground truth for a KB pair: the known matches, as `(e1, e2)` pairs.
pub type GroundTruth = Matching;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::KbBuilder;

    fn kb(name: &str, n: usize) -> KnowledgeBase {
        let mut b = KbBuilder::new(name);
        for i in 0..n {
            b.add_literal(&format!("{name}:{i}"), "name", &format!("x{i}"));
        }
        b.finish()
    }

    #[test]
    fn smaller_side_prefers_first_on_tie() {
        let p = KbPair::new(kb("a", 3), kb("b", 3));
        assert_eq!(p.smaller_side(), KbSide::First);
        let p = KbPair::new(kb("a", 5), kb("b", 3));
        assert_eq!(p.smaller_side(), KbSide::Second);
        assert_eq!(p.cartesian_comparisons(), 15);
    }

    #[test]
    fn matching_deduplicates() {
        let mut m = Matching::new();
        assert!(m.insert(EntityId(0), EntityId(1)));
        assert!(!m.insert(EntityId(0), EntityId(1)));
        assert_eq!(m.len(), 1);
        assert!(m.contains(EntityId(0), EntityId(1)));
        assert!(!m.contains(EntityId(1), EntityId(0)));
    }

    #[test]
    fn partial_matching_detection() {
        let m = Matching::from_pairs([(EntityId(0), EntityId(1)), (EntityId(1), EntityId(2))]);
        assert!(m.is_partial_matching());
        let m = Matching::from_pairs([(EntityId(0), EntityId(1)), (EntityId(0), EntityId(2))]);
        assert!(!m.is_partial_matching());
    }

    #[test]
    fn retain_removes_from_both_views() {
        let mut m = Matching::from_pairs([(EntityId(0), EntityId(1)), (EntityId(2), EntityId(3))]);
        m.retain(|a, _| a != EntityId(0));
        assert_eq!(m.len(), 1);
        assert!(!m.contains(EntityId(0), EntityId(1)));
        assert!(m.contains(EntityId(2), EntityId(3)));
        // Re-inserting a removed pair must succeed.
        assert!(m.insert(EntityId(0), EntityId(1)));
    }

    #[test]
    fn by_first_groups_pairs() {
        let m = Matching::from_pairs([
            (EntityId(0), EntityId(1)),
            (EntityId(0), EntityId(2)),
            (EntityId(3), EntityId(4)),
        ]);
        let g = m.by_first();
        assert_eq!(g[&EntityId(0)].len(), 2);
        assert_eq!(g[&EntityId(3)], vec![EntityId(4)]);
    }
}
