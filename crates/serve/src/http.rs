//! `minoan-http` — an HTTP/1.1 serving front-end over the [`JobQueue`].
//!
//! `minoaner serve --listen-http <addr>` exposes the live admission
//! queue to anything that speaks HTTP — browsers, `curl`, load
//! balancers, Prometheus scrapers — without adding a dependency: the
//! server is a hand-rolled, strictly bounded HTTP/1.1 implementation on
//! `std` alone, matching the workspace's vendored-shim constraint. It
//! can run next to the line-JSON protocol ([`crate::daemon`]) on the
//! same queue; both delegate every operation to the shared
//! queue-fronting request layer, so jobs take the identical
//! parse → validate → admit path and reports are bit-identical to
//! `minoaner batch` and solo sequential runs.
//!
//! ## Endpoints
//!
//! | Method & path | Body | Response |
//! |---------------|------|----------|
//! | `POST /v1/jobs` | a manifest job object (see [`crate::manifest`]) | `201` `{"id":N,"name":"…"}` + `Location`; `400` bad job; `409` queue closed; `429` + `Retry-After` overload shed |
//! | `GET /v1/jobs` | — | `200` the status body: `accepting`, phase counts, `telemetry` ([`QueueStats`](crate::scheduler::QueueStats)), `jobs` list; `?status=<s>` narrows by phase (`queued\|running\|done`) or terminal status (`ok\|failed\|cancelled\|timed_out\|poisoned\|killed_over_budget`), `?limit=<n>` caps the list (counts stay fleet-wide) |
//! | `GET /v1/jobs/{id}` | — | `200` `{"id","name","phase",…}`, plus `"fingerprint"` and the full `"report"` once terminal; `?wait=true` blocks until terminal; `404` unknown id |
//! | `GET /v1/jobs/{id}/trace` | — | `200` the job's span trees as JSON, one tree per attempt (each retry runs under a fresh trace id); spans carry name, level, start/duration µs, detail and nested events; `404` unknown id |
//! | `GET /v1/events` | — | `200` a live [server-sent-events](https://html.spec.whatwg.org/multipage/server-sent-events.html) stream (`text/event-stream`) of job lifecycle and index events from now on; `?job=<id>` narrows to one job, `?level=error\|warn\|info\|debug` widens/narrows verbosity (default `info`); a subscriber lapped by the bounded ring gets an `event: dropped` frame with the gap size, and one stalled past the write timeout is disconnected without ever blocking the scheduler |
//! | `DELETE /v1/jobs/{id}` | — | `200` `{"id":N,"outcome":"cancelled\|cancelling\|done"}`; `404` unknown id |
//! | `POST /v1/indexes` | a manifest job object | `201` `{"job":N,"index":"…"}` + `Location: /v1/indexes/{name}` — builds through the supervised queue, then persists the index artifact (wait on `/v1/jobs/{N}?wait=true`); `409` the index already exists / queue closed; `503` index serving disabled |
//! | `GET /v1/indexes` | — | `200` `{"indexes":[{"id","file_bytes","loaded"}],"cache":{…}}` |
//! | `GET /v1/indexes/{id}` | — | `200` artifact metadata: sizes, entity counts, build timings, format version; `404` unknown index |
//! | `DELETE /v1/indexes/{id}` | — | `200` `{"index":"…","deleted":true}`; `404` unknown index |
//! | `PATCH /v1/indexes/{id}` | `{"deltas":[{"op":"upsert"\|"delete","side":"first"\|"second","uri":"…","statements":[…]}]}` (see [`minoan_kb::delta`]) | `202` `{"job":N,"index":"…"}` + `Location: /v1/jobs/{N}` — admits an **incremental delta-resolution** job: the artifact is loaded, only the delta's affected neighborhood is re-resolved (bit-identical to a from-scratch rebuild of the final KB state), and the file is atomically rewritten; `?wait=true` blocks until the patch job is terminal; `404` unknown index; `409` another patch for this index is still in flight; `400` malformed delta stream |
//! | `GET /v1/indexes/{id}/match?entity=<iri>&k=<n>` | — | `200` the hot match path: `matches`, top-`k` `candidates` with scores, and `stage_timings_ms` whose build-once stages (`ingest`, `blocking`, `similarities`) are always `0` — the answer comes from the loaded artifact, never from re-running the pipeline; `404` unknown index or entity |
//! | `GET /v1/metrics` | — | `200` Prometheus text (`text/plain; version=0.0.4`), see [`prometheus_metrics`] |
//! | `POST /v1/shutdown` | optional `{"mode":"drain"\|"cancel"}` | `200` `{"shutting_down":true,"mode":"…"}`; the server drains and exits |
//!
//! Unknown paths are `404`; known paths with the wrong method are `405`
//! with an `Allow` header. Responses are JSON (`application/json`)
//! except the metrics text.
//!
//! ## Error schema
//!
//! Every error body is the **unified error object** shared with the
//! line-JSON protocol:
//!
//! ```json
//! {"error":{"code":"not_found","message":"…","retryable":false}}
//! ```
//!
//! `code` is the machine-readable name of the HTTP status
//! (`bad_request`, `unauthorized`, `not_found`, `method_not_allowed`,
//! `conflict`, `payload_too_large`, `overloaded`, `headers_too_large`,
//! `not_implemented`, `unavailable`, `http_version_not_supported`);
//! `retryable` is `true` exactly for `429`/`503`, which also carry
//! `Retry-After`. Status codes and headers are unchanged from the
//! pre-unified schema — only the body shape is richer.
//!
//! ## Artifact wire format
//!
//! The files behind `/v1/indexes` use the checksummed section container
//! of [`minoan_kb::artifact`]: an 8-byte magic (`MINOANIX`), a `u32`
//! format version, a section table (tag, offset, length, FNV-1a
//! checksum per section) and the section payloads — URI interners,
//! token sets, blocks, the CSR similarity index and the final matching
//! (see [`minoan_core::artifact`] for the section layout). Truncated,
//! mis-versioned or bit-flipped files are rejected at load with
//! structured errors, surfaced here as `503`.
//!
//! ## Authentication
//!
//! With an auth token configured ([`HttpOptions::auth_token`],
//! `--auth-token` on the CLI), **every** endpoint requires
//! `Authorization: Bearer <token>`. The comparison is constant-time in
//! the token bytes (the supplied length is not hidden); a missing or
//! wrong token gets `401` with a `WWW-Authenticate: Bearer` header and
//! does not disturb running jobs.
//!
//! ## Request limits and error codes
//!
//! The parser is strictly bounded and returns an error response instead
//! of panicking or consuming unbounded memory:
//!
//! | Limit | Bound | Status |
//! |-------|-------|--------|
//! | Request line | [`MAX_REQUEST_LINE_BYTES`] | `431` |
//! | One header line | [`MAX_HEADER_LINE_BYTES`] | `431` |
//! | Header count | [`MAX_HEADER_COUNT`] | `431` |
//! | Header section | [`MAX_HEADER_BYTES`] | `431` |
//! | Body (`Content-Length`) | [`MAX_BODY_BYTES`] | `413` |
//!
//! Malformed input — a garbled request line, a non-numeric
//! `Content-Length`, a body shorter than declared, invalid UTF-8 where
//! JSON is expected — is `400`; `Transfer-Encoding` (chunked bodies) is
//! not supported (`501`); HTTP versions other than 1.0/1.1 are `505`.
//! After an error that may have desynchronized framing the connection
//! closes (`Connection: close`); otherwise connections are keep-alive
//! and requests on one connection are processed strictly in order.
//!
//! ## Threading model
//!
//! One thread per connection, spawned from the same accept loop
//! structure as the line-JSON daemon: the listener polls with the
//! shutdown flag, each connection gets a read timeout so an idle client
//! cannot outlive a shutdown, and a blocking `?wait=true` request parks
//! on the queue's condvar (jobs always terminate, so shutdown cannot
//! be wedged by a waiter). Handler threads are capped
//! ([`HttpOptions::max_connections`], default
//! [`DEFAULT_MAX_CONNECTIONS`]): a connection over the cap gets an
//! immediate `503` + `Retry-After` written from the accept loop and is
//! closed, so a connection flood cannot exhaust threads or starve the
//! line-JSON front-end.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use minoan_kb::Json;
use minoan_obs::{trace, Level};

use crate::daemon::{run_server, Frontends, POLL_INTERVAL};
use crate::events::{record_json, EventFilter, MAX_EVENT_BATCH};
use crate::intake::{self, ShutdownMode};
use crate::registry::IndexRegistry;
use crate::report::{peak_rss_bytes, JobReport, ServeReport};
use crate::scheduler::{CancelOutcome, CancelToken, JobQueue, ServeOptions};
use crate::telemetry;

/// Maximum bytes in the request line (method + target + version).
pub const MAX_REQUEST_LINE_BYTES: usize = 8 << 10;
/// Maximum bytes in one header line.
pub const MAX_HEADER_LINE_BYTES: usize = 8 << 10;
/// Maximum number of header fields per request.
pub const MAX_HEADER_COUNT: usize = 64;
/// Maximum total bytes of the header section.
pub const MAX_HEADER_BYTES: usize = 32 << 10;
/// Maximum request body size (`Content-Length` above this is `413`).
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Concurrent connection-handler threads per listener unless
/// [`HttpOptions::max_connections`] overrides it.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// `Retry-After` seconds suggested on `429`/`503` rejections. Small on
/// purpose: shed decisions are per-request and the queue drains
/// continuously, so a quick retry is cheap and usually succeeds.
pub const RETRY_AFTER_SECS: u64 = 1;

/// Options for the HTTP front-end.
#[derive(Debug, Clone, Default)]
pub struct HttpOptions {
    /// Static bearer token; when set, every request must carry
    /// `Authorization: Bearer <token>` (constant-time comparison).
    pub auth_token: Option<String>,
    /// Cap on concurrent connection-handler threads (`None` =
    /// [`DEFAULT_MAX_CONNECTIONS`]). A connection over the cap gets an
    /// immediate `503` + `Retry-After` and is closed — it never ties up
    /// a handler thread.
    pub max_connections: Option<usize>,
}

/// Runs the HTTP front-end alone on an already-bound listener until a
/// client posts `/v1/shutdown`, then drains the queue and returns the
/// fleet report. Equivalent to [`run_server`] with only the `http`
/// front-end; use [`run_server`] directly to serve HTTP and line-JSON
/// side by side.
pub fn run_http(
    listener: TcpListener,
    opts: &ServeOptions,
    http_options: HttpOptions,
    on_done: impl Fn(&JobReport) + Sync,
) -> std::io::Result<ServeReport> {
    run_server(
        Frontends {
            http: Some(listener),
            http_options,
            ..Frontends::default()
        },
        opts,
        on_done,
    )
}

/// One parsed request.
struct Request {
    method: String,
    /// Path with the query string split off.
    path: String,
    /// Query parameters, in order, `key=value` pairs. Values are
    /// percent-decoded (entity IRIs in match queries carry `:` and `/`,
    /// which strict clients encode); keys are plain ASCII names.
    query: Vec<(String, String)>,
    /// Header fields with lower-cased names, in arrival order.
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Request {
    /// First header with this (lower-case) name.
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the query asks for `wait` (`?wait=true` / `?wait=1`).
    fn wants_wait(&self) -> bool {
        self.query
            .iter()
            .any(|(k, v)| k == "wait" && matches!(v.as_str(), "true" | "1"))
    }

    /// First query parameter with this name.
    fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection.
    fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// How handling one request ends.
enum HttpError {
    /// Respond with this status and `{"error": message}`, then close
    /// the connection (framing may be desynchronized after an error).
    Status(u16, String),
    /// Drop the connection without a response (I/O error, shutdown,
    /// client vanished mid-request).
    Disconnect,
}

/// One response ready to serialize.
struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    fn json(status: u16, body: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.compact().into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// An error response in the unified schema:
    /// `{"error":{"code","message","retryable"}}`, with the code and
    /// retryability derived from the status.
    fn error(status: u16, message: impl Into<String>) -> Response {
        let body = intake::error_body(
            intake::code_for_status(status),
            message,
            intake::retryable_status(status),
        );
        Response::json(status, &Json::obj([("error", body)]))
    }

    /// The response for a failed index operation, including the
    /// `Retry-After` hint on retryable statuses.
    fn index_error(rejection: &intake::IndexRejection) -> Response {
        let mut response = Response::json(
            rejection.status(),
            &Json::obj([("error", rejection.to_error_body())]),
        );
        if rejection.retryable() {
            response
                .extra_headers
                .push(("Retry-After", RETRY_AFTER_SECS.to_string()));
        }
        response
    }
}

/// Serves one HTTP connection until EOF, an error response, a
/// `Connection: close` request or daemon shutdown. Spawned by the
/// shared accept loop in [`crate::daemon::run_server`].
pub(crate) fn handle_connection(
    stream: TcpStream,
    queue: &JobQueue,
    shutdown: &CancelToken,
    options: &HttpOptions,
    registry: Option<&IndexRegistry>,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL * 4));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        if shutdown.is_cancelled() {
            return;
        }
        let request = match read_request(&mut reader, &mut writer, shutdown) {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean close between requests
            Err(HttpError::Disconnect) => return,
            Err(HttpError::Status(status, message)) => {
                if write_response(&mut writer, &Response::error(status, message), true).is_ok() {
                    lingering_close(&mut reader);
                }
                return;
            }
        };
        // The SSE stream takes the connection over: it holds the socket
        // until the subscriber disconnects (or stalls past the write
        // timeout) or the daemon shuts down, so it never returns a
        // single Response through the normal path.
        if request.method == "GET" && request.path == "/v1/events" {
            if let Some(denied) = auth_failure(&request, options) {
                if write_response(&mut writer, &denied, true).is_ok() {
                    lingering_close(&mut reader);
                }
                return;
            }
            serve_events_stream(writer, &request, shutdown);
            return;
        }
        let t_request = Instant::now();
        let response = route(&request, queue, shutdown, options, registry);
        telemetry::HTTP_REQUEST.observe(t_request.elapsed());
        // After a shutdown request the flag is set; close either way.
        let close = request.wants_close() || shutdown.is_cancelled() || response.status >= 400;
        if write_response(&mut writer, &response, close).is_err() {
            return;
        }
        if close {
            lingering_close(&mut reader);
            return;
        }
    }
}

/// How long [`lingering_close`] keeps draining a slow client.
const LINGER_DEADLINE: Duration = Duration::from_secs(2);
/// How many leftover bytes [`lingering_close`] is willing to discard.
const LINGER_MAX_BYTES: usize = 1 << 20;

/// Closes a connection without losing the response: half-close the
/// write side, then drain whatever the client is still sending until
/// it sees our FIN and stops. Dropping the socket with unread input
/// would make the kernel turn the close into an RST, which can destroy
/// the just-written response before the client reads it — precisely on
/// the error paths (oversized request, early 4xx) where the client is
/// mid-send and the response matters most. Bounded in both time and
/// bytes so an abusive client cannot pin the handler thread. Shared
/// with the line-JSON daemon's oversized-frame close.
pub(crate) fn lingering_close(reader: &mut BufReader<TcpStream>) {
    let _ = reader.get_ref().shutdown(std::net::Shutdown::Write);
    let deadline = Instant::now() + LINGER_DEADLINE;
    let mut drained = 0usize;
    let mut sink = [0u8; 8 << 10];
    while Instant::now() < deadline && drained < LINGER_MAX_BYTES {
        // The stream keeps its POLL_INTERVAL-scaled read timeout, so
        // each failed tick is short.
        match reader.read(&mut sink) {
            Ok(0) => return, // client's FIN: a fully clean close
            Ok(n) => drained += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

/// A stalled SSE subscriber is dropped once a frame write blocks this
/// long. Generous against transient TCP stalls, tight enough that a
/// dead client cannot pin a handler thread while the ring laps it.
const SSE_WRITE_TIMEOUT: Duration = Duration::from_millis(500);

/// `GET /v1/events`: the live server-sent-events stream. Each
/// subscriber holds a private cursor into the shared trace ring
/// starting at "now" (history is the `/v1/jobs/{id}/trace` endpoint's
/// job, not this one's) and forwards every matching event as an SSE
/// frame. Fan-out is pull-based — emitters only push into the ring and
/// never see subscribers — so a slow or stalled client can *only* hurt
/// itself: when its cursor is lapped by the bounded ring it gets a
/// `dropped` frame with the gap size, and when a write blocks past
/// [`SSE_WRITE_TIMEOUT`] the connection is closed and a `warn`-level
/// `http.events` record announces the drop to surviving subscribers.
fn serve_events_stream(mut writer: TcpStream, request: &Request, shutdown: &CancelToken) {
    use std::fmt::Write as _;
    let job = match request.query_param("job") {
        None => None,
        Some(raw) => match raw.parse::<i64>() {
            Ok(id) => Some(id),
            Err(_) => {
                let denied =
                    Response::error(400, format!("job must be an integer job id, got {raw:?}"));
                let _ = write_response(&mut writer, &denied, true);
                return;
            }
        },
    };
    let level = match request.query_param("level") {
        None => Level::Info,
        Some(raw) => match raw.parse::<Level>() {
            Ok(level) => level,
            Err(e) => {
                let denied = Response::error(400, e);
                let _ = write_response(&mut writer, &denied, true);
                return;
            }
        },
    };
    let filter = EventFilter { job, level };
    let _ = writer.set_write_timeout(Some(SSE_WRITE_TIMEOUT));
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
    // An immediate comment frame confirms the subscription to clients
    // that wait for the first byte before reporting "connected".
    if writer.write_all(head.as_bytes()).is_err() || writer.write_all(b": subscribed\n\n").is_err()
    {
        return;
    }
    let collector = trace::collector();
    let mut cursor = collector.next_seq();
    let mut sent = 0u64;
    while !shutdown.is_cancelled() {
        let batch = collector.wait_since(cursor, MAX_EVENT_BATCH, POLL_INTERVAL * 4);
        let mut frame = String::new();
        if batch.dropped > 0 {
            // The ring lapped this subscriber's cursor: say how many
            // records are gone rather than silently skipping them.
            let _ = write!(
                frame,
                "event: dropped\ndata: {{\"dropped\":{}}}\n\n",
                batch.dropped
            );
        }
        for record in &batch.records {
            if filter.matches(record) {
                let _ = write!(
                    frame,
                    "event: {}\ndata: {}\n\n",
                    record.name,
                    record_json(record).compact()
                );
                sent += 1;
            }
        }
        cursor = batch.next;
        if frame.is_empty() {
            // Keep-alive comment so dead connections surface as write
            // errors here instead of lingering forever.
            frame.push_str(": keep-alive\n\n");
        }
        if writer.write_all(frame.as_bytes()).is_err() || writer.flush().is_err() {
            minoan_obs::warn!(
                "http.events",
                "SSE subscriber dropped after {sent} events (stalled or disconnected)"
            );
            return;
        }
    }
}

/// Reads one request head + body. `Ok(None)` is a clean close before
/// any byte of a request.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    shutdown: &CancelToken,
) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(reader, MAX_REQUEST_LINE_BYTES, shutdown, 431)? else {
        return Ok(None);
    };
    let line = String::from_utf8(line)
        .map_err(|_| HttpError::Status(400, "request line is not valid UTF-8".into()))?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Status(
            400,
            format!("malformed request line {line:?}"),
        ));
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Status(
            505,
            format!("unsupported protocol version {version:?}"),
        ));
    }

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let Some(line) = read_line(reader, MAX_HEADER_LINE_BYTES, shutdown, 431)? else {
            return Err(HttpError::Status(
                400,
                "connection closed inside the header section".into(),
            ));
        };
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if headers.len() == MAX_HEADER_COUNT {
            return Err(HttpError::Status(
                431,
                format!("more than {MAX_HEADER_COUNT} header fields"),
            ));
        }
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::Status(
                431,
                format!("header section exceeds {MAX_HEADER_BYTES} bytes"),
            ));
        }
        let text = String::from_utf8(line)
            .map_err(|_| HttpError::Status(400, "header line is not valid UTF-8".into()))?;
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::Status(
                400,
                format!("malformed header line {text:?}"),
            ));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request_header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if request_header("transfer-encoding").is_some() {
        return Err(HttpError::Status(
            501,
            "transfer-encoding is not supported; send a Content-Length body".into(),
        ));
    }
    let content_length = match request_header("content-length") {
        None => 0,
        Some(v) => v.trim().parse::<usize>().map_err(|_| {
            HttpError::Status(400, format!("content-length {v:?} is not a valid length"))
        })?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::Status(
            413,
            format!(
                "request body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            ),
        ));
    }
    // `Expect: 100-continue` clients hold the body back until invited.
    if request_header("expect").is_some_and(|v| v.to_ascii_lowercase().contains("100-continue")) {
        writer
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .map_err(|_| HttpError::Disconnect)?;
    }
    let body = read_body(reader, content_length, shutdown)?;

    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let query = raw_query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), percent_decode(v)),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    Ok(Some(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    }))
}

/// Reads one CRLF/LF-terminated line as raw bytes, bounded by `limit`
/// (content bytes, terminator excluded — exceeding it is
/// `too_long_status`). Tolerates read timeouts by polling the shutdown
/// flag; `Ok(None)` is EOF before any byte.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    limit: usize,
    shutdown: &CancelToken,
    too_long_status: u16,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        // Bound every read so a line without a newline cannot grow past
        // the limit (+2 leaves room for the CRLF terminator itself).
        let budget = (limit + 2).saturating_sub(buf.len()) as u64;
        match reader.by_ref().take(budget).read_until(b'\n', &mut buf) {
            Ok(0) if buf.is_empty() => return Ok(None),
            Ok(_) if buf.ends_with(b"\n") => {
                buf.pop();
                if buf.ends_with(b"\r") {
                    buf.pop();
                }
                if buf.len() > limit {
                    return Err(HttpError::Status(
                        too_long_status,
                        format!("line exceeds the {limit}-byte limit"),
                    ));
                }
                return Ok(Some(buf));
            }
            Ok(_) if buf.len() > limit => {
                return Err(HttpError::Status(
                    too_long_status,
                    format!("line exceeds the {limit}-byte limit"),
                ));
            }
            // EOF mid-line: the client closed with a request in flight.
            Ok(_) => return Err(HttpError::Status(400, "truncated request".into())),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.is_cancelled() {
                    return Err(HttpError::Disconnect);
                }
            }
            Err(_) => return Err(HttpError::Disconnect),
        }
    }
}

/// Reads exactly `len` body bytes (the `Content-Length` contract),
/// tolerating read timeouts; a short body is a `400`.
fn read_body(
    reader: &mut BufReader<TcpStream>,
    len: usize,
    shutdown: &CancelToken,
) -> Result<Vec<u8>, HttpError> {
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(HttpError::Status(
                    400,
                    format!("request body truncated at {filled} of {len} bytes"),
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.is_cancelled() {
                    return Err(HttpError::Disconnect);
                }
            }
            Err(_) => return Err(HttpError::Disconnect),
        }
    }
    Ok(body)
}

/// Routes one request to its endpoint. Every queue operation delegates
/// to the shared request layer ([`crate::intake`]).
fn route(
    request: &Request,
    queue: &JobQueue,
    shutdown: &CancelToken,
    options: &HttpOptions,
    registry: Option<&IndexRegistry>,
) -> Response {
    if let Some(denied) = auth_failure(request, options) {
        return denied;
    }
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "jobs"]) => submit(request, queue),
        ("GET", ["v1", "jobs"]) => {
            let limit = match request.query_param("limit").map(str::parse::<usize>) {
                None => None,
                Some(Ok(n)) => Some(n),
                Some(Err(_)) => {
                    return Response::error(400, "limit must be a non-negative integer")
                }
            };
            let filter = intake::JobFilter {
                id: None,
                status: request.query_param("status").map(str::to_string),
                limit,
            };
            match intake::status_json(queue, !shutdown.is_cancelled(), &filter, registry) {
                Ok(body) => Response::json(200, &body),
                Err(e) => Response::error(400, e),
            }
        }
        ("GET", ["v1", "jobs", id]) => match parse_id(id) {
            Err(response) => response,
            Ok(id) => match intake::job_json(queue, id, request.wants_wait()) {
                None => Response::error(404, format!("unknown job id {id}")),
                Some(body) => Response::json(200, &body),
            },
        },
        ("GET", ["v1", "jobs", id, "trace"]) => match parse_id(id) {
            Err(response) => response,
            Ok(id) => match crate::events::job_trace_json(queue, id) {
                None => Response::error(404, format!("unknown job id {id}")),
                Some(body) => Response::json(200, &body),
            },
        },
        ("DELETE", ["v1", "jobs", id]) => match parse_id(id) {
            Err(response) => response,
            Ok(id) => match queue.cancel(id) {
                CancelOutcome::Unknown => Response::error(404, format!("unknown job id {id}")),
                outcome => Response::json(
                    200,
                    &Json::obj([
                        ("id", Json::num(id as f64)),
                        ("outcome", Json::str(outcome.label())),
                    ]),
                ),
            },
        },
        ("GET", ["v1", "metrics"]) => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: prometheus_metrics(queue, registry).into_bytes(),
            extra_headers: Vec::new(),
        },
        ("POST", ["v1", "shutdown"]) => {
            let mode_label = if request.body.is_empty() {
                None
            } else {
                match Json::parse_bytes(&request.body) {
                    Ok(body) => body.get("mode").and_then(Json::as_str).map(str::to_string),
                    Err(e) => return Response::error(400, format!("bad shutdown body: {e}")),
                }
            };
            match ShutdownMode::parse(mode_label.as_deref()) {
                Err(e) => Response::error(400, e),
                Ok(mode) => {
                    intake::shutdown(queue, shutdown, mode);
                    Response::json(
                        200,
                        &Json::obj([
                            ("shutting_down", Json::Bool(true)),
                            (
                                "mode",
                                Json::str(if mode == ShutdownMode::Cancel {
                                    "cancel"
                                } else {
                                    "drain"
                                }),
                            ),
                        ]),
                    )
                }
            }
        }
        ("POST", ["v1", "indexes"]) => {
            let job = match Json::parse_bytes(&request.body) {
                Ok(job) => job,
                Err(e) => return Response::error(400, format!("bad index body: {e}")),
            };
            match intake::index_build(queue, registry, &job) {
                Ok((id, name)) => {
                    let mut response = Response::json(
                        201,
                        &Json::obj([("job", Json::num(id as f64)), ("index", Json::str(&name))]),
                    );
                    response
                        .extra_headers
                        .push(("Location", format!("/v1/indexes/{name}")));
                    // `?wait=true` blocks the 201 until the build job ends,
                    // mirroring GET /v1/jobs/{id}?wait=true.
                    if request.wants_wait() {
                        let _ = intake::job_json(queue, id, true);
                    }
                    response
                }
                Err(rejection) => Response::index_error(&rejection),
            }
        }
        ("GET", ["v1", "indexes"]) => match intake::index_list(registry) {
            Ok(body) => Response::json(200, &body),
            Err(rejection) => Response::index_error(&rejection),
        },
        ("GET", ["v1", "indexes", id]) => match intake::index_meta(registry, id) {
            Ok(body) => Response::json(200, &body),
            Err(rejection) => Response::index_error(&rejection),
        },
        ("DELETE", ["v1", "indexes", id]) => match intake::index_delete(registry, id) {
            Ok(body) => Response::json(200, &body),
            Err(rejection) => Response::index_error(&rejection),
        },
        ("PATCH", ["v1", "indexes", id]) => {
            let body = match Json::parse_bytes(&request.body) {
                Ok(body) => body,
                Err(e) => return Response::error(400, format!("bad patch body: {e}")),
            };
            match intake::index_patch(queue, registry, id, &body) {
                Ok((job, index)) => {
                    let mut response = Response::json(
                        202,
                        &Json::obj([("job", Json::num(job as f64)), ("index", Json::str(&index))]),
                    );
                    response
                        .extra_headers
                        .push(("Location", format!("/v1/jobs/{job}")));
                    // `?wait=true` blocks the 202 until the patch job
                    // ends, mirroring POST /v1/indexes?wait=true.
                    if request.wants_wait() {
                        let _ = intake::job_json(queue, job, true);
                    }
                    response
                }
                Err(rejection) => Response::index_error(&rejection),
            }
        }
        ("GET", ["v1", "indexes", id, "match"]) => {
            let entity = request.query_param("entity").unwrap_or("");
            let k = match request.query_param("k") {
                None => intake::DEFAULT_MATCH_K,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        return Response::error(
                            400,
                            format!("k must be a positive integer, got {raw:?}"),
                        )
                    }
                },
            };
            match intake::index_match(registry, id, entity, k) {
                Ok(body) => Response::json(200, &body),
                Err(rejection) => Response::index_error(&rejection),
            }
        }
        (_, ["v1", "jobs"]) => method_not_allowed("GET, POST"),
        (_, ["v1", "jobs", _]) => method_not_allowed("GET, DELETE"),
        (_, ["v1", "jobs", _, "trace"]) => method_not_allowed("GET"),
        // `GET /v1/events` is intercepted before routing (it takes the
        // raw connection over); any other method lands here.
        (_, ["v1", "events"]) => method_not_allowed("GET"),
        (_, ["v1", "indexes"]) => method_not_allowed("GET, POST"),
        (_, ["v1", "indexes", _]) => method_not_allowed("GET, DELETE, PATCH"),
        (_, ["v1", "indexes", _, "match"]) => method_not_allowed("GET"),
        (_, ["v1", "metrics"]) => method_not_allowed("GET"),
        (_, ["v1", "shutdown"]) => method_not_allowed("POST"),
        _ => Response::error(404, format!("no such endpoint {}", request.path)),
    }
}

/// Decodes `%XX` escapes and `+`-as-space in a query value. Malformed
/// escapes pass through verbatim — the id/IRI lookup will simply miss.
fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|pair| {
                    let high = (pair[0] as char).to_digit(16)?;
                    let low = (pair[1] as char).to_digit(16)?;
                    Some((high * 16 + low) as u8)
                });
                match hex {
                    Some(byte) => {
                        out.push(byte);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            byte => out.push(byte),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// `POST /v1/jobs`: parse, validate and admit one job.
fn submit(request: &Request, queue: &JobQueue) -> Response {
    let job = match Json::parse_bytes(&request.body) {
        Ok(job) => job,
        Err(e) => return Response::error(400, format!("bad job body: {e}")),
    };
    match intake::submit_job(queue, &job) {
        Ok((id, name)) => {
            let mut response = Response::json(
                201,
                &Json::obj([("id", Json::num(id as f64)), ("name", Json::str(name))]),
            );
            response
                .extra_headers
                .push(("Location", format!("/v1/jobs/{id}")));
            response
        }
        // Closed queue = shutting down: a conflict with server state,
        // not a bad request.
        Err(e @ intake::SubmitRejection::Closed) => Response::error(409, e.to_string()),
        // Overload shed: the standard rate-limit shape, so off-the-shelf
        // clients back off without bespoke handling.
        Err(e @ intake::SubmitRejection::Overloaded(_)) => {
            let mut response = Response::error(429, e.to_string());
            response
                .extra_headers
                .push(("Retry-After", RETRY_AFTER_SECS.to_string()));
            response
        }
        Err(e) => Response::error(400, e.to_string()),
    }
}

fn method_not_allowed(allow: &'static str) -> Response {
    let mut response = Response::error(405, format!("method not allowed; allowed: {allow}"));
    response.extra_headers.push(("Allow", allow.to_string()));
    response
}

fn parse_id(segment: &str) -> Result<usize, Response> {
    segment.parse::<usize>().map_err(|_| {
        Response::error(
            400,
            format!("job id must be a non-negative integer, got {segment:?}"),
        )
    })
}

/// The `401` for a request that fails bearer-token auth, or `None` when
/// the request is authorized (or no token is configured). Shared by the
/// normal [`route`] path and the SSE takeover, which must authenticate
/// *before* committing the connection to a stream.
fn auth_failure(request: &Request, options: &HttpOptions) -> Option<Response> {
    let expected = options.auth_token.as_ref()?;
    let supplied = request
        .header("authorization")
        .and_then(bearer_token)
        .unwrap_or("");
    if constant_time_eq(expected, supplied) {
        return None;
    }
    let mut response = Response::error(401, "missing or invalid bearer token");
    response
        .extra_headers
        .push(("WWW-Authenticate", "Bearer".to_string()));
    Some(response)
}

/// Extracts the token from an `Authorization: Bearer <token>` value
/// (scheme case-insensitive).
fn bearer_token(value: &str) -> Option<&str> {
    let (scheme, token) = value.split_once(' ')?;
    scheme.eq_ignore_ascii_case("bearer").then(|| token.trim())
}

/// Byte-wise comparison whose running time depends only on the lengths
/// of the inputs, never on where they differ — the supplied token's
/// length is observable, its bytes are not.
fn constant_time_eq(expected: &str, supplied: &str) -> bool {
    let (a, b) = (expected.as_bytes(), supplied.as_bytes());
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= (x ^ y) as usize;
    }
    diff == 0
}

/// Serializes one response; `close` decides the `Connection` header.
fn write_response(writer: &mut TcpStream, response: &Response, close: bool) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut head = String::new();
    let _ = write!(
        head,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    let _ = write!(
        head,
        "Connection: {}\r\n\r\n",
        if close { "close" } else { "keep-alive" }
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// The raw `503` written to a connection rejected by the concurrency
/// cap, before any request is read: the accept loop writes it inline
/// (no handler thread) and closes. Built by hand because the normal
/// response path assumes a parsed request.
pub(crate) fn overloaded_503() -> String {
    let body = r#"{"error":{"code":"unavailable","message":"connection limit reached; retry shortly","retryable":true}}"#;
    format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nRetry-After: {RETRY_AFTER_SECS}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// How long [`reject_over_capacity`] lingers on a rejected connection.
/// An order of magnitude tighter than [`LINGER_DEADLINE`] because this
/// runs on the accept thread, not a handler thread.
const REJECT_LINGER_DEADLINE: Duration = Duration::from_millis(100);
/// Leftover-byte cap for [`reject_over_capacity`]'s drain.
const REJECT_LINGER_MAX_BYTES: usize = 16 << 10;

/// Rejects one over-cap connection: writes [`overloaded_503`], then
/// half-closes and briefly drains the client's unread request bytes so
/// the close sends a FIN, not an RST that would destroy the response
/// mid-flight (the same hazard [`lingering_close`] guards against —
/// here the *whole request* is still queued unread). Runs inline on
/// the accept thread, so both bounds are tight.
pub(crate) fn reject_over_capacity(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    if stream.write_all(overloaded_503().as_bytes()).is_err() {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = Instant::now() + REJECT_LINGER_DEADLINE;
    let mut drained = 0usize;
    let mut sink = [0u8; 8 << 10];
    while Instant::now() < deadline && drained < REJECT_LINGER_MAX_BYTES {
        match stream.read(&mut sink) {
            Ok(0) => return, // client's FIN: a fully clean close
            Ok(n) => drained += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

/// Renders the queue's live telemetry ([`JobQueue::stats`]) as
/// Prometheus text-format metrics (`text/plain; version=0.0.4`): queue
/// depth and running/done counts, admitted footprint vs. memory budget,
/// thread allotments, cumulative per-stage pipeline timings, admission
/// estimate vs. measured RSS-delta totals, the process peak RSS, and —
/// once the work-stealing pool is live — pool worker/steal/queue-depth
/// counters including per-worker task counts. With an index registry
/// live, the `minoan_index_*` family reports its cache: loaded entries,
/// resident vs. budget bytes, and hit/miss/eviction/invalidation
/// counters (invalidations are cache drops caused by `PATCH` rewrites,
/// distinct from LRU budget evictions).
pub fn prometheus_metrics(queue: &JobQueue, registry: Option<&IndexRegistry>) -> String {
    let stats = queue.stats();
    let mut text = PromText::new();
    let gauges = [
        (
            "minoan_jobs_queued",
            "Jobs awaiting dispatch.",
            stats.queued as f64,
        ),
        (
            "minoan_jobs_running",
            "Jobs currently running.",
            stats.running as f64,
        ),
        (
            "minoan_jobs_running_peak",
            "High-water mark of concurrently running jobs.",
            stats.peak_running as f64,
        ),
        (
            "minoan_admitted_bytes",
            "Footprint estimates of admitted (running) jobs, charged against the memory budget.",
            stats.admitted_bytes as f64,
        ),
        (
            "minoan_memory_budget_bytes",
            "Admission memory budget (0 = unlimited).",
            stats.memory_budget_bytes as f64,
        ),
        (
            "minoan_threads_in_use",
            "Worker threads allotted to running jobs.",
            stats.threads_in_use as f64,
        ),
        (
            "minoan_threads_budget",
            "Total worker-thread budget.",
            stats.threads_budget as f64,
        ),
        (
            "minoan_fleet_slots",
            "Fleet slots (max concurrent jobs).",
            stats.slots as f64,
        ),
    ];
    for (name, help, value) in gauges {
        text.single("gauge", name, help, value);
    }
    if text.family(
        "minoan_jobs_done_total",
        "counter",
        "Terminal jobs by status.",
    ) {
        let by_status = [
            ("ok", stats.done_ok),
            ("failed", stats.done_failed),
            ("cancelled", stats.done_cancelled),
            ("timed_out", stats.done_timed_out),
            ("poisoned", stats.done_poisoned),
            ("killed_over_budget", stats.done_killed_over_budget),
        ];
        for (status, count) in by_status {
            text.sample(
                "minoan_jobs_done_total",
                &format!("{{status=\"{status}\"}}"),
                count as f64,
            );
        }
    }
    text.single(
        "counter",
        "minoan_jobs_retries_scheduled_total",
        "Retry attempts re-queued after transient failures.",
        stats.retries_scheduled as f64,
    );
    text.single(
        "counter",
        "minoan_jobs_shed_total",
        "Submissions rejected by overload shedding.",
        stats.shed_total as f64,
    );
    let stages = [
        ("tokenize", stats.stage_totals.tokenize),
        ("names_h1", stats.stage_totals.names_h1),
        ("blocking", stats.stage_totals.blocking),
        ("similarities", stats.stage_totals.similarities),
        ("matching", stats.stage_totals.matching),
    ];
    if text.family(
        "minoan_stage_seconds_total",
        "counter",
        "Cumulative pipeline stage time over finished jobs.",
    ) {
        for (stage, duration) in stages {
            text.sample(
                "minoan_stage_seconds_total",
                &format!("{{stage=\"{stage}\"}}"),
                duration.as_secs_f64(),
            );
        }
    }
    let counters = [
        (
            "minoan_job_wall_seconds_total",
            "Cumulative wall-clock job time (including input loading) over finished jobs.",
            stats.wall_total.as_secs_f64(),
        ),
        (
            "minoan_estimated_bytes_total",
            "Sum of admission footprint estimates over finished jobs.",
            stats.estimated_bytes_total as f64,
        ),
        (
            "minoan_rss_delta_bytes_total",
            "Sum of measured peak-RSS deltas over finished jobs.",
            stats.rss_delta_bytes_total as f64,
        ),
    ];
    for (name, help, value) in counters {
        text.single("counter", name, help, value);
    }
    if let Some(rss) = peak_rss_bytes() {
        text.single(
            "gauge",
            "minoan_process_peak_rss_bytes",
            "Process peak resident set size (VmHWM).",
            rss as f64,
        );
    }
    // Work-stealing pool telemetry, present once the first pool-backed
    // wave has started the process-wide pool (the snapshot never starts
    // it, so an all-rayon/sequential process simply omits the family).
    if let Some(pool) = &stats.pool {
        text.single(
            "gauge",
            "minoan_pool_workers",
            "Worker threads of the process-wide work-stealing pool.",
            pool.workers as f64,
        );
        text.single(
            "gauge",
            "minoan_pool_queued_tasks",
            "Tasks sitting in pool worker deques right now.",
            pool.queued as f64,
        );
        text.single(
            "counter",
            "minoan_pool_steals_total",
            "Tasks taken from another worker's deque.",
            pool.steals as f64,
        );
        text.single(
            "counter",
            "minoan_pool_injected_total",
            "Jobs injected into the pool over its lifetime.",
            pool.injected as f64,
        );
        text.single(
            "counter",
            "minoan_pool_tasks_total",
            "Quantum-bounded wave tasks executed across all workers.",
            pool.tasks_total() as f64,
        );
        if text.family(
            "minoan_pool_worker_tasks_total",
            "counter",
            "Wave tasks executed, per pool worker.",
        ) {
            for (worker, tasks) in pool.worker_tasks.iter().enumerate() {
                text.sample(
                    "minoan_pool_worker_tasks_total",
                    &format!("{{worker=\"{worker}\"}}"),
                    *tasks as f64,
                );
            }
        }
    }
    if let Some(registry) = registry {
        let (loaded, cached, budget, hits, misses, evictions, invalidations) =
            registry.stats_counts();
        let index_gauges = [
            (
                "minoan_index_loaded",
                "Index artifacts currently loaded in the registry cache.",
                loaded as f64,
            ),
            (
                "minoan_index_cached_bytes",
                "Resident bytes of loaded index artifacts (file size as the proxy).",
                cached as f64,
            ),
            (
                "minoan_index_cache_budget_bytes",
                "Byte budget of the loaded-index LRU cache.",
                budget as f64,
            ),
        ];
        for (name, help, value) in index_gauges {
            text.single("gauge", name, help, value);
        }
        let index_counters = [
            (
                "minoan_index_cache_hits_total",
                "Match queries answered from an already-loaded artifact.",
                hits as f64,
            ),
            (
                "minoan_index_cache_misses_total",
                "Match queries that had to read the artifact from disk.",
                misses as f64,
            ),
            (
                "minoan_index_cache_evictions_total",
                "Loaded artifacts dropped by LRU byte-budget pressure.",
                evictions as f64,
            ),
            (
                "minoan_index_cache_invalidations_total",
                "Loaded artifacts dropped because a PATCH rewrote the file.",
                invalidations as f64,
            ),
        ];
        for (name, help, value) in index_counters {
            text.single("counter", name, help, value);
        }
    }
    // Latency histograms from the process-wide observability layer.
    text.histogram(
        "minoan_match_query_seconds",
        "End-to-end /v1/indexes/{id}/match latency (artifact load + query).",
        &[(None, telemetry::MATCH_QUERY.snapshot())],
    );
    text.histogram(
        "minoan_http_request_seconds",
        "HTTP request handling time (auth + routing + handler; SSE streams excluded).",
        &[(None, telemetry::HTTP_REQUEST.snapshot())],
    );
    text.histogram(
        "minoan_job_queue_wait_seconds",
        "Time jobs spent queued before dispatch, including retry backoff.",
        &[(None, telemetry::QUEUE_WAIT.snapshot())],
    );
    let stage_series: Vec<_> = telemetry::stage_histograms()
        .iter()
        .map(|(stage, histogram)| (Some(("stage", *stage)), histogram.snapshot()))
        .collect();
    text.histogram(
        "minoan_job_stage_seconds",
        "Per-job pipeline stage latency over finished jobs.",
        &stage_series,
    );
    text.single(
        "counter",
        "minoan_trace_records_dropped_total",
        "Trace-ring records overwritten before every reader consumed them.",
        trace::collector().dropped_total() as f64,
    );
    text.out
}

/// Incremental Prometheus text-format (0.0.4) builder. The format
/// allows each family's `# HELP`/`# TYPE` header at most once per
/// exposition; the builder enforces that by remembering every family it
/// has opened. A repeat is a bug — it panics under debug assertions and
/// is skipped in release builds, rather than emitting an exposition
/// scrapers reject wholesale.
struct PromText {
    out: String,
    families: Vec<String>,
}

impl PromText {
    fn new() -> PromText {
        PromText {
            out: String::new(),
            families: Vec::new(),
        }
    }

    /// Opens a family by writing its `HELP`/`TYPE` header. Returns
    /// whether sample lines may follow (`false` only on the
    /// duplicate-family bug path).
    fn family(&mut self, name: &str, kind: &str, help: &str) -> bool {
        use std::fmt::Write as _;
        if self.families.iter().any(|family| family == name) {
            debug_assert!(false, "duplicate metric family {name}");
            return false;
        }
        self.families.push(name.to_string());
        let _ = write!(self.out, "# HELP {name} {help}\n# TYPE {name} {kind}\n");
        true
    }

    /// One sample line; `labels` is empty or a braced `{k="v",…}` set.
    fn sample(&mut self, name: &str, labels: &str, value: f64) {
        use std::fmt::Write as _;
        let _ = writeln!(self.out, "{name}{labels} {value}");
    }

    /// A family with exactly one unlabeled sample.
    fn single(&mut self, kind: &str, name: &str, help: &str, value: f64) {
        if self.family(name, kind, help) {
            self.sample(name, "", value);
        }
    }

    /// One histogram family, one or more label series: cumulative
    /// `_bucket` lines (monotone by construction, closed by the
    /// mandatory `le="+Inf"`), then `_sum` and `_count` per series.
    fn histogram(
        &mut self,
        name: &str,
        help: &str,
        series: &[(Option<(&str, &str)>, minoan_obs::hist::Snapshot)],
    ) {
        use std::fmt::Write as _;
        if !self.family(name, "histogram", help) {
            return;
        }
        for (label, snapshot) in series {
            let bucket_prefix = match label {
                Some((key, value)) => format!("{key}=\"{value}\","),
                None => String::new(),
            };
            for (le, cumulative) in snapshot.cumulative_seconds() {
                let _ = writeln!(
                    self.out,
                    "{name}_bucket{{{bucket_prefix}le=\"{le}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                self.out,
                "{name}_bucket{{{bucket_prefix}le=\"+Inf\"}} {}",
                snapshot.count
            );
            let labels = match label {
                Some((key, value)) => format!("{{{key}=\"{value}\"}}"),
                None => String::new(),
            };
            let _ = writeln!(
                self.out,
                "{name}_sum{labels} {}",
                snapshot.sum_micros as f64 / 1e6
            );
            let _ = writeln!(self.out, "{name}_count{labels} {}", snapshot.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_time_eq_agrees_with_plain_eq() {
        for (a, b) in [
            ("", ""),
            ("secret", "secret"),
            ("secret", "secres"),
            ("secret", "secre"),
            ("secret", ""),
            ("", "secret"),
            ("a", "ab"),
        ] {
            assert_eq!(constant_time_eq(a, b), a == b, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn bearer_tokens_parse_case_insensitively() {
        assert_eq!(bearer_token("Bearer tok"), Some("tok"));
        assert_eq!(bearer_token("bearer tok"), Some("tok"));
        assert_eq!(bearer_token("BEARER  tok "), Some("tok"));
        assert_eq!(bearer_token("Basic dXNlcg=="), None);
        assert_eq!(bearer_token("Bearer"), None, "no token at all");
    }

    #[test]
    fn metrics_render_all_families_for_an_empty_queue() {
        let queue = JobQueue::new(2, 3, 64 << 20);
        let text = prometheus_metrics(&queue, None);
        assert!(
            !text.contains("minoan_index_"),
            "no index family without a registry"
        );
        for family in [
            "minoan_jobs_queued 0",
            "minoan_jobs_running 0",
            "minoan_memory_budget_bytes 67108864",
            "minoan_threads_budget 3",
            "minoan_fleet_slots 2",
            "minoan_jobs_done_total{status=\"ok\"} 0",
            "minoan_jobs_done_total{status=\"timed_out\"} 0",
            "minoan_jobs_done_total{status=\"poisoned\"} 0",
            "minoan_jobs_done_total{status=\"killed_over_budget\"} 0",
            "minoan_jobs_retries_scheduled_total 0",
            "minoan_jobs_shed_total 0",
            "minoan_stage_seconds_total{stage=\"tokenize\"} 0",
        ] {
            assert!(text.contains(family), "missing {family:?} in:\n{text}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        }
    }

    #[test]
    fn prometheus_exposition_follows_the_text_format_grammar() {
        let queue = JobQueue::new(2, 3, 64 << 20);
        // Feed two histograms so bucket lines carry non-zero counts
        // (process-global statics: other tests may add more, which the
        // grammar checks below are insensitive to).
        telemetry::MATCH_QUERY.observe(Duration::from_micros(250));
        telemetry::HTTP_REQUEST.observe(Duration::from_millis(3));
        let text = prometheus_metrics(&queue, None);

        // Pass 1: every family's HELP and TYPE appear exactly once, as
        // a HELP-then-TYPE pair, before any of its samples; every
        // sample line parses as `name[{labels}] value`.
        let mut help_seen: Vec<String> = Vec::new();
        let mut families: Vec<(String, String)> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap().to_string();
                assert!(!help_seen.contains(&name), "duplicate HELP for {name}");
                help_seen.push(name);
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap().to_string();
                let kind = parts.next().expect("TYPE line has a kind").to_string();
                assert!(
                    ["gauge", "counter", "histogram"].contains(&kind.as_str()),
                    "unknown metric type {kind:?}"
                );
                assert!(
                    families.iter().all(|(seen, _)| seen != &name),
                    "duplicate TYPE for {name}"
                );
                assert_eq!(help_seen.last(), Some(&name), "TYPE must follow its HELP");
                families.push((name, kind));
            } else {
                let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
                let name = series.split('{').next().unwrap();
                let owner = families.iter().find(|(family, kind)| {
                    if kind == "histogram" {
                        [
                            format!("{family}_bucket"),
                            format!("{family}_sum"),
                            format!("{family}_count"),
                        ]
                        .iter()
                        .any(|suffixed| suffixed == name)
                    } else {
                        family == name
                    }
                });
                assert!(
                    owner.is_some(),
                    "sample {name} has no preceding TYPE header"
                );
                assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
            }
        }
        for expected in [
            "minoan_match_query_seconds",
            "minoan_http_request_seconds",
            "minoan_job_queue_wait_seconds",
            "minoan_job_stage_seconds",
        ] {
            assert!(
                families
                    .iter()
                    .any(|(name, kind)| name == expected && kind == "histogram"),
                "missing histogram family {expected}"
            );
        }
        assert!(text.contains("minoan_trace_records_dropped_total"));

        // Pass 2: per histogram series, buckets are cumulative
        // (monotone non-decreasing), closed by a mandatory le="+Inf"
        // whose value equals the series' _count sample.
        for (family, _) in families.iter().filter(|(_, kind)| kind == "histogram") {
            let bucket_prefix = format!("{family}_bucket{{");
            // label-prefix-before-le -> (les, cumulative counts)
            let mut series: Vec<(String, Vec<String>, Vec<f64>)> = Vec::new();
            for line in text.lines().filter(|line| line.starts_with(&bucket_prefix)) {
                let (labels, value) = line.rsplit_once(' ').unwrap();
                let le_at = labels.find("le=\"").expect("bucket line has le");
                let key = labels[..le_at].to_string();
                let le = labels[le_at + 4..].trim_end_matches("\"}").to_string();
                let count = value.parse::<f64>().unwrap();
                match series.iter_mut().find(|(k, _, _)| *k == key) {
                    Some((_, les, counts)) => {
                        les.push(le);
                        counts.push(count);
                    }
                    None => series.push((key, vec![le], vec![count])),
                }
            }
            assert!(!series.is_empty(), "histogram {family} emitted no buckets");
            for (key, les, counts) in &series {
                assert_eq!(
                    les.last().map(String::as_str),
                    Some("+Inf"),
                    "{family} series {key:?} must end with le=\"+Inf\""
                );
                assert!(
                    counts.windows(2).all(|pair| pair[0] <= pair[1]),
                    "{family} series {key:?} buckets are not cumulative: {counts:?}"
                );
                // The _count sample of the same series: the key is
                // `{family}_bucket{` + `k="v",`* — rebuild the matching
                // `_count` series name from the label prefix.
                let inner = key
                    .strip_prefix(&bucket_prefix)
                    .unwrap()
                    .trim_end_matches(',');
                let count_series = if inner.is_empty() {
                    format!("{family}_count")
                } else {
                    format!("{family}_count{{{inner}}}")
                };
                let total = text
                    .lines()
                    .filter_map(|line| line.rsplit_once(' '))
                    .find(|(name, _)| *name == count_series)
                    .map(|(_, value)| value.parse::<f64>().unwrap())
                    .expect("every bucket series has a _count sample");
                assert_eq!(
                    *counts.last().unwrap(),
                    total,
                    "{family} series {key:?}: le=\"+Inf\" must equal _count"
                );
            }
        }
    }

    #[test]
    fn reason_phrases_cover_the_emitted_statuses() {
        for status in [
            200, 201, 400, 401, 404, 405, 409, 413, 429, 431, 501, 503, 505,
        ] {
            assert_ne!(reason_phrase(status), "Response", "{status}");
        }
    }

    #[test]
    fn overloaded_503_is_a_complete_http_response() {
        let raw = overloaded_503();
        assert!(raw.starts_with("HTTP/1.1 503 "), "{raw}");
        assert!(raw.contains("Retry-After: "), "{raw}");
        assert!(raw.contains("Connection: close"), "{raw}");
        let body = raw.split("\r\n\r\n").nth(1).expect("body after head");
        assert!(Json::parse(body).is_ok(), "{body}");
    }
}
