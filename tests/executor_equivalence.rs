//! Executor equivalence: the parallel backend must reproduce the
//! sequential backend **bit for bit** on every benchmark profile —
//! identical matchings, identical candidate orderings, identical
//! similarity values. This is the contract that makes `--executor` a
//! pure performance knob.

use minoaner::core::top_neighbors;
use minoaner::core::{build_blocks, MinoanConfig, MinoanEr, SimilarityIndex};
use minoaner::datagen::DatasetKind;
use minoaner::exec::{Executor, ExecutorKind};
use minoaner::kb::{EntityId, KbSide};

const SEED: u64 = 20180416;
const SCALE: f64 = 0.1;
const THREAD_COUNTS: [usize; 3] = [2, 3, 7];
/// Both parallel backends must match the sequential bytes: rayon
/// (scoped threads per wave) and the work-stealing pool (quantum-split
/// task batches — a *different* partition of every wave).
const PARALLEL_KINDS: [ExecutorKind; 2] = [ExecutorKind::Rayon, ExecutorKind::Pool];

fn config_with(kind: ExecutorKind, threads: usize) -> MinoanConfig {
    MinoanConfig {
        executor: kind,
        threads,
        ..MinoanConfig::default()
    }
}

#[test]
fn matchings_are_bit_identical_on_every_profile() {
    for kind in DatasetKind::ALL {
        let d = kind.generate_scaled(SEED, SCALE);
        let seq = MinoanEr::new(config_with(ExecutorKind::Sequential, 1))
            .unwrap()
            .run(&d.pair);
        let seq_pairs: Vec<_> = seq.matching.iter().collect();
        assert!(!seq_pairs.is_empty(), "{}: empty matching", d.name);
        for kind in PARALLEL_KINDS {
            for threads in THREAD_COUNTS {
                let par = MinoanEr::new(config_with(kind, threads))
                    .unwrap()
                    .run(&d.pair);
                let par_pairs: Vec<_> = par.matching.iter().collect();
                assert_eq!(
                    seq_pairs, par_pairs,
                    "{}: matching differs at {threads} {kind} threads",
                    d.name
                );
                // Stage counters must agree too: the heuristics made the
                // same decisions, not just the same final set.
                assert_eq!(seq.report.h1_matches, par.report.h1_matches, "{}", d.name);
                assert_eq!(seq.report.h2_matches, par.report.h2_matches, "{}", d.name);
                assert_eq!(seq.report.h3_matches, par.report.h3_matches, "{}", d.name);
                assert_eq!(seq.report.h4_removed, par.report.h4_removed, "{}", d.name);
            }
        }
    }
}

#[test]
fn candidate_orderings_are_bit_identical_on_every_profile() {
    for kind in DatasetKind::ALL {
        let d = kind.generate_scaled(SEED, SCALE);
        let config = MinoanConfig::default();
        let art = build_blocks(&d.pair, &config);
        let tn1 = top_neighbors(
            &d.pair.first,
            config.top_relations_n,
            config.max_top_neighbors,
        );
        let tn2 = top_neighbors(
            &d.pair.second,
            config.top_relations_n,
            config.max_top_neighbors,
        );
        let seq = SimilarityIndex::build_with(
            &art.token_blocks,
            &art.tokens,
            [&tn1, &tn2],
            &Executor::sequential(),
        );
        assert!(seq.pair_count() > 0, "{}: empty index", d.name);
        for kind in PARALLEL_KINDS {
            for threads in THREAD_COUNTS {
                let exec = Executor::new(kind, threads);
                let par = SimilarityIndex::build_with(
                    &art.token_blocks,
                    &art.tokens,
                    [&tn1, &tn2],
                    &exec,
                );
                assert_eq!(seq.pair_count(), par.pair_count(), "{}", d.name);
                assert_eq!(
                    seq.neighbor_pair_count(),
                    par.neighbor_pair_count(),
                    "{}",
                    d.name
                );
                for side in [KbSide::First, KbSide::Second] {
                    let n = art.tokens.entity_count(side);
                    for e in (0..n as u32).map(EntityId) {
                        // Slice equality is exact: same candidates, same
                        // order, same f64 bits.
                        assert_eq!(
                            seq.value_candidates(side, e),
                            par.value_candidates(side, e),
                            "{}: value candidates of {side:?} {e} differ at {threads} {kind} threads",
                            d.name
                        );
                        assert_eq!(
                            seq.neighbor_candidates(side, e),
                            par.neighbor_candidates(side, e),
                            "{}: neighbor candidates of {side:?} {e} differ at {threads} {kind} threads",
                            d.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn blocking_artifacts_are_identical_across_executors() {
    let d = DatasetKind::RexaDblp.generate_scaled(SEED, SCALE);
    let seq_art = build_blocks(&d.pair, &config_with(ExecutorKind::Sequential, 1));
    for kind in PARALLEL_KINDS {
        for threads in THREAD_COUNTS {
            let par_art = build_blocks(&d.pair, &config_with(kind, threads));
            assert_eq!(
                seq_art.token_blocks.blocks(),
                par_art.token_blocks.blocks(),
                "token blocks differ at {threads} {kind} threads"
            );
            assert_eq!(
                seq_art.name_blocks.blocks(),
                par_art.name_blocks.blocks(),
                "name blocks differ at {threads} {kind} threads"
            );
            assert_eq!(seq_art.purge, par_art.purge, "purge reports differ");
        }
    }
}

/// The pre-grouped shard scan must stay bit-identical when the shard
/// count dwarfs typical block sizes (most per-block shard groups empty)
/// and even exceeds the entity count.
#[test]
fn pregrouped_shard_scan_is_bit_identical_at_high_shard_counts() {
    let d = DatasetKind::Restaurant.generate_scaled(SEED, SCALE);
    let config = MinoanConfig::default();
    let art = build_blocks(&d.pair, &config);
    let tn1 = top_neighbors(
        &d.pair.first,
        config.top_relations_n,
        config.max_top_neighbors,
    );
    let tn2 = top_neighbors(
        &d.pair.second,
        config.top_relations_n,
        config.max_top_neighbors,
    );
    let seq = SimilarityIndex::build_with(
        &art.token_blocks,
        &art.tokens,
        [&tn1, &tn2],
        &Executor::sequential(),
    );
    let n1 = art.tokens.entity_count(KbSide::First);
    for kind in PARALLEL_KINDS {
        for threads in [13, 64, n1 + 5] {
            let exec = Executor::new(kind, threads);
            let par =
                SimilarityIndex::build_with(&art.token_blocks, &art.tokens, [&tn1, &tn2], &exec);
            assert_eq!(
                seq.pair_count(),
                par.pair_count(),
                "threads={threads} kind={kind}"
            );
            for side in [KbSide::First, KbSide::Second] {
                for e in (0..art.tokens.entity_count(side) as u32).map(EntityId) {
                    assert_eq!(
                        seq.value_candidates(side, e),
                        par.value_candidates(side, e),
                        "value candidates of {side:?} {e} differ at {threads} {kind} shards"
                    );
                    assert_eq!(
                        seq.neighbor_candidates(side, e),
                        par.neighbor_candidates(side, e),
                        "neighbor candidates of {side:?} {e} differ at {threads} {kind} shards"
                    );
                }
            }
        }
    }
}

/// The parallelized ingest stages (tokenization, attribute/relation
/// importance, name extraction, top-neighbor sets) must be bit-identical
/// across executors on every profile — they feed everything downstream.
#[test]
fn ingest_stages_are_bit_identical_on_every_profile() {
    use minoaner::core::{
        attribute_importance_with, entity_names_with, relation_importance_with, top_neighbors_with,
    };
    use minoaner::text::{TokenizedPair, Tokenizer};
    for kind in DatasetKind::ALL {
        let d = kind.generate_scaled(SEED, SCALE);
        let seq_exec = Executor::sequential();
        let tokenizer = Tokenizer::default();
        let seq_tokens = TokenizedPair::build(&d.pair, &tokenizer);
        let seq_attr = attribute_importance_with(&d.pair.first, &seq_exec);
        let seq_rel = relation_importance_with(&d.pair.first, &seq_exec);
        let seq_names = entity_names_with(&d.pair.first, 2, &seq_exec);
        let seq_tn = top_neighbors_with(&d.pair.first, 3, 32, &seq_exec);
        for (kind, threads) in PARALLEL_KINDS
            .into_iter()
            .flat_map(|k| THREAD_COUNTS.map(|t| (k, t)))
        {
            let exec = Executor::new(kind, threads);
            let par_tokens = TokenizedPair::build_with(&d.pair, &tokenizer, &exec);
            assert_eq!(
                seq_tokens.dict().len(),
                par_tokens.dict().len(),
                "{}: dictionary size differs at {threads} threads",
                d.name
            );
            for side in [KbSide::First, KbSide::Second] {
                for e in (0..seq_tokens.entity_count(side) as u32).map(EntityId) {
                    assert_eq!(
                        seq_tokens.tokens(side, e),
                        par_tokens.tokens(side, e),
                        "{}: token set of {side:?} {e} differs at {threads} threads",
                        d.name
                    );
                }
                for t in seq_tokens.dict().tokens() {
                    assert_eq!(
                        seq_tokens.dict().ef(side, t),
                        par_tokens.dict().ef(side, t),
                        "{}: EF differs at {threads} threads",
                        d.name
                    );
                }
            }
            assert_eq!(seq_attr, attribute_importance_with(&d.pair.first, &exec));
            assert_eq!(seq_rel, relation_importance_with(&d.pair.first, &exec));
            assert_eq!(seq_names, entity_names_with(&d.pair.first, 2, &exec));
            assert_eq!(seq_tn, top_neighbors_with(&d.pair.first, 3, 32, &exec));
        }
    }
}
