//! Unique Mapping Clustering.
//!
//! The clustering step shared by BSL and SiGMa (paper §II): scored pairs
//! enter a priority queue in decreasing similarity; the top pair becomes
//! a match iff neither of its entities is already matched and its score
//! exceeds the threshold `t`; the process stops at the first pair below
//! `t`.

use minoan_kb::{EntityId, Matching};

/// A scored candidate pair.
pub type ScoredPair = (EntityId, EntityId, f64);

/// Runs Unique Mapping Clustering over `pairs` with threshold `t`.
///
/// Deterministic: ties in score are broken by `(e1, e2)` ascending.
pub fn unique_mapping_clustering(pairs: &[ScoredPair], t: f64) -> Matching {
    let accepted = umc_trace(pairs);
    Matching::from_pairs(
        accepted
            .into_iter()
            .filter(|&(_, _, s)| s > t)
            .map(|(a, b, _)| (a, b)),
    )
}

/// Runs the greedy acceptance *without* a threshold, returning the
/// accepted pairs in decreasing score order.
///
/// Acceptance is prefix-stable in the threshold: UMC with threshold `t`
/// is exactly the accepted prefix with scores `> t`. BSL exploits this to
/// sweep 20 thresholds with a single greedy pass.
pub fn umc_trace(pairs: &[ScoredPair]) -> Vec<ScoredPair> {
    let mut sorted: Vec<&ScoredPair> = pairs.iter().collect();
    sorted.sort_unstable_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    let mut used1 = minoan_kb::FxHashSet::default();
    let mut used2 = minoan_kb::FxHashSet::default();
    let mut out = Vec::new();
    for &&(e1, e2, s) in &sorted {
        if s <= 0.0 {
            break;
        }
        if used1.contains(&e1) || used2.contains(&e2) {
            continue;
        }
        used1.insert(e1);
        used2.insert(e2);
        out.push((e1, e2, s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn greedy_picks_best_unique_pairs() {
        let pairs = vec![
            (e(0), e(0), 0.9),
            (e(0), e(1), 0.8),
            (e(1), e(1), 0.7),
            (e(1), e(0), 0.95),
        ];
        let m = unique_mapping_clustering(&pairs, 0.5);
        // (1,0) wins first, locking e1=1 and e2=0; then (0,1).
        assert_eq!(m.len(), 2);
        assert!(m.contains(e(1), e(0)));
        assert!(m.contains(e(0), e(1)));
        assert!(m.is_partial_matching());
    }

    #[test]
    fn threshold_cuts_low_scores() {
        let pairs = vec![(e(0), e(0), 0.9), (e(1), e(1), 0.3)];
        let m = unique_mapping_clustering(&pairs, 0.5);
        assert_eq!(m.len(), 1);
        assert!(m.contains(e(0), e(0)));
        let m = unique_mapping_clustering(&pairs, 0.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn output_is_always_a_partial_matching() {
        let pairs: Vec<ScoredPair> = (0..20)
            .flat_map(|i| (0..20).map(move |j| (e(i), e(j), ((i * j) % 7) as f64 / 7.0)))
            .collect();
        let m = unique_mapping_clustering(&pairs, 0.1);
        assert!(m.is_partial_matching());
    }

    #[test]
    fn trace_prefix_equals_thresholded_run() {
        let pairs = vec![
            (e(0), e(0), 0.9),
            (e(1), e(1), 0.6),
            (e(2), e(2), 0.4),
            (e(2), e(0), 0.95),
        ];
        let trace = umc_trace(&pairs);
        for t in [0.0, 0.3, 0.5, 0.7, 0.99] {
            let direct = unique_mapping_clustering(&pairs, t);
            let from_trace = Matching::from_pairs(
                trace
                    .iter()
                    .filter(|&&(_, _, s)| s > t)
                    .map(|&(a, b, _)| (a, b)),
            );
            assert_eq!(direct, from_trace, "threshold {t}");
        }
    }

    #[test]
    fn zero_and_negative_scores_are_never_accepted() {
        let pairs = vec![(e(0), e(0), 0.0), (e(1), e(1), -1.0)];
        assert!(umc_trace(&pairs).is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let pairs = vec![(e(1), e(1), 0.5), (e(0), e(0), 0.5), (e(0), e(1), 0.5)];
        let trace = umc_trace(&pairs);
        assert_eq!(trace[0].0, e(0));
        assert_eq!(trace[0].1, e(0));
        assert_eq!(trace[1].0, e(1));
    }
}
