//! Tokenized view of a KB pair.
//!
//! Every similarity MinoanER computes is a function of token statistics,
//! so the pipeline tokenizes both KBs once up front: a shared
//! [`TokenDictionary`] assigns dense [`TokenId`]s and tracks per-side
//! *Entity Frequency* (`EF_E(t)` = number of entities of KB `E` whose
//! values contain token `t`), and a [`TokenizedPair`] stores each entity's
//! deduplicated, sorted token set.

use minoan_exec::Executor;
use minoan_kb::{EntityId, Interner, KbPair, KbSide, KnowledgeBase, TokenId};

use crate::tokenizer::Tokenizer;

/// Token dictionary shared by the two KBs of a pair, with per-side entity
/// frequencies.
#[derive(Debug, Clone, Default)]
pub struct TokenDictionary {
    interner: Interner,
    ef: [Vec<u32>; 2],
}

impl TokenDictionary {
    /// Resolves a token string to its id.
    pub fn token_id(&self, token: &str) -> Option<TokenId> {
        self.interner.get(token).map(TokenId)
    }

    /// Resolves a token id back to its string.
    pub fn token(&self, id: TokenId) -> &str {
        self.interner.resolve(id.0)
    }

    /// Entity frequency of `t` in the KB on `side`.
    pub fn ef(&self, side: KbSide, t: TokenId) -> u32 {
        self.ef[side.index()][t.index()]
    }

    /// Number of distinct tokens across both KBs.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Iterates all token ids.
    pub fn tokens(&self) -> impl Iterator<Item = TokenId> {
        (0..self.interner.len() as u32).map(TokenId)
    }

    /// The token interner (persisted by the artifact layer).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The full entity-frequency vector of one side, indexed by token id.
    pub fn ef_counts(&self, side: KbSide) -> &[u32] {
        &self.ef[side.index()]
    }

    /// Rebuilds a dictionary from persisted parts. Both EF vectors must
    /// cover every token.
    pub fn from_parts(interner: Interner, ef: [Vec<u32>; 2]) -> Result<Self, String> {
        for side_ef in &ef {
            if side_ef.len() != interner.len() {
                return Err(format!(
                    "EF vector has {} entries for {} tokens",
                    side_ef.len(),
                    interner.len()
                ));
            }
        }
        Ok(Self { interner, ef })
    }
}

/// Tokenized entities of one KB side.
#[derive(Debug, Clone, Default)]
struct TokenizedKb {
    /// Sorted, deduplicated token set per entity.
    entity_tokens: Vec<Box<[TokenId]>>,
    /// Total token occurrences (with duplicates), for the "av. tokens"
    /// column of Table I.
    total_occurrences: usize,
}

/// The tokenized view of a KB pair: shared dictionary plus per-entity
/// token sets for both sides.
#[derive(Debug, Clone, Default)]
pub struct TokenizedPair {
    dict: TokenDictionary,
    sides: [TokenizedKb; 2],
}

impl TokenizedPair {
    /// Tokenizes both KBs of `pair` with `tokenizer`.
    pub fn build(pair: &KbPair, tokenizer: &Tokenizer) -> Self {
        Self::build_with(pair, tokenizer, &Executor::sequential())
    }

    /// Tokenizes both KBs of `pair` on `exec`: each part tokenizes an
    /// entity range against a **part-local** interner, and the partials
    /// are merged in part order by re-interning each part's dictionary
    /// in local-id (= first-seen) order. A token's global first
    /// occurrence lies in the earliest part containing it, so the merged
    /// dictionary assigns exactly the sequential first-seen ids — the
    /// result is bit-identical to [`TokenizedPair::build`] for any
    /// thread count.
    pub fn build_with(pair: &KbPair, tokenizer: &Tokenizer, exec: &Executor) -> Self {
        let mut dict = TokenDictionary::default();
        let mut sides: [TokenizedKb; 2] = Default::default();
        for side in [KbSide::First, KbSide::Second] {
            let kb = pair.kb(side);
            sides[side.index()] = tokenize_side(kb, side, tokenizer, &mut dict, exec);
        }
        // EF vectors may be shorter than the final dictionary if one side
        // never saw the later tokens; pad to full length.
        for side_ef in &mut dict.ef {
            side_ef.resize(dict.interner.len(), 0);
        }
        Self { dict, sides }
    }

    /// The shared token dictionary.
    pub fn dict(&self) -> &TokenDictionary {
        &self.dict
    }

    /// The sorted, deduplicated token set of an entity.
    pub fn tokens(&self, side: KbSide, e: EntityId) -> &[TokenId] {
        &self.sides[side.index()].entity_tokens[e.index()]
    }

    /// Number of entities tokenized on `side`.
    pub fn entity_count(&self, side: KbSide) -> usize {
        self.sides[side.index()].entity_tokens.len()
    }

    /// Total token occurrences (with duplicates) on `side`.
    pub fn total_occurrences(&self, side: KbSide) -> usize {
        self.sides[side.index()].total_occurrences
    }

    /// Rebuilds a tokenized pair from persisted parts: the shared
    /// dictionary plus, per side, every entity's sorted token set and
    /// the side's total occurrence count. Token ids out of dictionary
    /// range are rejected.
    pub fn from_parts(
        dict: TokenDictionary,
        entity_tokens: [Vec<Box<[TokenId]>>; 2],
        occurrences: [usize; 2],
    ) -> Result<Self, String> {
        let n_tokens = dict.len() as u32;
        for side_tokens in &entity_tokens {
            for toks in side_tokens {
                if toks.iter().any(|t| t.0 >= n_tokens) {
                    return Err("entity token id out of dictionary range".into());
                }
            }
        }
        let [first, second] = entity_tokens;
        Ok(Self {
            dict,
            sides: [
                TokenizedKb {
                    entity_tokens: first,
                    total_occurrences: occurrences[0],
                },
                TokenizedKb {
                    entity_tokens: second,
                    total_occurrences: occurrences[1],
                },
            ],
        })
    }

    /// Phase 1 of retokenizing one entity after a delta: tokenizes the
    /// entity's **current** (pre-mutation) literals to release their
    /// occurrence count, decrements EF for each distinct token, and
    /// clears the token row. Must run *before* the KB mutation —
    /// occurrence counts cannot be recovered from the deduplicated
    /// stored row afterwards. Returns the distinct tokens released.
    pub fn release_entity(
        &mut self,
        side: KbSide,
        e: EntityId,
        kb: &KnowledgeBase,
        tokenizer: &Tokenizer,
    ) -> Vec<TokenId> {
        let mut buf: Vec<String> = Vec::new();
        for literal in kb.literals(e) {
            tokenizer.tokenize_into(literal, &mut buf);
        }
        let tk = &mut self.sides[side.index()];
        tk.total_occurrences -= buf.len();
        let old = std::mem::take(&mut tk.entity_tokens[e.index()]);
        let ef = &mut self.dict.ef[side.index()];
        for &t in old.iter() {
            ef[t.index()] -= 1;
        }
        old.into_vec()
    }

    /// Phase 2 of retokenizing one entity after a delta: tokenizes the
    /// entity's **post-mutation** literals, appending unseen tokens to
    /// the shared dictionary, restoring EF and occurrence counts, and
    /// storing the sorted deduplicated row (appending a row when the
    /// entity was just created). Returns the new row plus the token ids
    /// newly appended to the dictionary.
    pub fn absorb_entity(
        &mut self,
        side: KbSide,
        e: EntityId,
        kb: &KnowledgeBase,
        tokenizer: &Tokenizer,
    ) -> (Vec<TokenId>, Vec<TokenId>) {
        let mut buf: Vec<String> = Vec::new();
        for literal in kb.literals(e) {
            tokenizer.tokenize_into(literal, &mut buf);
        }
        let n_before = self.dict.interner.len() as u32;
        let occurrences = buf.len();
        let mut ids: Vec<TokenId> = Vec::with_capacity(buf.len());
        for tok in buf.drain(..) {
            ids.push(TokenId(self.dict.interner.intern(&tok)));
        }
        ids.sort_unstable();
        ids.dedup();
        for side_ef in &mut self.dict.ef {
            side_ef.resize(self.dict.interner.len(), 0);
        }
        let ef = &mut self.dict.ef[side.index()];
        for &t in &ids {
            ef[t.index()] += 1;
        }
        let tk = &mut self.sides[side.index()];
        tk.total_occurrences += occurrences;
        let row = ids.clone().into_boxed_slice();
        if e.index() == tk.entity_tokens.len() {
            tk.entity_tokens.push(row);
        } else {
            tk.entity_tokens[e.index()] = row;
        }
        let new_tokens = (n_before..self.dict.interner.len() as u32)
            .map(TokenId)
            .collect();
        (ids, new_tokens)
    }

    /// Average number of token occurrences per entity (Table I's
    /// "av. tokens").
    pub fn avg_tokens(&self, side: KbSide) -> f64 {
        let s = &self.sides[side.index()];
        if s.entity_tokens.is_empty() {
            return 0.0;
        }
        s.total_occurrences as f64 / s.entity_tokens.len() as f64
    }
}

/// One part's tokenization output: a part-local dictionary plus each
/// entity's token set as local ids (sorted and deduplicated — dedup by
/// local id equals dedup by string, but the *order* is part-local and is
/// re-established after remapping).
struct TokenizedPart {
    local: Interner,
    entity_tokens: Vec<Vec<u32>>,
    occurrences: usize,
}

fn tokenize_side(
    kb: &KnowledgeBase,
    side: KbSide,
    tokenizer: &Tokenizer,
    dict: &mut TokenDictionary,
    exec: &Executor,
) -> TokenizedKb {
    let n = kb.entity_count();
    let parts = exec.map_parts(n, |range| {
        let mut local = Interner::new();
        let mut entity_tokens = Vec::with_capacity(range.len());
        let mut occurrences = 0usize;
        let mut buf: Vec<String> = Vec::new();
        let mut ids: Vec<u32> = Vec::new();
        for e in range {
            buf.clear();
            ids.clear();
            for literal in kb.literals(EntityId(e as u32)) {
                tokenizer.tokenize_into(literal, &mut buf);
            }
            occurrences += buf.len();
            for tok in buf.drain(..) {
                ids.push(local.intern(&tok));
            }
            ids.sort_unstable();
            ids.dedup();
            entity_tokens.push(ids.clone());
        }
        TokenizedPart {
            local,
            entity_tokens,
            occurrences,
        }
    });

    // Ordered merge: re-intern each part's dictionary in local-id order
    // (its first-seen order), remap every entity's token set and re-sort
    // by global id. Entity frequency increments run in entity order,
    // exactly as the sequential pass would.
    let mut entity_tokens: Vec<Box<[TokenId]>> = Vec::with_capacity(n);
    let mut total_occurrences = 0usize;
    for part in parts {
        let remap: Vec<u32> = part
            .local
            .iter()
            .map(|(_, tok)| dict.interner.intern(tok))
            .collect();
        total_occurrences += part.occurrences;
        let ef = &mut dict.ef[side.index()];
        for local_ids in part.entity_tokens {
            let mut ids: Vec<TokenId> = local_ids
                .into_iter()
                .map(|l| TokenId(remap[l as usize]))
                .collect();
            ids.sort_unstable();
            for &t in ids.iter() {
                if ef.len() <= t.index() {
                    ef.resize(t.index() + 1, 0);
                }
                ef[t.index()] += 1;
            }
            entity_tokens.push(ids.into_boxed_slice());
        }
    }
    TokenizedKb {
        entity_tokens,
        total_occurrences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_kb::KbBuilder;

    fn pair() -> KbPair {
        let mut a = KbBuilder::new("E1");
        a.add_literal("a:1", "name", "Kri Kri Taverna");
        a.add_literal("a:1", "city", "Heraklion");
        a.add_literal("a:2", "name", "Labyrinth Grill");
        a.add_literal("a:2", "city", "Heraklion");
        let mut b = KbBuilder::new("E2");
        b.add_literal("b:1", "title", "taverna KRI kri");
        b.add_literal("b:2", "title", "Palace of Knossos");
        KbPair::new(a.finish(), b.finish())
    }

    #[test]
    fn ef_counts_entities_not_occurrences() {
        let p = pair();
        let t = TokenizedPair::build(&p, &Tokenizer::default());
        let kri = t.dict().token_id("kri").unwrap();
        // "kri" appears twice in a:1 but counts once.
        assert_eq!(t.dict().ef(KbSide::First, kri), 1);
        assert_eq!(t.dict().ef(KbSide::Second, kri), 1);
        let heraklion = t.dict().token_id("heraklion").unwrap();
        assert_eq!(t.dict().ef(KbSide::First, heraklion), 2);
        assert_eq!(t.dict().ef(KbSide::Second, heraklion), 0);
    }

    #[test]
    fn entity_token_sets_are_sorted_and_deduped() {
        let p = pair();
        let t = TokenizedPair::build(&p, &Tokenizer::default());
        let toks = t.tokens(KbSide::First, EntityId(0));
        assert!(toks.windows(2).all(|w| w[0] < w[1]));
        // kri kri taverna heraklion -> 3 distinct
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn avg_tokens_counts_occurrences() {
        let p = pair();
        let t = TokenizedPair::build(&p, &Tokenizer::default());
        // a:1 has 4 occurrences (kri kri taverna heraklion), a:2 has 3.
        assert!((t.avg_tokens(KbSide::First) - 3.5).abs() < 1e-9);
        assert_eq!(t.entity_count(KbSide::First), 2);
        assert_eq!(t.entity_count(KbSide::Second), 2);
    }

    #[test]
    fn empty_pair_is_fine() {
        let p = KbPair::new(KbBuilder::new("x").finish(), KbBuilder::new("y").finish());
        let t = TokenizedPair::build(&p, &Tokenizer::default());
        assert!(t.dict().is_empty());
        assert_eq!(t.avg_tokens(KbSide::First), 0.0);
    }

    #[test]
    fn parallel_tokenization_is_bit_identical_to_sequential() {
        use minoan_exec::ExecutorKind;
        let mut a = KbBuilder::new("E1");
        let mut b = KbBuilder::new("E2");
        for i in 0..50 {
            a.add_literal(
                &format!("a:{i}"),
                "name",
                &format!("shared tok{} word{} extra{}", i % 7, i % 3, i),
            );
            b.add_literal(
                &format!("b:{i}"),
                "label",
                &format!("shared tok{} other{}", i % 7, i % 5),
            );
        }
        let p = KbPair::new(a.finish(), b.finish());
        let seq = TokenizedPair::build(&p, &Tokenizer::default());
        for threads in [2, 3, 7, 16] {
            let exec = Executor::new(ExecutorKind::Rayon, threads);
            let par = TokenizedPair::build_with(&p, &Tokenizer::default(), &exec);
            assert_eq!(seq.dict().len(), par.dict().len(), "threads={threads}");
            for t in seq.dict().tokens() {
                assert_eq!(
                    seq.dict().token(t),
                    par.dict().token(t),
                    "threads={threads}"
                );
                for side in [KbSide::First, KbSide::Second] {
                    assert_eq!(seq.dict().ef(side, t), par.dict().ef(side, t));
                }
            }
            for side in [KbSide::First, KbSide::Second] {
                assert_eq!(seq.entity_count(side), par.entity_count(side));
                assert_eq!(seq.avg_tokens(side), par.avg_tokens(side));
                for e in 0..seq.entity_count(side) as u32 {
                    assert_eq!(
                        seq.tokens(side, EntityId(e)),
                        par.tokens(side, EntityId(e)),
                        "threads={threads} side={side:?} e={e}"
                    );
                }
            }
        }
    }

    #[test]
    fn release_and_absorb_track_a_fresh_build() {
        use minoan_kb::delta::{apply_op, DeltaOp};
        use minoan_kb::Object;
        let mut p = pair();
        let tok = Tokenizer::default();
        let mut t = TokenizedPair::build(&p, &tok);

        // Upsert a:2 (perturb literals, introduce one new token) and
        // create a:3; delete b:2.
        let ops = vec![
            DeltaOp::Upsert {
                side: KbSide::First,
                uri: "a:2".into(),
                statements: vec![
                    ("name".into(), Object::Literal("Labyrinth Bistro".into())),
                    ("city".into(), Object::Literal("Heraklion".into())),
                ],
            },
            DeltaOp::Upsert {
                side: KbSide::First,
                uri: "a:3".into(),
                statements: vec![("name".into(), Object::Literal("kri palace".into()))],
            },
            DeltaOp::Delete {
                side: KbSide::Second,
                uri: "b:2".into(),
            },
        ];
        for op in &ops {
            let exists = p.kb(op.side()).entity_by_uri(op.uri()).is_some();
            if exists {
                let e = p.kb(op.side()).entity_by_uri(op.uri()).unwrap();
                t.release_entity(op.side(), e, p.kb(op.side()), &tok);
            }
            let (side, e, _) = apply_op(&mut p, op).unwrap();
            t.absorb_entity(side, e, p.kb(side), &tok);
        }

        // The incremental view must agree with a fresh build of the
        // mutated pair on every *string-level* statistic (token ids may
        // differ: incremental appends, a fresh build re-assigns; dead
        // tokens linger in the append-only dictionary with EF 0).
        let fresh = TokenizedPair::build(&p, &tok);
        for id in t.dict().tokens() {
            let s = t.dict().token(id);
            if fresh.dict().token_id(s).is_none() {
                assert_eq!(t.dict().ef(KbSide::First, id), 0, "dead token {s}");
                assert_eq!(t.dict().ef(KbSide::Second, id), 0, "dead token {s}");
            }
        }
        for side in [KbSide::First, KbSide::Second] {
            assert_eq!(t.entity_count(side), fresh.entity_count(side));
            assert_eq!(t.total_occurrences(side), fresh.total_occurrences(side));
            for id in fresh.dict().tokens() {
                let s = fresh.dict().token(id);
                let mine = t.dict().token_id(s).unwrap();
                assert_eq!(t.dict().ef(side, mine), fresh.dict().ef(side, id), "{s}");
            }
            for e in 0..fresh.entity_count(side) as u32 {
                let mut a: Vec<&str> = t
                    .tokens(side, EntityId(e))
                    .iter()
                    .map(|&x| t.dict().token(x))
                    .collect();
                let mut b: Vec<&str> = fresh
                    .tokens(side, EntityId(e))
                    .iter()
                    .map(|&x| fresh.dict().token(x))
                    .collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "side={side:?} e={e}");
            }
        }
    }

    #[test]
    fn dictionary_is_shared_across_sides() {
        let p = pair();
        let t = TokenizedPair::build(&p, &Tokenizer::default());
        let taverna = t.dict().token_id("taverna").unwrap();
        assert!(t.tokens(KbSide::First, EntityId(0)).contains(&taverna));
        assert!(t.tokens(KbSide::Second, EntityId(0)).contains(&taverna));
    }
}
