//! Parsers for loading KBs from files.
//!
//! Two formats are supported:
//!
//! - A pragmatic **N-Triples subset**: `<s> <p> <o> .` and
//!   `<s> <p> "literal"(^^<dt>|@lang)? .` lines, `#` comments, blank lines.
//!   Datatype/language tags are dropped; the lexical form is kept.
//! - A simple **TSV** format used by the synthetic datasets:
//!   `subject \t predicate \t kind \t object` with `kind ∈ {uri, lit}`.
//!
//! Each format has two entry points:
//!
//! - a **whole-string** parser ([`parse_ntriples`], [`parse_tsv`]) for
//!   input already in memory, and
//! - a **streaming chunked** parser ([`parse_ntriples_reader`],
//!   [`parse_tsv_reader`]) that never materializes the input as one
//!   `String`: it reads line-aligned byte blocks, fans each block out
//!   over the executor into per-thread [`KbChunk`] partials (chunk-local
//!   interners, no shared state) and merges them in input order via
//!   [`KbBuilder::absorb`]. Because lines parse independently and the
//!   merge preserves first-seen order, the streaming parser produces a
//!   [`KnowledgeBase`] **identical** to the whole-string parser —
//!   including the error (line number and message) it reports on bad
//!   input.

use std::borrow::Cow;
use std::fmt;
use std::io::Read;

use minoan_exec::Executor;

use crate::model::{KbBuilder, KbChunk, KnowledgeBase};

/// A parse failure, with 1-based line number and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Options for the streaming chunked parsers.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Target bytes handed to each worker per fan-out. The reader
    /// accumulates roughly `chunk_bytes × threads` of line-complete input
    /// before fanning a block out; chunk boundaries always land just
    /// after a newline, so no line (and therefore no UTF-8 sequence and
    /// no N-Triples escape) is ever split across workers.
    pub chunk_bytes: usize,
}

/// Default worker-chunk size of the streaming parsers (1 MiB).
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

impl Default for StreamOptions {
    fn default() -> Self {
        Self {
            chunk_bytes: DEFAULT_CHUNK_BYTES,
        }
    }
}

/// A parsed object term: a URI or a literal (borrowed unless escape
/// processing forced a copy).
enum ObjTerm<'a> {
    Uri(&'a str),
    Literal(Cow<'a, str>),
}

/// Anything triples can be parsed into: the global [`KbBuilder`]
/// (whole-string path) or a per-thread [`KbChunk`] (streaming path).
trait TripleSink {
    fn literal(&mut self, subject: &str, predicate: &str, literal: &str);
    fn uri(&mut self, subject: &str, predicate: &str, object_uri: &str);
}

impl TripleSink for KbBuilder {
    fn literal(&mut self, s: &str, p: &str, l: &str) {
        self.add_literal(s, p, l);
    }
    fn uri(&mut self, s: &str, p: &str, o: &str) {
        self.add_uri(s, p, o);
    }
}

impl TripleSink for KbChunk {
    fn literal(&mut self, s: &str, p: &str, l: &str) {
        self.add_literal(s, p, l);
    }
    fn uri(&mut self, s: &str, p: &str, o: &str) {
        self.add_uri(s, p, o);
    }
}

// ---------------------------------------------------------------------
// N-Triples
// ---------------------------------------------------------------------

/// Parses N-Triples text into a KB named `name`.
pub fn parse_ntriples(name: &str, text: &str) -> Result<KnowledgeBase, ParseError> {
    let mut builder = KbBuilder::new(name);
    parse_ntriples_into(text, &mut builder)?;
    Ok(builder.finish())
}

/// Streams N-Triples from `reader` into a KB named `name`, parsing
/// line-aligned chunks in parallel on `exec`. Produces a KB identical to
/// [`parse_ntriples`] over the concatenated input.
pub fn parse_ntriples_reader<R: Read>(
    name: &str,
    reader: R,
    exec: &Executor,
    opts: StreamOptions,
) -> Result<KnowledgeBase, ParseError> {
    stream_parse(name, reader, exec, opts, parse_ntriples_into)
}

/// Parses every line of `text` into `sink`; returns the number of lines
/// seen. Error line numbers are 1-based relative to `text`.
fn parse_ntriples_into<S: TripleSink>(text: &str, sink: &mut S) -> Result<usize, ParseError> {
    let mut lines = 0usize;
    for (idx, raw_line) in text.lines().enumerate() {
        lines = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (subject, rest) = parse_uri_term(line, lines)?;
        let rest = rest.trim_start();
        let (predicate, rest) = parse_uri_term(rest, lines)?;
        let rest = rest.trim_start();
        let (object, rest) = parse_object_term(rest, lines)?;
        let rest = rest.trim_start();
        if !rest.starts_with('.') {
            return Err(err(lines, "expected terminating '.'"));
        }
        match object {
            ObjTerm::Uri(u) => sink.uri(subject, predicate, u),
            ObjTerm::Literal(l) => sink.literal(subject, predicate, &l),
        }
    }
    Ok(lines)
}

fn parse_uri_term(s: &str, line: usize) -> Result<(&str, &str), ParseError> {
    let rest = s
        .strip_prefix('<')
        .ok_or_else(|| err(line, "expected '<' opening a URI term"))?;
    let end = rest
        .find('>')
        .ok_or_else(|| err(line, "unterminated URI term"))?;
    Ok((&rest[..end], &rest[end + 1..]))
}

fn parse_object_term(s: &str, line: usize) -> Result<(ObjTerm<'_>, &str), ParseError> {
    if s.starts_with('<') {
        let (uri, rest) = parse_uri_term(s, line)?;
        return Ok((ObjTerm::Uri(uri), rest));
    }
    let rest = s
        .strip_prefix('"')
        .ok_or_else(|| err(line, "expected URI or literal object"))?;
    // Fast path: no escapes — borrow the literal straight from the line.
    let stop = rest
        .find(['"', '\\'])
        .ok_or_else(|| err(line, "unterminated literal"))?;
    let (literal, end) = if rest.as_bytes()[stop] == b'"' {
        (Cow::Borrowed(&rest[..stop]), stop)
    } else {
        parse_escaped_literal(rest, line)?
    };
    let mut rest = &rest[end + 1..];
    // Skip datatype (^^<...>) or language (@lang) suffixes.
    if let Some(dt) = rest.strip_prefix("^^") {
        let (_, r) = parse_uri_term(dt, line)?;
        rest = r;
    } else if let Some(lang) = rest.strip_prefix('@') {
        let stop = lang
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
            .unwrap_or(lang.len());
        rest = &lang[stop..];
    }
    Ok((ObjTerm::Literal(literal), rest))
}

/// Slow path for literals containing escapes: processes `\n \t \r \" \\`
/// (unknown escapes are kept verbatim — Web data is messy and the
/// lexical form is all we need). Returns the unescaped literal and the
/// byte offset of the closing quote within `rest`.
fn parse_escaped_literal(rest: &str, line: usize) -> Result<(Cow<'_, str>, usize), ParseError> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((Cow::Owned(out), i)),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, other)) => {
                    out.push('\\');
                    out.push(other);
                }
                None => return Err(err(line, "dangling escape in literal")),
            },
            c => out.push(c),
        }
    }
    Err(err(line, "unterminated literal"))
}

/// Serializes a KB to the N-Triples subset accepted by
/// [`parse_ntriples`], escaping `\ " \n \t \r` in literals.
pub fn to_ntriples(kb: &KnowledgeBase) -> String {
    let mut out = String::new();
    for e in kb.entities() {
        let uri = kb.entity_uri(e);
        for stmt in kb.statements(e) {
            let attr = kb.attr_name(stmt.attr);
            out.push('<');
            out.push_str(uri);
            out.push_str("> <");
            out.push_str(attr);
            out.push_str("> ");
            match &stmt.value {
                crate::model::Value::Literal(l) => {
                    out.push('"');
                    for c in l.chars() {
                        match c {
                            '\\' => out.push_str("\\\\"),
                            '"' => out.push_str("\\\""),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            '\r' => out.push_str("\\r"),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                crate::model::Value::Entity(n) => {
                    out.push('<');
                    out.push_str(kb.entity_uri(*n));
                    out.push('>');
                }
            }
            out.push_str(" .\n");
        }
    }
    out
}

// ---------------------------------------------------------------------
// TSV
// ---------------------------------------------------------------------

/// Parses the 4-column TSV format into a KB named `name`.
pub fn parse_tsv(name: &str, text: &str) -> Result<KnowledgeBase, ParseError> {
    let mut builder = KbBuilder::new(name);
    parse_tsv_into(text, &mut builder)?;
    Ok(builder.finish())
}

/// Streams TSV from `reader` into a KB named `name`, parsing
/// line-aligned chunks in parallel on `exec`. Produces a KB identical to
/// [`parse_tsv`] over the concatenated input.
pub fn parse_tsv_reader<R: Read>(
    name: &str,
    reader: R,
    exec: &Executor,
    opts: StreamOptions,
) -> Result<KnowledgeBase, ParseError> {
    stream_parse(name, reader, exec, opts, parse_tsv_into)
}

fn parse_tsv_into<S: TripleSink>(text: &str, sink: &mut S) -> Result<usize, ParseError> {
    let mut lines = 0usize;
    for (idx, raw_line) in text.lines().enumerate() {
        lines = idx + 1;
        let line = raw_line.trim_end_matches(['\r', '\n']);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.splitn(4, '\t');
        let subject = cols.next().filter(|s| !s.is_empty());
        let predicate = cols.next().filter(|s| !s.is_empty());
        let kind = cols.next();
        let object = cols.next();
        match (subject, predicate, kind, object) {
            (Some(s), Some(p), Some("uri"), Some(o)) => sink.uri(s, p, o),
            (Some(s), Some(p), Some("lit"), Some(o)) => sink.literal(s, p, o),
            (_, _, Some(k), _) if k != "uri" && k != "lit" => {
                return Err(err(lines, format!("unknown object kind {k:?}")))
            }
            _ => return Err(err(lines, "expected 4 tab-separated columns")),
        }
    }
    Ok(lines)
}

/// Serializes a KB to the TSV format accepted by [`parse_tsv`].
///
/// Round-trips entities and statements (modulo the uri-vs-literal
/// distinction for unresolvable URIs, which were already downgraded).
pub fn to_tsv(kb: &KnowledgeBase) -> String {
    let mut out = String::new();
    for e in kb.entities() {
        let uri = kb.entity_uri(e);
        for stmt in kb.statements(e) {
            let attr = kb.attr_name(stmt.attr);
            match &stmt.value {
                crate::model::Value::Literal(l) => {
                    out.push_str(uri);
                    out.push('\t');
                    out.push_str(attr);
                    out.push_str("\tlit\t");
                    out.push_str(&l.replace(['\t', '\n'], " "));
                    out.push('\n');
                }
                crate::model::Value::Entity(n) => {
                    out.push_str(uri);
                    out.push('\t');
                    out.push_str(attr);
                    out.push_str("\turi\t");
                    out.push_str(kb.entity_uri(*n));
                    out.push('\n');
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Streaming driver
// ---------------------------------------------------------------------

/// The chunked streaming driver shared by both formats.
///
/// Reads up to `chunk_bytes` at a time, accumulating raw bytes until
/// roughly `chunk_bytes × threads` of line-complete input is pending,
/// then fans the block out over `exec` (each worker parses a line-aligned
/// sub-chunk into a [`KbChunk`]) and absorbs the partials in chunk order.
/// The trailing partial line is carried into the next block, so the full
/// input is never resident and every worker sees whole lines only.
fn stream_parse<R, F>(
    name: &str,
    mut reader: R,
    exec: &Executor,
    opts: StreamOptions,
    parse_into: F,
) -> Result<KnowledgeBase, ParseError>
where
    R: Read,
    F: Fn(&str, &mut KbChunk) -> Result<usize, ParseError> + Sync,
{
    let chunk_bytes = opts.chunk_bytes.max(1);
    let batch_bytes = chunk_bytes.saturating_mul(exec.threads().max(1));
    let mut builder = KbBuilder::new(name);
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = vec![0u8; chunk_bytes.clamp(1, DEFAULT_CHUNK_BYTES)];
    let mut lines_done = 0usize;
    loop {
        let n = reader
            .read(&mut buf)
            .map_err(|e| err(lines_done + 1, format!("read error: {e}")))?;
        if n == 0 {
            break;
        }
        pending.extend_from_slice(&buf[..n]);
        if pending.len() >= batch_bytes {
            // Cut at the last complete line; carry the tail. A pending
            // buffer with no newline yet (one enormous line) keeps
            // accumulating until its newline arrives.
            if let Some(pos) = pending.iter().rposition(|&b| b == b'\n') {
                let tail = pending.split_off(pos + 1);
                let block = std::mem::replace(&mut pending, tail);
                lines_done += parse_block(&block, &mut builder, exec, lines_done, &parse_into)?;
            }
        }
    }
    if !pending.is_empty() {
        let block = std::mem::take(&mut pending);
        parse_block(&block, &mut builder, exec, lines_done, &parse_into)?;
    }
    Ok(builder.finish())
}

/// Parses one line-complete block: fans line-aligned sub-chunks out over
/// the executor, then absorbs the per-chunk partials in chunk order.
/// Returns the number of lines in the block; errors are rebased from
/// chunk-relative to absolute line numbers, and the earliest failing
/// chunk wins — exactly the line the sequential parser would report.
fn parse_block<F>(
    block: &[u8],
    builder: &mut KbBuilder,
    exec: &Executor,
    line_offset: usize,
    parse_into: &F,
) -> Result<usize, ParseError>
where
    F: Fn(&str, &mut KbChunk) -> Result<usize, ParseError> + Sync,
{
    let align = |p: usize| {
        block[p..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|off| p + off + 1)
            .unwrap_or(block.len())
    };
    let results: Vec<Result<(KbChunk, usize), ParseError>> =
        exec.map_chunks(block.len(), align, |range| {
            let bytes = &block[range];
            let text = std::str::from_utf8(bytes).map_err(|e| {
                let bad_line = 1 + count_newlines(&bytes[..e.valid_up_to()]);
                err(bad_line, "invalid UTF-8 in input")
            })?;
            let mut chunk = KbChunk::new();
            let lines = parse_into(text, &mut chunk)?;
            Ok((chunk, lines))
        });
    let mut lines = 0usize;
    for result in results {
        match result {
            Ok((chunk, chunk_lines)) => {
                builder.absorb(chunk);
                lines += chunk_lines;
            }
            Err(mut e) => {
                e.line += line_offset + lines;
                return Err(e);
            }
        }
    }
    Ok(lines)
}

fn count_newlines(bytes: &[u8]) -> usize {
    bytes.iter().filter(|&&b| b == b'\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_ntriples() {
        let text = r#"
# a comment
<http://a/r1> <http://v/name> "Kri Kri" .
<http://a/r1> <http://v/address> <http://a/addr1> .
<http://a/addr1> <http://v/street> "12 Minos Ave"@en .
<http://a/addr1> <http://v/zip> "71202"^^<http://www.w3.org/2001/XMLSchema#string> .
"#;
        let kb = parse_ntriples("t", text).unwrap();
        assert_eq!(kb.entity_count(), 2);
        assert_eq!(kb.triple_count(), 4);
        let r1 = kb.entity_by_uri("http://a/r1").unwrap();
        assert!(kb.literals(r1).any(|l| l == "Kri Kri"));
        assert_eq!(kb.out_edges(r1).count(), 1);
        let a1 = kb.entity_by_uri("http://a/addr1").unwrap();
        assert!(kb.literals(a1).any(|l| l == "71202"));
    }

    #[test]
    fn literal_escapes() {
        let text = r#"<e:s> <e:p> "a \"quoted\" va\\lue\nnext" ."#;
        let kb = parse_ntriples("t", text).unwrap();
        let e = kb.entity_by_uri("e:s").unwrap();
        assert_eq!(kb.literals(e).next().unwrap(), "a \"quoted\" va\\lue\nnext");
    }

    #[test]
    fn unknown_escape_is_kept_verbatim() {
        let text = r#"<e:s> <e:p> "weird \q escape" ."#;
        let kb = parse_ntriples("t", text).unwrap();
        let e = kb.entity_by_uri("e:s").unwrap();
        assert_eq!(kb.literals(e).next().unwrap(), "weird \\q escape");
    }

    #[test]
    fn missing_dot_is_an_error() {
        let text = "<e:s> <e:p> <e:o>";
        let e = parse_ntriples("t", text).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("terminating"));
    }

    #[test]
    fn unterminated_literal_is_an_error() {
        let text = "<e:s> <e:p> \"oops .";
        let e = parse_ntriples("t", text).unwrap_err();
        assert!(e.message.contains("unterminated literal"));
        // Same failure through the escaped-literal slow path.
        let text = "<e:s> <e:p> \"oops \\t .";
        let e = parse_ntriples("t", text).unwrap_err();
        assert!(e.message.contains("unterminated literal"));
    }

    #[test]
    fn bad_subject_reports_line_number() {
        let text = "<e:a> <e:p> \"x\" .\nnot-a-uri <e:p> \"y\" .";
        let e = parse_ntriples("t", text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn tsv_round_trip() {
        let text = "s1\tname\tlit\tAlpha Beta\ns1\tknows\turi\ts2\ns2\tname\tlit\tGamma\n";
        let kb = parse_tsv("t", text).unwrap();
        assert_eq!(kb.entity_count(), 2);
        let dumped = to_tsv(&kb);
        let kb2 = parse_tsv("t2", &dumped).unwrap();
        assert_eq!(kb2.entity_count(), 2);
        assert_eq!(kb2.triple_count(), 3);
        let s1 = kb2.entity_by_uri("s1").unwrap();
        assert!(kb2.literals(s1).any(|l| l == "Alpha Beta"));
        assert_eq!(kb2.out_edges(s1).count(), 1);
    }

    #[test]
    fn ntriples_round_trip() {
        let text = "<e:s> <e:p> \"a \\\"q\\\" \\\\ tab\\there\" .\n<e:s> <e:q> <e:o> .\n<e:o> <e:p> \"plain\" .\n";
        let kb = parse_ntriples("t", text).unwrap();
        let dumped = to_ntriples(&kb);
        let kb2 = parse_ntriples("t", &dumped).unwrap();
        assert_eq!(kb, kb2);
        let s = kb2.entity_by_uri("e:s").unwrap();
        assert_eq!(kb2.literals(s).next().unwrap(), "a \"q\" \\ tab\there");
    }

    #[test]
    fn tsv_rejects_unknown_kind() {
        let e = parse_tsv("t", "s\tp\tblank\tx").unwrap_err();
        assert!(e.message.contains("unknown object kind"));
    }

    #[test]
    fn tsv_rejects_short_rows() {
        let e = parse_tsv("t", "s\tp\tlit").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn tsv_object_may_contain_further_tabs_no() {
        // The object is the 4th column onward (splitn keeps the tail intact).
        let kb = parse_tsv("t", "s\tp\tlit\ta\tb").unwrap();
        let s = kb.entity_by_uri("s").unwrap();
        assert_eq!(kb.literals(s).next().unwrap(), "a\tb");
    }

    fn tiny_opts(chunk_bytes: usize) -> StreamOptions {
        StreamOptions { chunk_bytes }
    }

    fn execs() -> [Executor; 3] {
        use minoan_exec::ExecutorKind;
        [
            Executor::sequential(),
            Executor::new(ExecutorKind::Rayon, 3),
            Executor::new(ExecutorKind::Rayon, 7),
        ]
    }

    #[test]
    fn streaming_tsv_matches_whole_string() {
        let text = "s1\tname\tlit\tAlpha Beta\ns1\tknows\turi\ts2\ns2\tname\tlit\tGamma\n";
        let whole = parse_tsv("t", text).unwrap();
        for exec in execs() {
            for chunk_bytes in [1, 3, 7, 64, 4096] {
                let streamed =
                    parse_tsv_reader("t", text.as_bytes(), &exec, tiny_opts(chunk_bytes)).unwrap();
                assert_eq!(whole, streamed, "chunk_bytes={chunk_bytes}");
            }
        }
    }

    #[test]
    fn streaming_ntriples_matches_whole_string() {
        let text = "<e:s> <e:p> \"multi βψτε ütf\\n\\\"quoted\\\"\" .\n<e:s> <e:q> <e:o> .\n<e:o> <e:p> \"plain\" .\n";
        let whole = parse_ntriples("t", text).unwrap();
        for exec in execs() {
            for chunk_bytes in [1, 2, 7, 64] {
                let streamed =
                    parse_ntriples_reader("t", text.as_bytes(), &exec, tiny_opts(chunk_bytes))
                        .unwrap();
                assert_eq!(whole, streamed, "chunk_bytes={chunk_bytes}");
            }
        }
    }

    #[test]
    fn streaming_errors_carry_absolute_line_numbers() {
        let mut text = String::new();
        for i in 0..100 {
            text.push_str(&format!("s{i}\tname\tlit\tvalue {i}\n"));
        }
        text.push_str("broken row without enough columns\n");
        let whole = parse_tsv("t", &text).unwrap_err();
        assert_eq!(whole.line, 101);
        for exec in execs() {
            for chunk_bytes in [1, 17, 256] {
                let streamed =
                    parse_tsv_reader("t", text.as_bytes(), &exec, tiny_opts(chunk_bytes))
                        .unwrap_err();
                assert_eq!(streamed, whole, "chunk_bytes={chunk_bytes}");
            }
        }
    }

    #[test]
    fn streaming_reports_earliest_error_like_sequential() {
        // Two bad lines; the earlier one must win even when they land in
        // different parallel chunks.
        let text = "s\tp\tlit\tok\nbad line one\nmore\tbad\tnope\tx\n";
        let whole = parse_tsv("t", text).unwrap_err();
        for exec in execs() {
            let streamed = parse_tsv_reader("t", text.as_bytes(), &exec, tiny_opts(4)).unwrap_err();
            assert_eq!(streamed, whole);
        }
    }

    #[test]
    fn streaming_invalid_utf8_is_an_error_with_line() {
        let mut bytes = b"s\tp\tlit\tfine\n".to_vec();
        bytes.extend_from_slice(b"s\tp\tlit\t\xff\xfe\n");
        let e = parse_tsv_reader(
            "t",
            bytes.as_slice(),
            &Executor::sequential(),
            tiny_opts(4096),
        )
        .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("UTF-8"));
    }

    #[test]
    fn streaming_handles_input_without_trailing_newline() {
        let text = "s1\tname\tlit\tAlpha\ns2\tname\tlit\tBeta";
        let whole = parse_tsv("t", text).unwrap();
        let streamed =
            parse_tsv_reader("t", text.as_bytes(), &Executor::sequential(), tiny_opts(5)).unwrap();
        assert_eq!(whole, streamed);
    }

    #[test]
    fn streaming_empty_input_is_an_empty_kb() {
        let kb = parse_tsv_reader(
            "t",
            &b""[..],
            &Executor::sequential(),
            StreamOptions::default(),
        )
        .unwrap();
        assert_eq!(kb.entity_count(), 0);
        assert_eq!(kb.triple_count(), 0);
    }
}
