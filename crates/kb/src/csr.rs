//! Compressed sparse row (CSR) storage.
//!
//! Per-entity adjacency (candidate lists, block memberships) was
//! originally stored as `Vec<Vec<T>>` — one heap allocation per entity.
//! [`Csr`] packs all rows into one flat item buffer plus an offsets
//! array: a single allocation, cache-friendly row scans, and cheap
//! construction from parallel partial results (each part fills a
//! contiguous, disjoint range of the buffer).

/// Rows of `T` packed into one flat buffer.
///
/// Row `i` occupies `items[offsets[i]..offsets[i + 1]]`; `offsets` always
/// has `rows + 1` entries, so an empty CSR still holds one zero offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T> {
    offsets: Vec<usize>,
    items: Vec<T>,
}

impl<T> Default for Csr<T> {
    fn default() -> Self {
        Self {
            offsets: vec![0],
            items: Vec::new(),
        }
    }
}

impl<T> Csr<T> {
    /// An empty CSR with `rows` empty rows.
    pub fn empty(rows: usize) -> Self {
        Self {
            offsets: vec![0; rows + 1],
            items: Vec::new(),
        }
    }

    /// Builds from per-row vectors, consuming them.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0);
        let total = rows.iter().map(Vec::len).sum();
        let mut items = Vec::with_capacity(total);
        for row in rows {
            items.extend(row);
            offsets.push(items.len());
        }
        Self { offsets, items }
    }

    /// Builds from row lengths and a pre-filled item buffer.
    ///
    /// Used by parallel constructors that compute lengths first, fill the
    /// flat buffer in disjoint ranges, then assemble. Panics unless the
    /// lengths sum to `items.len()`.
    pub fn from_lens_and_items(lens: &[usize], items: Vec<T>) -> Self {
        let offsets = offsets_from_lens(lens);
        assert_eq!(
            *offsets.last().expect("offsets never empty"),
            items.len(),
            "row lengths must sum to the item count"
        );
        Self { offsets, items }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of items across all rows.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.items[self.offsets[i]..self.offsets[i + 1]]
    }

    /// The item range of row `i` within [`Csr::items`].
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// The flat item buffer.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// The offsets array (`rows + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Iterates the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        (0..self.rows()).map(|i| self.row(i))
    }
}

/// Exclusive prefix sum of row lengths: the offsets array of a CSR.
pub fn offsets_from_lens(lens: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(lens.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &l in lens {
        acc += l;
        offsets.push(acc);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let csr = Csr::from_rows(vec![vec![1, 2], vec![], vec![3]]);
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.item_count(), 3);
        assert_eq!(csr.row(0), &[1, 2]);
        assert_eq!(csr.row(1), &[] as &[i32]);
        assert_eq!(csr.row(2), &[3]);
        assert_eq!(csr.row_range(2), 2..3);
        let rows: Vec<&[i32]> = csr.iter_rows().collect();
        assert_eq!(rows, vec![&[1, 2][..], &[][..], &[3][..]]);
    }

    #[test]
    fn from_lens_and_items_matches_from_rows() {
        let a = Csr::from_rows(vec![vec![10u8, 11], vec![12]]);
        let b = Csr::from_lens_and_items(&[2, 1], vec![10u8, 11, 12]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sum to the item count")]
    fn mismatched_lens_panic() {
        let _ = Csr::from_lens_and_items(&[1], vec![1u8, 2]);
    }

    #[test]
    fn empty_and_default() {
        let csr: Csr<u32> = Csr::empty(4);
        assert_eq!(csr.rows(), 4);
        assert_eq!(csr.item_count(), 0);
        assert_eq!(csr.row(3), &[] as &[u32]);
        let d: Csr<u32> = Csr::default();
        assert_eq!(d.rows(), 0);
    }

    #[test]
    fn offsets_are_a_prefix_sum() {
        assert_eq!(offsets_from_lens(&[2, 0, 3]), vec![0, 2, 2, 5]);
        assert_eq!(offsets_from_lens(&[]), vec![0]);
    }
}
