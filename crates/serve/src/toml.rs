//! A minimal TOML-subset reader producing [`Json`] values.
//!
//! The build environment has no registry access, so instead of a `toml`
//! dependency this module parses the slice of TOML that batch manifests
//! need — enough for flat configuration plus job lists, not a general
//! TOML implementation:
//!
//! - `key = value` pairs with bare (`[A-Za-z0-9_-]+`) or quoted keys;
//! - basic strings with `\" \\ \n \t \r \uXXXX \UXXXXXXXX` escapes;
//! - integers and floats (with `_` separators), booleans;
//! - single-line arrays `[1, 2, 3]`;
//! - `[table]` headers and `[[array-of-tables]]` headers with dotted
//!   paths.
//!
//! Unsupported TOML (dotted keys, inline tables, multi-line strings,
//! dates) is reported as an error with a line number, never silently
//! misread.

use minoan_kb::Json;

/// Parses a TOML-subset document into a JSON object.
pub fn parse_toml(text: &str) -> Result<Json, String> {
    let mut root = Json::Obj(Vec::new());
    // Path of the table currently receiving `key = value` lines, and
    // whether it addresses the *last element* of an array of tables.
    let mut current: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw, lineno)?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let header = header
                .strip_suffix("]]")
                .ok_or_else(|| format!("line {lineno}: unterminated [[table]] header"))?;
            let path = parse_path(header, lineno)?;
            push_array_table(&mut root, &path, lineno)?;
            current = path;
        } else if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated [table] header"))?;
            let path = parse_path(header, lineno)?;
            // Creating the table is enough; duplicates merge.
            navigate(&mut root, &path, lineno)?;
            current = path;
        } else {
            let (key, value) = split_key_value(line, lineno)?;
            let value = parse_value(value.trim(), lineno)?;
            let table = navigate(&mut root, &current, lineno)?;
            let Json::Obj(fields) = table else {
                return Err(format!("line {lineno}: target is not a table"));
            };
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("line {lineno}: duplicate key {key:?}"));
            }
            fields.push((key, value));
        }
    }
    Ok(root)
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str, lineno: usize) -> Result<&str, String> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return Ok(&line[..i]),
            _ => {}
        }
    }
    if in_str {
        return Err(format!("line {lineno}: unterminated string"));
    }
    Ok(line)
}

/// Splits `key = value`, supporting bare and quoted keys.
fn split_key_value(line: &str, lineno: usize) -> Result<(String, &str), String> {
    let bad = || format!("line {lineno}: expected `key = value`, got {line:?}");
    if let Some(rest) = line.strip_prefix('"') {
        let (key, rest) = parse_basic_string(rest, lineno)?;
        let rest = rest.trim_start();
        let rest = rest.strip_prefix('=').ok_or_else(bad)?;
        return Ok((key, rest));
    }
    let eq = line.find('=').ok_or_else(bad)?;
    let key = line[..eq].trim();
    if key.is_empty()
        || !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(format!(
            "line {lineno}: unsupported key {key:?} (bare keys are [A-Za-z0-9_-]+; \
             dotted keys are not supported — use a [table] header)"
        ));
    }
    Ok((key.to_string(), &line[eq + 1..]))
}

/// Parses a dotted table path (`serve.defaults`) into its segments.
fn parse_path(header: &str, lineno: usize) -> Result<Vec<String>, String> {
    let mut path = Vec::new();
    for seg in header.split('.') {
        let seg = seg.trim();
        if seg.is_empty()
            || !seg
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!("line {lineno}: bad table path segment {seg:?}"));
        }
        path.push(seg.to_string());
    }
    Ok(path)
}

/// Walks `path` from `root`, creating objects as needed; a path segment
/// landing on an array of tables descends into its **last** element
/// (TOML's `[[job]]` + `[job.sub]` semantics).
fn navigate<'a>(
    root: &'a mut Json,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut Json, String> {
    let mut node = root;
    for seg in path {
        // Descend arrays-of-tables to their last element first.
        if let Json::Arr(items) = node {
            node = items
                .last_mut()
                .ok_or_else(|| format!("line {lineno}: empty array of tables"))?;
        }
        let Json::Obj(fields) = node else {
            return Err(format!("line {lineno}: {seg:?} is not a table"));
        };
        let pos = match fields.iter().position(|(k, _)| k == seg) {
            Some(p) => p,
            None => {
                fields.push((seg.clone(), Json::Obj(Vec::new())));
                fields.len() - 1
            }
        };
        node = &mut fields[pos].1;
    }
    if let Json::Arr(items) = node {
        node = items
            .last_mut()
            .ok_or_else(|| format!("line {lineno}: empty array of tables"))?;
    }
    Ok(node)
}

/// Appends a fresh table to the array of tables at `path`.
fn push_array_table(root: &mut Json, path: &[String], lineno: usize) -> Result<(), String> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| format!("line {lineno}: empty [[table]] path"))?;
    let parent = navigate(root, parents, lineno)?;
    let Json::Obj(fields) = parent else {
        return Err(format!("line {lineno}: parent of {last:?} is not a table"));
    };
    match fields.iter_mut().find(|(k, _)| k == last) {
        Some((_, Json::Arr(items))) => {
            items.push(Json::Obj(Vec::new()));
            Ok(())
        }
        Some(_) => Err(format!(
            "line {lineno}: {last:?} is already a non-array value"
        )),
        None => {
            fields.push((last.clone(), Json::Arr(vec![Json::Obj(Vec::new())])));
            Ok(())
        }
    }
}

/// Parses one TOML value (string, number, boolean, single-line array).
fn parse_value(text: &str, lineno: usize) -> Result<Json, String> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix('"') {
        let (s, tail) = parse_basic_string(rest, lineno)?;
        if !tail.trim().is_empty() {
            return Err(format!("line {lineno}: trailing content after string"));
        }
        return Ok(Json::Str(s));
    }
    if text == "true" {
        return Ok(Json::Bool(true));
    }
    if text == "false" {
        return Ok(Json::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| {
            format!("line {lineno}: unterminated array (arrays must be single-line)")
        })?;
        let mut items = Vec::new();
        for part in split_array_items(inner, lineno)? {
            items.push(parse_value(&part, lineno)?);
        }
        return Ok(Json::Arr(items));
    }
    let digits: String = text.chars().filter(|&c| c != '_').collect();
    digits
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("line {lineno}: unsupported value {text:?}"))
}

/// Splits the interior of a single-line array on top-level commas.
fn split_array_items(inner: &str, lineno: usize) -> Result<Vec<String>, String> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| format!("line {lineno}: unbalanced brackets"))?
            }
            ',' if !in_str && depth == 0 => {
                items.push(inner[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = inner[start..].trim();
    if !last.is_empty() {
        items.push(last.to_string());
    }
    if items.iter().any(|s| s.trim().is_empty()) {
        return Err(format!("line {lineno}: empty array element"));
    }
    Ok(items)
}

/// Parses a basic string body (after the opening `"`), returning the
/// unescaped string and the text following the closing quote.
fn parse_basic_string(rest: &str, lineno: usize) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &rest[i + 1..])),
            '\\' => {
                let (_, esc) = chars
                    .next()
                    .ok_or_else(|| format!("line {lineno}: dangling escape"))?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    // TOML basic strings take both numeric escape
                    // lengths: \uXXXX (4 hex digits) and \UXXXXXXXX (8).
                    'u' | 'U' => {
                        let digits = if esc == 'u' { 4 } else { 8 };
                        let mut code = 0u32;
                        for _ in 0..digits {
                            let (_, h) = chars.next().ok_or_else(|| {
                                format!("line {lineno}: truncated \\{esc} escape")
                            })?;
                            code = code * 16
                                + h.to_digit(16).ok_or_else(|| {
                                    format!("line {lineno}: bad hex digit in \\{esc} escape")
                                })?;
                        }
                        // from_u32 rejects surrogate halves and code
                        // points beyond U+10FFFF.
                        out.push(char::from_u32(code).ok_or_else(|| {
                            format!(
                                "line {lineno}: \\{esc} escape U+{code:04X} is not a scalar value"
                            )
                        })?);
                    }
                    other => return Err(format!("line {lineno}: unknown escape \\{other}")),
                }
            }
            _ => out.push(c),
        }
    }
    Err(format!("line {lineno}: unterminated string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_keys_and_types() {
        let j = parse_toml(
            "a = 1\nb = 2.5\nc = \"text\"\nd = true\ne = [1, 2, 3]\nf = \"es\\\"c\\\\aped\"\n",
        )
        .unwrap();
        assert_eq!(j.get("a").unwrap().as_usize(), Some(1));
        assert_eq!(j.get("b").unwrap().as_f64(), Some(2.5));
        assert_eq!(j.get("c").unwrap().as_str(), Some("text"));
        assert_eq!(j.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(
            j.get("e").unwrap(),
            &Json::arr([Json::num(1.0), Json::num(2.0), Json::num(3.0)])
        );
        assert_eq!(j.get("f").unwrap().as_str(), Some("es\"c\\aped"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let j = parse_toml("# header\n\na = 1 # trailing\nb = \"with # hash\"\n").unwrap();
        assert_eq!(j.get("a").unwrap().as_usize(), Some(1));
        assert_eq!(j.get("b").unwrap().as_str(), Some("with # hash"));
    }

    #[test]
    fn tables_and_arrays_of_tables() {
        let text = "\
slots = 2\n\
[defaults]\ntheta = 0.5\n\
[[job]]\nname = \"a\"\n\
[[job]]\nname = \"b\"\nscale = 0.25\n";
        let j = parse_toml(text).unwrap();
        assert_eq!(j.get("slots").unwrap().as_usize(), Some(2));
        assert_eq!(
            j.get("defaults").unwrap().get("theta").unwrap().as_f64(),
            Some(0.5)
        );
        let Json::Arr(jobs) = j.get("job").unwrap() else {
            panic!("job should be an array")
        };
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(jobs[1].get("scale").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn dotted_table_paths() {
        let j = parse_toml("[a.b]\nc = 3\n").unwrap();
        assert_eq!(
            j.get("a")
                .unwrap()
                .get("b")
                .unwrap()
                .get("c")
                .unwrap()
                .as_usize(),
            Some(3)
        );
    }

    #[test]
    fn subtable_of_array_table_lands_on_last_element() {
        let text = "[[job]]\nname = \"x\"\n[job.opts]\ntheta = 0.4\n";
        let j = parse_toml(text).unwrap();
        let Json::Arr(jobs) = j.get("job").unwrap() else {
            panic!()
        };
        assert_eq!(
            jobs[0].get("opts").unwrap().get("theta").unwrap().as_f64(),
            Some(0.4)
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, needle) in [
            ("a.b = 1\n", "line 1"),
            ("x = {inline = 1}\n", "line 1"),
            ("ok = 1\nbad\n", "line 2"),
            ("s = \"unterminated\n", "line 1"),
            ("a = 1\na = 2\n", "duplicate"),
            ("v = [1,\n2]\n", "single-line"),
        ] {
            let err = parse_toml(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn numbers_with_underscores() {
        let j = parse_toml("n = 1_000_000\n").unwrap();
        assert_eq!(j.get("n").unwrap().as_usize(), Some(1_000_000));
    }

    #[test]
    fn long_unicode_escapes() {
        let j = parse_toml("s = \"min\\U0001F3DBoan \\u00e9\\U00000041\"\n").unwrap();
        assert_eq!(j.get("s").unwrap().as_str(), Some("min🏛oan éA"));
    }

    #[test]
    fn bad_numeric_escapes_are_rejected_with_lines() {
        for (text, needle) in [
            ("s = \"\\uD800\"\n", "not a scalar value"), // high surrogate
            ("s = \"\\U00110000\"\n", "not a scalar value"), // beyond U+10FFFF
            // 7 of 8 digits: the closing quote lands in the digit run.
            ("s = \"\\U0001F3D\"\n", "bad hex digit"),
            ("s = \"\\u12G4\"\n", "bad hex digit"),
            ("ok = 1\ns = \"\\uDFFF\"\n", "line 2"),
        ] {
            let err = parse_toml(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn quoted_array_elements_keep_commas_and_brackets() {
        // Commas, brackets (balanced and not), hashes and escaped quotes
        // inside quoted elements must never split or truncate items.
        let j = parse_toml("a = [\"x,y\", \"a]b\", \"[c\", \"]\", \"q\\\"r,s\\\"\", \"h#i\"]\n")
            .unwrap();
        let Json::Arr(items) = j.get("a").unwrap() else {
            panic!("a should be an array")
        };
        let got: Vec<&str> = items.iter().map(|v| v.as_str().unwrap()).collect();
        assert_eq!(got, ["x,y", "a]b", "[c", "]", "q\"r,s\"", "h#i"]);
    }

    #[test]
    fn nested_arrays_with_quoted_brackets() {
        let j = parse_toml("a = [[\"p,q\", \"r]\"], [1, 2], []]\n").unwrap();
        let Json::Arr(outer) = j.get("a").unwrap() else {
            panic!()
        };
        assert_eq!(outer.len(), 3);
        assert_eq!(outer[0], Json::arr([Json::str("p,q"), Json::str("r]")]));
        assert_eq!(outer[1], Json::arr([Json::num(1.0), Json::num(2.0)]));
        assert_eq!(outer[2], Json::arr([]));
    }

    #[test]
    fn trailing_commas_and_unbalanced_brackets() {
        let j = parse_toml("a = [1, 2,]\n").unwrap();
        assert_eq!(
            j.get("a").unwrap(),
            &Json::arr([Json::num(1.0), Json::num(2.0)])
        );
        let err = parse_toml("a = [1]]\n").unwrap_err();
        assert!(
            err.contains("unbalanced") || err.contains("trailing"),
            "{err}"
        );
        let err = parse_toml("a = [1, , 2]\n").unwrap_err();
        assert!(err.contains("empty array element"), "{err}");
    }
}
