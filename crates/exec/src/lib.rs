//! # minoan-exec — the executor layer of MinoanER
//!
//! MinoanER is a *massively parallel* ER method: the paper's efficiency
//! argument (§III) is that every similarity is a function of block
//! statistics computed in one data-parallel pass over blocks. This crate
//! provides the executor abstraction the hot layers (blocking, similarity
//! indexing, matching) run on:
//!
//! - [`Executor`] with a [`Sequential`](ExecutorKind::Sequential) and a
//!   [`Rayon`](ExecutorKind::Rayon) backend, selected by configuration;
//! - ordered fan-out primitives ([`Executor::map_parts`],
//!   [`Executor::map_range`]) whose merged output is **independent of the
//!   thread count**, so parallel runs are bit-identical to sequential
//!   ones by construction;
//! - [`SharedSlice`], the unsafe-but-audited escape hatch for writing
//!   disjoint index ranges of one buffer from multiple threads (CSR
//!   fills and transposes).
//!
//! Design rule for all call sites: a parallel algorithm must produce the
//! *same bytes* as its one-part sequential specialization. Partial
//! results are always merged in part order, floating-point accumulation
//! order per key is kept identical across shard counts, and ties are
//! broken by entity id — never by thread arrival order.

#![warn(missing_docs)]

pub mod shared;

pub use shared::SharedSlice;

use std::fmt;
use std::ops::Range;
use std::str::FromStr;

/// Which backend an [`Executor`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutorKind {
    /// Everything on the calling thread, one part per fan-out.
    Sequential,
    /// Data-parallel over the rayon backend (structured scoped threads).
    #[default]
    Rayon,
}

impl ExecutorKind {
    /// Canonical lower-case name (`"sequential"` / `"rayon"`).
    pub fn name(self) -> &'static str {
        match self {
            ExecutorKind::Sequential => "sequential",
            ExecutorKind::Rayon => "rayon",
        }
    }
}

impl fmt::Display for ExecutorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ExecutorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sequential" | "seq" | "serial" => Ok(ExecutorKind::Sequential),
            "rayon" | "parallel" | "par" => Ok(ExecutorKind::Rayon),
            other => Err(format!(
                "unknown executor {other:?} (expected sequential|rayon)"
            )),
        }
    }
}

/// Hard cap on worker threads. The rayon backend spawns one scoped OS
/// thread per part, so an absurd `--threads` request must not translate
/// into an absurd spawn count.
pub const MAX_THREADS: usize = 256;

/// A configured executor: backend plus thread budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    kind: ExecutorKind,
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(ExecutorKind::default(), 0)
    }
}

impl Executor {
    /// An executor of `kind` with a thread budget (`0` = all available).
    pub fn new(kind: ExecutorKind, threads: usize) -> Self {
        Self { kind, threads }
    }

    /// The sequential executor.
    pub fn sequential() -> Self {
        Self::new(ExecutorKind::Sequential, 1)
    }

    /// The rayon executor using all available parallelism.
    pub fn rayon() -> Self {
        Self::new(ExecutorKind::Rayon, 0)
    }

    /// The backend kind.
    pub fn kind(&self) -> ExecutorKind {
        self.kind
    }

    /// Effective number of worker threads (always in
    /// `1..=`[`MAX_THREADS`]; `Sequential` is 1).
    pub fn threads(&self) -> usize {
        match self.kind {
            ExecutorKind::Sequential => 1,
            ExecutorKind::Rayon => {
                let requested = if self.threads == 0 {
                    rayon::current_num_threads()
                } else {
                    self.threads
                };
                requested.clamp(1, MAX_THREADS)
            }
        }
    }

    /// Splits `0..n` into at most [`Executor::threads`] contiguous,
    /// balanced, ascending ranges. Deterministic in `n` and the thread
    /// count; never returns an empty range (and returns no ranges for
    /// `n == 0`).
    pub fn part_ranges(&self, n: usize) -> Vec<Range<usize>> {
        if n == 0 {
            return Vec::new();
        }
        let parts = self.threads().min(n).max(1);
        let base = n / parts;
        let extra = n % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0;
        for p in 0..parts {
            let len = base + usize::from(p < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }

    /// Fans `f` out over the part ranges of `0..n`, returning one result
    /// per part **in part order**. The sequential backend runs a single
    /// part covering the whole range, so `map_parts` callers that merge
    /// partials by concatenation degrade to the plain sequential
    /// algorithm.
    pub fn map_parts<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = self.part_ranges(n);
        if ranges.len() <= 1 {
            return ranges.into_iter().map(f).collect();
        }
        let mut out: Vec<Option<R>> = ranges.iter().map(|_| None).collect();
        rayon::scope(|s| {
            let f = &f;
            for (slot, range) in out.iter_mut().zip(ranges) {
                s.spawn(move || {
                    *slot = Some(f(range));
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("executor part did not run"))
            .collect()
    }

    /// Maps `f` over `0..n`, returning results in index order.
    pub fn map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut parts = self.map_parts(n, |range| range.map(&f).collect::<Vec<R>>());
        if parts.len() == 1 {
            return parts.pop().expect("one part");
        }
        let mut out = Vec::with_capacity(n);
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Runs `f` once per shard id in `0..shards`, returning results in
    /// shard order. Exactly [`Executor::map_range`], named for call sites
    /// that fan out over ownership shards (`key % shards`) rather than
    /// index ranges.
    pub fn map_shards<R, F>(&self, shards: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.map_range(shards, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [Executor; 3] {
        [
            Executor::sequential(),
            Executor::new(ExecutorKind::Rayon, 3),
            Executor::new(ExecutorKind::Rayon, 16),
        ]
    }

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!("seq".parse::<ExecutorKind>(), Ok(ExecutorKind::Sequential));
        assert_eq!("RAYON".parse::<ExecutorKind>(), Ok(ExecutorKind::Rayon));
        assert_eq!("par".parse::<ExecutorKind>(), Ok(ExecutorKind::Rayon));
        assert!("gpu".parse::<ExecutorKind>().is_err());
        assert_eq!(ExecutorKind::Sequential.to_string(), "sequential");
    }

    #[test]
    fn threads_are_effective() {
        assert_eq!(Executor::sequential().threads(), 1);
        assert_eq!(Executor::new(ExecutorKind::Rayon, 5).threads(), 5);
        assert!(Executor::rayon().threads() >= 1);
    }

    #[test]
    fn absurd_thread_requests_are_clamped() {
        let exec = Executor::new(ExecutorKind::Rayon, 1_000_000);
        assert_eq!(exec.threads(), MAX_THREADS);
        // And the fan-out still works at the cap.
        assert_eq!(exec.map_range(10, |i| i).len(), 10);
    }

    #[test]
    fn part_ranges_partition_the_input() {
        for exec in both() {
            for n in [0usize, 1, 2, 7, 100] {
                let ranges = exec.part_ranges(n);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "contiguous ascending");
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                assert_eq!(expect, n);
            }
        }
    }

    #[test]
    fn map_range_is_ordered_regardless_of_backend() {
        let expected: Vec<usize> = (0..101).map(|i| i * i).collect();
        for exec in both() {
            assert_eq!(exec.map_range(101, |i| i * i), expected);
        }
    }

    #[test]
    fn map_parts_merges_in_part_order() {
        for exec in both() {
            let parts = exec.map_parts(50, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_shards_runs_every_shard() {
        for exec in both() {
            assert_eq!(exec.map_shards(5, |s| s), vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn zero_items_is_fine() {
        for exec in both() {
            assert!(exec.map_parts(0, |_| 0u8).is_empty());
            assert!(exec.map_range(0, |_| 0u8).is_empty());
        }
    }
}
