//! Property-style tests over the core data structures and invariants.
//!
//! The build environment has no registry access, so instead of proptest
//! these run each property over many inputs drawn from a small in-file
//! deterministic generator (fixed seeds — failures are reproducible).

use minoaner::baselines::{umc_trace, unique_mapping_clustering};
use minoaner::blocking::{
    canonical_name, purge, token_blocking, Block, BlockCollection, BlockKind,
};
use minoaner::core::MinoanEr;
use minoaner::kb::{EntityId, KbBuilder, KbPair, Matching};
use minoaner::sim::{token_weight, value_sim};
use minoaner::text::{TokenizedPair, Tokenizer};

/// Minimal deterministic generator (SplitMix64) for the test inputs.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// Uniform value in `[lo, hi]`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

const WORDS: [&str; 8] = [
    "alpha", "beta", "gamma", "delta", "knossos", "zakros", "malia", "phaistos",
];

/// A random small KB pair over a small token universe.
fn arb_kb_pair(gen: &mut Gen) -> KbPair {
    let mut side = |prefix: char, attr: char| {
        let mut b = KbBuilder::new(if prefix == 'a' { "E1" } else { "E2" });
        for i in 0..gen.range(1, 11) {
            for j in 0..gen.range(1, 3) {
                let literal = (0..gen.range(1, 4))
                    .map(|_| WORDS[gen.below(WORDS.len())])
                    .collect::<Vec<_>>()
                    .join(" ");
                b.add_literal(&format!("{prefix}:{i}"), &format!("{attr}{j}"), &literal);
            }
        }
        b.finish()
    };
    let first = side('a', 'p');
    let second = side('b', 'q');
    KbPair::new(first, second)
}

#[test]
fn value_sim_is_nonnegative_and_finite() {
    let mut gen = Gen(1);
    for _ in 0..40 {
        let pair = arb_kb_pair(&mut gen);
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        for e1 in pair.first.entities() {
            for e2 in pair.second.entities() {
                let v = value_sim(&tokens, e1, e2);
                assert!(v >= 0.0);
                assert!(v.is_finite());
            }
        }
    }
}

#[test]
fn token_weight_is_in_unit_range() {
    let mut gen = Gen(2);
    for _ in 0..2000 {
        let ef1 = gen.range(1, 100_000) as u32;
        let ef2 = gen.range(1, 100_000) as u32;
        let w = token_weight(ef1, ef2);
        assert!(w > 0.0 && w <= 1.0, "weight {w} for ({ef1},{ef2})");
    }
}

#[test]
fn token_weight_decreases_with_frequency() {
    let mut gen = Gen(3);
    for _ in 0..2000 {
        let ef = gen.range(1, 10_000) as u32;
        assert!(token_weight(ef, 1) >= token_weight(ef + 1, 1));
        assert!(token_weight(ef, ef) >= token_weight(ef + 1, ef + 1));
    }
}

#[test]
fn purging_never_increases_comparisons_or_blocks() {
    let mut gen = Gen(4);
    for _ in 0..60 {
        let blocks: Vec<Block> = (0..gen.range(1, 39))
            .map(|k| Block {
                key: k as u32,
                firsts: (0..gen.range(1, 19) as u32).map(EntityId).collect(),
                seconds: (0..gen.range(1, 19) as u32).map(EntityId).collect(),
            })
            .collect();
        let c = BlockCollection::new(BlockKind::Token, blocks, 20, 20);
        let (p, report) = purge(&c);
        assert!(p.total_comparisons() <= c.total_comparisons());
        assert!(p.len() <= c.len());
        assert_eq!(report.comparisons_after, p.total_comparisons());
        // The survivors respect the threshold.
        for b in p.blocks() {
            assert!(b.comparisons() <= report.max_comparisons_per_block);
        }
    }
}

#[test]
fn umc_output_is_a_partial_matching_and_trace_is_sorted() {
    let mut gen = Gen(5);
    for _ in 0..60 {
        let scored: Vec<(EntityId, EntityId, f64)> = (0..gen.below(200))
            .map(|_| {
                (
                    EntityId(gen.below(30) as u32),
                    EntityId(gen.below(30) as u32),
                    gen.unit(),
                )
            })
            .collect();
        let t = gen.unit();
        let m = unique_mapping_clustering(&scored, t);
        assert!(m.is_partial_matching());
        // Trace is sorted by score descending.
        let trace = umc_trace(&scored);
        assert!(trace.windows(2).all(|w| w[0].2 >= w[1].2));
    }
}

#[test]
fn canonical_name_is_idempotent_and_space_normal() {
    let mut gen = Gen(6);
    for _ in 0..300 {
        // Random strings over a printable-ish alphabet with punctuation.
        let s: String = (0..gen.below(60))
            .map(|_| {
                let c = gen.below(80) as u8 + 0x20;
                c as char
            })
            .collect();
        let c1 = canonical_name(&s);
        let c2 = canonical_name(&c1);
        assert_eq!(c1, c2, "input {s:?}");
        assert!(!c1.contains("  "));
        assert!(!c1.starts_with(' ') && !c1.ends_with(' '));
    }
    // Non-ASCII sanity.
    assert_eq!(canonical_name("Πολύ-Ωραία"), canonical_name("πολύ ωραία"));
}

#[test]
fn token_blocking_only_pairs_entities_sharing_a_token() {
    let mut gen = Gen(7);
    for _ in 0..40 {
        let pair = arb_kb_pair(&mut gen);
        let tokens = TokenizedPair::build(&pair, &Tokenizer::default());
        let bt = token_blocking(&tokens);
        for (e1, e2) in bt.distinct_pairs() {
            let v = value_sim(&tokens, e1, e2);
            assert!(v > 0.0, "co-occurring pair must share a token");
        }
    }
}

#[test]
fn pipeline_never_panics_and_reports_consistently() {
    let mut gen = Gen(8);
    for _ in 0..40 {
        let pair = arb_kb_pair(&mut gen);
        let out = MinoanEr::with_defaults().run(&pair);
        let r = &out.report;
        assert_eq!(
            out.matching.len() + r.h4_removed,
            r.h1_matches + r.h2_matches + r.h3_matches
        );
    }
}

#[test]
fn matching_insert_contains_roundtrip() {
    let mut gen = Gen(9);
    for _ in 0..60 {
        let pairs: Vec<(u32, u32)> = (0..gen.below(100))
            .map(|_| (gen.below(50) as u32, gen.below(50) as u32))
            .collect();
        let m = Matching::from_pairs(pairs.iter().map(|&(a, b)| (EntityId(a), EntityId(b))));
        for &(a, b) in &pairs {
            assert!(m.contains(EntityId(a), EntityId(b)));
        }
        let distinct: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(m.len(), distinct.len());
    }
}
