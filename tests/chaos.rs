//! Chaos suite: supervised-lifecycle tests under **deterministic fault
//! injection** (`minoaner::exec::faults`). Every scenario here arms a
//! seeded fault plan, drives real jobs through the scheduler or the
//! HTTP front-end, and asserts the supervisor's contract: transient
//! failures retry to **bit-identical** results, deadlines expire within
//! a checkpoint quantum, repeated panics quarantine, the RSS watchdog
//! kills only the offender, and overload sheds with retryable errors.
//!
//! Fault arming is process-global, so every test serializes on one
//! lock and disarms on exit (panic-safe via [`DisarmGuard`]). The CI
//! bench-smoke sweeps this binary at `MINOAN_FAULTS=seed:1|7|42`; the
//! seed flows into each test's plan through [`ci_seed`], so the suite
//! must hold at any seed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use minoaner::core::{IndexArtifact, MinoanEr};
use minoaner::datagen::DatasetKind;
use minoaner::exec::{faults, Executor};
use minoaner::kb::{DeltaOp, Json, KbBuilder, KbPair, KbSide, Object};
use minoaner::serve::{
    run_http, CancelToken, HttpOptions, JobInput, JobQueue, JobSpec, JobStatus, QueueStats,
    ServeOptions,
};

/// Serializes every test in this binary: fault plans are process-global
/// state, and an armed site would otherwise fire in a neighbor test's
/// jobs. Poison-tolerant so one failed test does not cascade.
static ARM_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    ARM_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Disarms the fault plan when dropped, even if the test panicked.
struct DisarmGuard;

impl Drop for DisarmGuard {
    fn drop(&mut self) {
        faults::disarm();
    }
}

/// The seed this run should derive its fault plans from: the `seed:N`
/// clause of `MINOAN_FAULTS` when the CI sweep sets one, else a fixed
/// default. Parsed from the environment directly (not via
/// [`faults::armed_seed`]) because tests re-arm and disarm the global
/// plan as they run.
fn ci_seed() -> u64 {
    std::env::var("MINOAN_FAULTS")
        .ok()
        .and_then(|spec| {
            spec.split(',')
                .find_map(|clause| clause.trim().strip_prefix("seed:")?.trim().parse().ok())
        })
        .unwrap_or(42)
}

/// A scratch directory that cleans up after itself.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("minoan-chaos-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn file(&self, name: &str, content: &str) -> std::path::PathBuf {
        let path = self.0.join(name);
        std::fs::write(&path, content).expect("write scratch file");
        path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A tiny two-sided TSV pair whose entities match on a distinctive name.
fn tsv_pair(tag: usize) -> (String, String) {
    let mut a = String::new();
    let mut b = String::new();
    for i in 0..8 {
        a.push_str(&format!("a:{i}\tname\tlit\tspecimen{tag}x{i} artifact\n"));
        b.push_str(&format!("b:{i}\tlabel\tlit\tspecimen{tag}x{i} artifact\n"));
    }
    (a, b)
}

fn file_spec(name: &str, first: std::path::PathBuf, second: std::path::PathBuf) -> JobSpec {
    JobSpec {
        name: name.into(),
        input: JobInput::Files { first, second },
        truth: None,
        theta: None,
        candidates_k: None,
        purge_blocks: None,
        timeout_ms: None,
        max_retries: None,
        persist: None,
    }
}

fn synthetic_spec(name: &str, scale: f64) -> JobSpec {
    JobSpec {
        name: name.into(),
        input: JobInput::Synthetic {
            kind: DatasetKind::Restaurant,
            seed: 20180416,
            scale,
        },
        truth: None,
        theta: None,
        candidates_k: None,
        purge_blocks: None,
        timeout_ms: None,
        max_retries: None,
        persist: None,
    }
}

/// Closes the queue, runs its workers to completion, and returns the
/// final telemetry (reports stay in the queue for `into_reports`).
fn drain(queue: &JobQueue, opts: &ServeOptions) -> QueueStats {
    queue.close();
    let fleet = CancelToken::new();
    std::thread::scope(|scope| {
        for _ in 0..queue.slots() {
            scope.spawn(|| queue.worker(opts, &fleet, &|_, _| {}));
        }
    });
    queue.stats()
}

/// An injected transient I/O failure must burn one retry attempt and
/// still produce a result **bit-identical** to an un-faulted run: the
/// retried attempt starts from a fresh token and the same inputs, so
/// the fingerprint cannot drift.
#[test]
fn injected_io_fault_retries_to_a_bit_identical_fingerprint() {
    let _lock = locked();
    let _disarm = DisarmGuard;
    let scratch = ScratchDir::new("retry-fp");
    let (a, b) = tsv_pair(3);
    let first = scratch.file("a.tsv", &a);
    let second = scratch.file("b.tsv", &b);
    let opts = ServeOptions::default();

    // Baseline: no faults, no retries.
    faults::disarm();
    let queue = JobQueue::new(1, 1, 0);
    queue
        .submit(file_spec("pair", first.clone(), second.clone()))
        .unwrap();
    drain(&queue, &opts);
    let baseline = queue.into_reports().remove(0);
    assert_eq!(baseline.status, JobStatus::Ok);
    assert_eq!(baseline.matches.len(), 8);
    let fingerprint = baseline.fingerprint();

    // Prove the fault actually fires: with no retry budget the injected
    // read error surfaces as a plain failure.
    let plan = format!("seed:{},kb.parse.read:1:io:1", ci_seed());
    faults::arm(&plan).unwrap();
    let queue = JobQueue::new(1, 1, 0);
    queue
        .submit(file_spec("pair", first.clone(), second.clone()))
        .unwrap();
    let stats = drain(&queue, &opts);
    let failed = queue.into_reports().remove(0);
    let JobStatus::Failed(err) = &failed.status else {
        panic!(
            "armed run without retries should fail, got {:?}",
            failed.status
        );
    };
    assert!(err.contains("injected fault"), "unexpected error: {err}");
    assert_eq!(stats.retries_scheduled, 0);

    // Re-arm (resetting the fire counter) and grant one retry: the
    // first attempt eats the fault, the second runs clean.
    faults::arm(&plan).unwrap();
    let queue = JobQueue::new(1, 1, 0);
    let mut spec = file_spec("pair", first, second);
    spec.max_retries = Some(1);
    let id = queue.submit(spec).unwrap();
    let stats = drain(&queue, &opts);
    // Each attempt ran under its own trace ID, so the faulted attempt's
    // spans and events can never interleave with the clean one's.
    let traces = queue.trace_ids(id).expect("retried job is known");
    assert_eq!(traces.len(), 2, "one trace per attempt: {traces:?}");
    assert_ne!(traces[0], traces[1], "attempts must not share a trace ID");
    let retried = queue.into_reports().remove(0);
    assert_eq!(retried.status, JobStatus::Ok, "retry must recover");
    assert_eq!(stats.retries_scheduled, 1);
    assert_eq!(stats.done_failed, 0);
    assert_eq!(
        retried.fingerprint(),
        fingerprint,
        "a retried job must be bit-identical to an un-faulted run"
    );
}

/// Two injected panics across retry attempts quarantine the job as
/// `Poisoned` even with retry budget left, so a deterministic crasher
/// cannot wedge the fleet in a retry loop.
#[test]
fn a_job_that_panics_twice_is_poisoned() {
    let _lock = locked();
    let _disarm = DisarmGuard;
    let plan = format!("seed:{},serve.job.execute:1:panic:2", ci_seed());
    faults::arm(&plan).unwrap();
    let opts = ServeOptions::default();
    let queue = JobQueue::new(1, 1, 0);
    let mut spec = synthetic_spec("crasher", 0.03);
    spec.max_retries = Some(3);
    let id = queue.submit(spec).unwrap();
    let stats = drain(&queue, &opts);
    // Both attempts (the retried panic and the terminal one) got
    // pairwise-distinct trace IDs.
    let traces = queue.trace_ids(id).expect("poisoned job is known");
    assert_eq!(traces.len(), 2, "one trace per attempt: {traces:?}");
    assert_ne!(traces[0], traces[1], "attempts must not share a trace ID");
    let report = queue.into_reports().remove(0);
    let JobStatus::Poisoned(detail) = &report.status else {
        panic!("two panics should poison the job, got {:?}", report.status);
    };
    assert!(detail.contains("injected panic"), "detail: {detail}");
    assert_eq!(stats.done_poisoned, 1);
    // One retry after the first panic; the second panic is terminal
    // despite two attempts of budget remaining.
    assert_eq!(stats.retries_scheduled, 1);
    assert!(report.matches.is_empty());
}

/// A deadline expiring during an injected stall resolves to `TimedOut`
/// within roughly one checkpoint quantum — and a concurrent job with no
/// deadline sails through the same stall untouched.
#[test]
fn deadline_expiry_is_contained_to_the_stalled_job() {
    let _lock = locked();
    let _disarm = DisarmGuard;
    // Both jobs stall 100ms at execute; only the victim has a 20ms
    // deadline racing that stall.
    let plan = format!("seed:{},serve.job.execute:1:delay:2", ci_seed());
    faults::arm(&plan).unwrap();
    let opts = ServeOptions::default();
    let queue = JobQueue::new(2, 2, 0);
    let mut victim = synthetic_spec("victim", 0.03);
    victim.timeout_ms = Some(20);
    queue.submit(victim).unwrap();
    queue.submit(synthetic_spec("neighbor", 0.03)).unwrap();
    let stats = drain(&queue, &opts);
    let reports = queue.into_reports();
    assert_eq!(reports[0].status, JobStatus::TimedOut);
    assert!(reports[0].matches.is_empty());
    // The expiry is observed at the first checkpoint after the stall,
    // not after the full pipeline: the victim's wall time stays in the
    // stall's order of magnitude.
    assert!(
        reports[0].wall < Duration::from_secs(2),
        "timeout observed too late: {:?}",
        reports[0].wall
    );
    assert_eq!(
        reports[1].status,
        JobStatus::Ok,
        "a neighbor without a deadline must be undisturbed"
    );
    assert_eq!(stats.done_timed_out, 1);
    assert_eq!(stats.done_ok, 1);
}

/// The RSS watchdog kills a job whose injected allocation spike blows
/// past its admission estimate — and only that job: the next job in the
/// same fleet completes normally.
#[test]
fn rss_watchdog_kills_the_over_budget_job_and_spares_the_fleet() {
    let _lock = locked();
    let _disarm = DisarmGuard;
    // One 64 MiB resident spike at the first execute; tiny file jobs
    // have admission estimates orders of magnitude below it.
    let plan = format!("seed:{},serve.job.execute:1:alloc:1", ci_seed());
    faults::arm(&plan).unwrap();
    let scratch = ScratchDir::new("rss");
    let (a, b) = tsv_pair(5);
    let first = scratch.file("a.tsv", &a);
    let second = scratch.file("b.tsv", &b);
    let opts = ServeOptions {
        rss_kill_factor: Some(1.0),
        ..ServeOptions::default()
    };
    // One slot: jobs run one at a time, so the process-wide RSS spike
    // is attributed to the job that caused it.
    let queue = JobQueue::new(1, 1, 0);
    queue
        .submit(file_spec("spiker", first.clone(), second.clone()))
        .unwrap();
    queue.submit(file_spec("neighbor", first, second)).unwrap();
    let stats = drain(&queue, &opts);
    let reports = queue.into_reports();
    assert_eq!(
        reports[0].status,
        JobStatus::KilledOverBudget,
        "the spiking job must be killed by the watchdog"
    );
    assert!(reports[0].matches.is_empty());
    assert_eq!(
        reports[1].status,
        JobStatus::Ok,
        "the fleet must absorb the kill"
    );
    assert_eq!(reports[1].matches.len(), 8);
    assert_eq!(stats.done_killed_over_budget, 1);
    assert_eq!(stats.done_ok, 1);
}

/// A minimal test-side HTTP client: one fresh connection per request,
/// `Connection: close`, whole-response reads.
struct Http {
    addr: SocketAddr,
}

/// Status code, full header section, body.
struct Raw {
    status: u16,
    head: String,
    body: String,
}

impl Http {
    fn request(&self, method: &str, path: &str, body: Option<&Json>) -> Raw {
        let payload = body.map(Json::compact).unwrap_or_default();
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
        if !payload.is_empty() {
            head += &format!("Content-Length: {}\r\n", payload.len());
        }
        head += "\r\n";
        let mut stream = TcpStream::connect(self.addr).expect("connect");
        stream
            .write_all(format!("{head}{payload}").as_bytes())
            .expect("send");
        stream.flush().unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read response");
        let raw = String::from_utf8(raw).expect("responses are UTF-8");
        let (head, body) = raw
            .split_once("\r\n\r\n")
            .unwrap_or_else(|| panic!("no header/body split in {raw:?}"));
        let status = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line in {head:?}"));
        Raw {
            status,
            head: head.to_string(),
            body: body.to_string(),
        }
    }

    fn json(&self, method: &str, path: &str, body: Option<&Json>, expect: u16) -> Json {
        let r = self.request(method, path, body);
        assert_eq!(r.status, expect, "{method} {path}: {}", r.body);
        Json::parse(&r.body).expect("JSON body")
    }

    fn submit_raw(&self, name: &str, scale: f64) -> Raw {
        let job = Json::obj([
            ("name", Json::str(name)),
            ("dataset", Json::str("restaurant")),
            ("seed", Json::num(20180416.0)),
            ("scale", Json::Num(scale)),
        ]);
        self.request("POST", "/v1/jobs", Some(&job))
    }

    fn submit(&self, name: &str, scale: f64) -> usize {
        let r = self.submit_raw(name, scale);
        assert_eq!(r.status, 201, "submit {name}: {}", r.body);
        Json::parse(&r.body)
            .expect("JSON body")
            .get("id")
            .and_then(Json::as_usize)
            .expect("submit id")
    }

    /// Blocks until the job is terminal; returns its status label.
    fn wait(&self, id: usize) -> String {
        let r = self.json("GET", &format!("/v1/jobs/{id}?wait=true"), None, 200);
        r.get("status")
            .and_then(Json::as_str)
            .expect("status")
            .to_string()
    }

    /// Polls the job until it leaves the queued phase.
    fn await_running(&self, id: usize) {
        let t0 = Instant::now();
        loop {
            let r = self.json("GET", &format!("/v1/jobs/{id}"), None, 200);
            let phase = r.get("phase").and_then(Json::as_str).unwrap().to_string();
            if phase != "queued" {
                return;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(60),
                "job #{id} never dispatched"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn shutdown(&self) {
        self.json("POST", "/v1/shutdown", None, 200);
    }
}

/// Runs `body` against a live HTTP server. A panicking `body` still
/// shuts the server down before the panic resumes, so a failed
/// assertion reports as a failure instead of wedging the scope join.
fn with_server<T>(opts: ServeOptions, options: HttpOptions, body: impl FnOnce(&Http) -> T) -> T {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(move || run_http(listener, &opts, options, |_| {}).unwrap());
        let client = Http { addr };
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&client)));
        let out = out.unwrap_or_else(|panic| {
            if let Ok(mut stream) = TcpStream::connect(addr) {
                let _ = stream.write_all(
                    b"POST /v1/shutdown HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                );
                let _ = stream.read_to_end(&mut Vec::new());
            }
            std::panic::resume_unwind(panic);
        });
        server.join().unwrap();
        out
    })
}

/// Overload shedding end to end through a real HTTP client: past the
/// queue-depth high-water mark a submit gets `429` + `Retry-After`, and
/// the *same* submission succeeds once the queue drains — the
/// shed-then-retry loop a well-behaved client runs.
#[test]
fn http_sheds_past_the_high_water_mark_then_accepts_the_retry() {
    let _lock = locked();
    let _disarm = DisarmGuard;
    // Stall the first job 100ms at execute so the queue is reliably
    // backed up while the client probes the shed path.
    let plan = format!("seed:{},serve.job.execute:1:delay:1", ci_seed());
    faults::arm(&plan).unwrap();
    let opts = ServeOptions {
        slots: Some(1),
        threads: Some(1),
        shed_queue_depth: Some(1),
        ..ServeOptions::default()
    };
    with_server(opts, HttpOptions::default(), |http| {
        let first = http.submit("running", 0.08);
        http.await_running(first);
        // One slot is busy; this job parks in the queue at the mark.
        let queued = http.submit("queued", 0.03);
        // Past the mark: shed with a retryable 429.
        let shed = http.submit_raw("shed", 0.03);
        assert_eq!(shed.status, 429, "expected shed, got: {}", shed.body);
        assert!(
            shed.head.contains("Retry-After:"),
            "429 must carry Retry-After: {}",
            shed.head
        );
        assert!(shed.body.contains("overloaded"), "body: {}", shed.body);

        // Drain, then retry the shed submission: it must be accepted.
        assert_eq!(http.wait(first), "ok");
        assert_eq!(http.wait(queued), "ok");
        let retried = http.submit("shed", 0.03);
        assert_eq!(http.wait(retried), "ok");

        // The shed is visible in the Prometheus telemetry.
        let metrics = http.request("GET", "/v1/metrics", None);
        assert_eq!(metrics.status, 200);
        assert!(
            metrics.body.contains("minoan_jobs_shed_total 1"),
            "metrics must count the shed submission"
        );
        http.shutdown();
    });
}

/// Past the connection cap the accept loop answers `503` +
/// `Retry-After` without spawning a handler; once a slot frees, new
/// connections are served again.
#[test]
fn connection_cap_rejects_excess_connections_with_503() {
    let _lock = locked();
    let opts = ServeOptions {
        slots: Some(1),
        threads: Some(1),
        ..ServeOptions::default()
    };
    let options = HttpOptions {
        max_connections: Some(1),
        ..HttpOptions::default()
    };
    with_server(opts, options, |http| {
        // Hold the single handler slot with an idle connection. Wait
        // for a probe to confirm the accept loop has claimed it.
        let hog = TcpStream::connect(http.addr).expect("connect hog");
        let t0 = Instant::now();
        loop {
            let r = http.request("GET", "/v1/metrics", None);
            if r.status == 503 {
                assert!(
                    r.head.contains("Retry-After:"),
                    "503 must carry Retry-After: {}",
                    r.head
                );
                break;
            }
            // The hog's accept may still be in flight; a 200 here means
            // our probe won the race — go again.
            assert_eq!(r.status, 200);
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "connection cap never engaged"
            );
        }
        // Release the slot; the server must recover.
        drop(hog);
        let t0 = Instant::now();
        loop {
            if http.request("GET", "/v1/metrics", None).status == 200 {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "server never recovered after the hog disconnected"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        http.shutdown();
    });
}

/// Builds a tiny two-sided pair, runs the pipeline, and persists the
/// artifact into the scratch dir — the victim for patch-fault tests.
fn persisted_artifact(scratch: &ScratchDir, id: &str) -> std::path::PathBuf {
    let mut a = KbBuilder::new("E1");
    let mut b = KbBuilder::new("E2");
    for i in 0..6 {
        a.add_literal(&format!("a:{i}"), "name", &format!("chaos specimen {i}"));
        b.add_literal(&format!("b:{i}"), "label", &format!("chaos specimen {i}"));
    }
    let pair = KbPair::new(a.finish(), b.finish());
    let matcher = MinoanEr::with_defaults();
    let indexed = matcher
        .run_cancellable_indexed(&pair, &Executor::sequential(), &CancelToken::new())
        .unwrap();
    let artifact = IndexArtifact::from_run(id, &pair, indexed, matcher.config());
    let path = scratch.0.join(format!("{id}.idx"));
    artifact.write_to(&path).unwrap();
    path
}

/// A patch job aimed at a persisted artifact — the internal input the
/// HTTP `PATCH /v1/indexes/{id}` route builds.
fn patch_spec(id: &str, path: std::path::PathBuf, ops: Vec<DeltaOp>) -> JobSpec {
    JobSpec {
        name: format!("{id}:patch"),
        input: JobInput::IndexPatch {
            id: id.into(),
            path,
            ops,
        },
        truth: None,
        theta: None,
        candidates_k: None,
        purge_blocks: None,
        timeout_ms: None,
        max_retries: None,
        persist: None,
    }
}

fn rename_op() -> DeltaOp {
    DeltaOp::Upsert {
        side: KbSide::First,
        uri: "a:0".into(),
        statements: vec![("name".into(), Object::Literal("renamed specimen 0".into()))],
    }
}

/// An injected fault at `core.delta.apply` — the site guarding the
/// patched artifact's persist — must leave the on-disk artifact
/// **byte-identical** to the pre-patch file (fully old), and a retry
/// of the same patch must land it completely (fully new). The patch
/// never tears: persist goes through a temp file + atomic rename.
#[test]
fn mid_patch_fault_leaves_the_artifact_fully_old_then_a_retry_lands_it() {
    let _lock = locked();
    let _disarm = DisarmGuard;
    let scratch = ScratchDir::new("patch-apply");
    let path = persisted_artifact(&scratch, "victim");
    let original = std::fs::read(&path).unwrap();
    let opts = ServeOptions::default();

    // No retry budget: the injected persist failure surfaces as a
    // plain transient failure and the file must be fully old.
    let plan = format!("seed:{},core.delta.apply:1:io:1", ci_seed());
    faults::arm(&plan).unwrap();
    let queue = JobQueue::new(1, 1, 0);
    queue
        .submit(patch_spec("victim", path.clone(), vec![rename_op()]))
        .unwrap();
    drain(&queue, &opts);
    let failed = queue.into_reports().remove(0);
    let JobStatus::Failed(err) = &failed.status else {
        panic!("armed patch should fail, got {:?}", failed.status);
    };
    assert!(err.contains("injected fault"), "unexpected error: {err}");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        original,
        "a failed patch must leave the artifact byte-identical (fully old)"
    );

    // Re-arm and grant one retry: the first attempt eats the fault,
    // the retry re-reads the (untouched) artifact and patches clean.
    faults::arm(&plan).unwrap();
    let queue = JobQueue::new(1, 1, 0);
    let mut spec = patch_spec("victim", path.clone(), vec![rename_op()]);
    spec.max_retries = Some(1);
    queue.submit(spec).unwrap();
    let stats = drain(&queue, &opts);
    let retried = queue.into_reports().remove(0);
    assert_eq!(retried.status, JobStatus::Ok, "retry must recover");
    assert_eq!(stats.retries_scheduled, 1);
    let patched = IndexArtifact::read_from(&path).unwrap();
    assert_eq!(
        patched.meta().content_version,
        2,
        "the landed patch must be fully new"
    );
}

/// An injected fault at `store.artifact.read` — the artifact open path
/// — fails the patch attempt *before* any mutation, so the file stays
/// fully old; with retry budget the patch lands on the second attempt.
#[test]
fn artifact_read_fault_during_a_patch_is_transient_and_recovers() {
    let _lock = locked();
    let _disarm = DisarmGuard;
    let scratch = ScratchDir::new("patch-read");
    let path = persisted_artifact(&scratch, "victim");
    let original = std::fs::read(&path).unwrap();
    let opts = ServeOptions::default();

    let plan = format!("seed:{},store.artifact.read:1:io:1", ci_seed());
    faults::arm(&plan).unwrap();
    let queue = JobQueue::new(1, 1, 0);
    let mut spec = patch_spec("victim", path.clone(), vec![rename_op()]);
    spec.max_retries = Some(1);
    queue.submit(spec).unwrap();
    let stats = drain(&queue, &opts);
    let report = queue.into_reports().remove(0);
    assert_eq!(report.status, JobStatus::Ok, "retry must recover");
    assert_eq!(stats.retries_scheduled, 1);
    let patched = IndexArtifact::read_from(&path).unwrap();
    assert_eq!(patched.meta().content_version, 2);
    assert_ne!(
        std::fs::read(&path).unwrap(),
        original,
        "the landed patch must actually rewrite the artifact"
    );
}

/// The fault plan itself is deterministic: same seed, site and hit
/// counter always produce the same decision, different seeds produce
/// different firing patterns, and the armed seed is observable so a
/// suite driven by `MINOAN_FAULTS=seed:N` can vary with N.
#[test]
fn fault_decisions_are_deterministic_and_seed_sensitive() {
    let _lock = locked();
    let _disarm = DisarmGuard;
    let seed = ci_seed();
    faults::arm(&format!("seed:{seed}")).unwrap();
    assert_eq!(faults::armed_seed(), Some(seed));

    for s in [seed, 1, 7, 42] {
        // Bit-stable across calls.
        for hit in 0..64 {
            assert_eq!(
                faults::decide(s, "kb.parse.read", hit, 0.5),
                faults::decide(s, "kb.parse.read", hit, 0.5)
            );
        }
        // Probability extremes are exact.
        assert!(faults::decide(s, "kb.parse.read", 0, 1.0));
        assert!(!faults::decide(s, "kb.parse.read", 0, 0.0));
        // The firing fraction tracks the probability (very loose
        // bounds: the plan is a hash, not a calibrated RNG).
        let fired = (0..512)
            .filter(|&hit| faults::decide(s, "serve.job.execute", hit, 0.25))
            .count();
        assert!(
            (10..410).contains(&fired),
            "seed {s}: implausible firing count {fired}/512 at p=0.25"
        );
    }
    // Different seeds reshuffle the plan.
    let pattern = |s: u64| -> Vec<bool> {
        (0..64)
            .map(|hit| faults::decide(s, "kb.parse.read", hit, 0.5))
            .collect()
    };
    assert_ne!(pattern(1), pattern(7), "seeds must change the plan");
}
