//! Matching-quality metrics.
//!
//! The paper reports precision, recall and F1 **with respect to the
//! descriptions in the first KB appearing in the ground truth** (§IV):
//! predicted pairs whose first-KB entity is outside the ground truth are
//! ignored (the evaluation cannot know whether they are right), a
//! retained pair is correct iff it appears in the ground truth, and
//! recall is denominated by the ground-truth pairs.

use minoan_kb::{GroundTruth, Matching};

/// Precision/recall/F1 of a predicted matching against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchQuality {
    /// Evaluated predicted pairs that appear in the ground truth.
    pub true_positives: usize,
    /// Predicted pairs whose first-KB entity appears in the ground truth.
    pub predicted: usize,
    /// Total ground-truth pairs.
    pub actual: usize,
}

impl MatchQuality {
    /// Evaluates `predicted` against `truth`, restricted to first-KB
    /// entities appearing in the ground truth (the paper's methodology).
    pub fn evaluate(predicted: &Matching, truth: &GroundTruth) -> Self {
        let gt_first = truth.first_entities();
        let mut evaluated = 0usize;
        let mut tp = 0usize;
        for (e1, e2) in predicted.iter() {
            if !gt_first.contains(&e1) {
                continue;
            }
            evaluated += 1;
            if truth.contains(e1, e2) {
                tp += 1;
            }
        }
        Self {
            true_positives: tp,
            predicted: evaluated,
            actual: truth.len(),
        }
    }

    /// Evaluates without the first-KB restriction: every predicted pair
    /// counts. Used by ablations that want the strict global view.
    pub fn evaluate_strict(predicted: &Matching, truth: &GroundTruth) -> Self {
        let tp = predicted
            .iter()
            .filter(|&(e1, e2)| truth.contains(e1, e2))
            .count();
        Self {
            true_positives: tp,
            predicted: predicted.len(),
            actual: truth.len(),
        }
    }

    /// `TP / predicted` (1 when nothing was predicted and nothing exists,
    /// 0 when predictions exist but none are right).
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            if self.actual == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.true_positives as f64 / self.predicted as f64
        }
    }

    /// `TP / actual` (1 for empty ground truth).
    pub fn recall(&self) -> f64 {
        if self.actual == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.actual as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Renders `P/R/F1` as percentages with one decimal, for tables.
    pub fn as_percent_row(&self) -> [String; 3] {
        [
            format!("{:.1}", self.precision() * 100.0),
            format!("{:.1}", self.recall() * 100.0),
            format!("{:.1}", self.f1() * 100.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_kb::EntityId;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn perfect_prediction() {
        let truth = Matching::from_pairs([(e(0), e(0)), (e(1), e(1))]);
        let q = MatchQuality::evaluate(&truth.clone(), &truth);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn partial_prediction() {
        let truth = Matching::from_pairs([(e(0), e(0)), (e(1), e(1)), (e(2), e(2))]);
        let pred = Matching::from_pairs([(e(0), e(0)), (e(1), e(9))]);
        let q = MatchQuality::evaluate(&pred, &truth);
        assert_eq!(q.true_positives, 1);
        assert!((q.precision() - 0.5).abs() < 1e-12);
        assert!((q.recall() - 1.0 / 3.0).abs() < 1e-12);
        let f1 = 2.0 * 0.5 * (1.0 / 3.0) / (0.5 + 1.0 / 3.0);
        assert!((q.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn predictions_outside_the_ground_truth_are_ignored() {
        let truth = Matching::from_pairs([(e(0), e(0))]);
        // e(7) is not a ground-truth first-KB entity: its pair must not
        // count against precision (paper §IV methodology).
        let pred = Matching::from_pairs([(e(0), e(0)), (e(7), e(7))]);
        let q = MatchQuality::evaluate(&pred, &truth);
        assert_eq!(q.predicted, 1);
        assert_eq!(q.precision(), 1.0);
        // The strict variant counts it.
        let qs = MatchQuality::evaluate_strict(&pred, &truth);
        assert_eq!(qs.predicted, 2);
        assert!((qs.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = Matching::new();
        let q = MatchQuality::evaluate(&empty, &empty);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        let truth = Matching::from_pairs([(e(0), e(0))]);
        let q = MatchQuality::evaluate(&empty, &truth);
        assert_eq!(q.precision(), 0.0);
        assert_eq!(q.recall(), 0.0);
        assert_eq!(q.f1(), 0.0);
        let wrong = Matching::from_pairs([(e(5), e(5))]);
        let q = MatchQuality::evaluate(&wrong, &truth);
        assert_eq!(q.precision(), 0.0);
    }

    #[test]
    fn percent_row_formats() {
        let truth = Matching::from_pairs([(e(0), e(0)), (e(1), e(1))]);
        let pred = Matching::from_pairs([(e(0), e(0))]);
        let q = MatchQuality::evaluate(&pred, &truth);
        assert_eq!(q.as_percent_row(), ["100.0", "50.0", "66.7"]);
    }
}
