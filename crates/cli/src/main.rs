//! `minoaner` — command-line entity resolution.
//!
//! ```text
//! minoaner match  <first.(tsv|nt)> <second.(tsv|nt)> [--method minoaner|bsl|sigma|paris]
//!                 [--truth <pairs.tsv>] [--json] [--theta F] [--k N] [--no-purge]
//!                 [--executor sequential|rayon|pool] [--threads N]
//! minoaner batch  --manifest <fleet.(toml|json)> [--slots N] [--threads N]
//!                 [--memory-mib N] [--timeout-ms N] [--max-retries N]
//!                 [--rss-kill-factor F] [--executor sequential|rayon|pool] [--json] [--pairs]
//! minoaner serve  [--listen <addr>] [--listen-http <addr>] [--auth-token T]
//!                 [--index-dir <dir>] [--index-cache-mib N]
//!                 [--slots N] [--threads N] [--memory-mib N]
//!                 [--timeout-ms N] [--max-retries N] [--rss-kill-factor F]
//!                 [--shed-depth N] [--max-connections N]
//!                 [--executor sequential|rayon|pool] [--json] [--pairs]
//! minoaner index build <name> --dir <dir>
//!                 (--dataset restaurant|rexa|bbc|yago [--scale F] [--seed N]
//!                  | <first.(tsv|nt)> <second.(tsv|nt)>)
//!                 [--theta F] [--k N] [--no-purge]
//!                 [--executor sequential|rayon|pool] [--threads N]
//! minoaner index inspect <artifact.idx>
//! minoaner index query <artifact.idx> (--entity <iri> | --sample) [--k N]
//! minoaner index patch <artifact.idx> --deltas <file.json|->
//!                 [--executor sequential|rayon|pool] [--threads N]
//! minoaner datagen <restaurant|rexa|bbc|yago> --mutate [--scale F] [--seed N]
//!                 [--mutate-seed N] [--ops N]
//! minoaner demo   [restaurant|rexa|bbc|yago] [--scale F] [--seed N]
//!                 [--executor sequential|rayon|pool] [--threads N]
//! minoaner trace  <job-id> --connect <addr>
//! minoaner stats  <kb.(tsv|nt)>
//! ```
//!
//! Every subcommand also accepts the global `--log-level
//! error|warn|info|debug` flag, which sets the console threshold of the
//! structured logging layer (`minoan_obs`; the `MINOAN_LOG` environment
//! variable is the same knob, the flag wins). `trace` asks a running
//! daemon (`--connect` its `--listen` address) for a job's span trees —
//! one per attempt — over the line-JSON `trace` verb.
//!
//! `--truth` is a 2-column TSV of matching URIs (first-KB URI, second-KB
//! URI); with it the tool reports precision/recall/F1. `--executor`
//! selects the backend the hot pipeline stages run on (results are
//! bit-identical across backends); `--threads 0` means all cores.
//!
//! `batch` resolves a whole fleet of KB pairs described by a manifest
//! (see `minoan_serve::manifest`; `examples/fleet.toml` is a ready-made
//! one): jobs are scheduled pairs-first across `--slots` fleet slots
//! under bounded-memory admission, per-job completions stream to stderr,
//! and the final report goes to stdout (`--json` for the machine
//! spelling, `--pairs` to list every matched URI pair). A failed job
//! does not stop the fleet, but the exit code is 1 when any job failed.
//!
//! `serve` runs the same fleet scheduler as a **long-running daemon**:
//! jobs arrive over a line-delimited JSON socket protocol (submit /
//! status / cancel / wait / shutdown — see `minoan_serve::daemon` for
//! the wire format; `examples/daemon_client.rs` is a ready-made
//! client), feed the same bounded-memory admission queue, and can be
//! cancelled **mid-run** via cooperative pipeline checkpoints. On
//! `shutdown` the daemon drains and prints the fleet report in
//! submission order, exactly like `batch`; the exit code is 0 on a
//! clean shutdown (per-job failures were already reported to clients).
//!
//! ## Serving over HTTP
//!
//! `serve --listen-http <addr>` additionally (or instead) exposes the
//! queue over a dependency-free HTTP/1.1 front-end — both listeners
//! feed the **same** queue, so line-JSON and HTTP clients see the same
//! jobs and either protocol can shut the daemon down. Endpoints (see
//! `minoan_serve::http` for limits and error codes): `POST /v1/jobs`
//! submits a manifest job object, `GET /v1/jobs` lists jobs with live
//! queue telemetry, `GET /v1/jobs/{id}` (`?wait=true` blocks) returns
//! status plus the full report once terminal, `DELETE /v1/jobs/{id}`
//! cancels (including mid-run), `GET /v1/metrics` serves
//! Prometheus-format telemetry, and `POST /v1/shutdown` stops the
//! daemon (`{"mode":"drain"|"cancel"}`). With `--auth-token <secret>`
//! every HTTP request must carry `Authorization: Bearer <secret>`
//! (compared in constant time). `examples/http_client.rs` is a
//! ready-made client. Results are bit-identical to `batch` and solo
//! runs no matter which protocol submitted the job.
//!
//! ## Supervised lifecycle knobs
//!
//! `--timeout-ms N` sets a per-job deadline observed at the pipeline's
//! cooperative checkpoints (`0` = none; overrides the manifest),
//! `--max-retries N` gives transiently-failing jobs (I/O errors,
//! timeouts) that many re-runs with exponential backoff and
//! deterministic jitter, and `--rss-kill-factor F` arms a watchdog
//! killing jobs that grow past `F ×` their admission estimate. `serve`
//! additionally takes `--shed-depth N` — reject submissions once `N`
//! jobs are queued (HTTP `429` + `Retry-After`, line-JSON
//! `"retryable":true`) — and `--max-connections N`, capping concurrent
//! HTTP handler threads (excess connections get an immediate `503`).
//!
//! ## Persistent indexes
//!
//! `index build` runs the full MinoanER pipeline once and persists
//! everything downstream queries need — tokenized KBs, blocks, the
//! sharded similarity index and the final matching — as one versioned,
//! checksummed artifact (`<dir>/<name>.idx`, see
//! `minoan_core::artifact` for the wire format). `index inspect` reads
//! only the metadata section; `index query` loads the artifact and
//! answers match queries with **zero ingest work** (`--sample` queries
//! the first matched entity, handy for smoke tests). The same
//! artifacts serve online when the daemon runs with `--index-dir`:
//! `POST /v1/indexes` builds through the job queue, and
//! `GET /v1/indexes/{id}/match?entity=<iri>` answers from the loaded
//! artifact (an LRU cache capped at `--index-cache-mib`). Loaded-
//! then-queried results are bit-identical to a fresh in-memory run.
//!
//! `index patch` applies an entity delta stream (upserts/deletes, see
//! `minoan_kb::delta` for the wire JSON) to a persisted artifact
//! *incrementally*: only the affected neighborhood is re-resolved, and
//! the artifact is rewritten atomically with a bumped content version.
//! `datagen --mutate` emits deterministic seeded delta streams drawn
//! from a profile — pipe it straight into `index patch --deltas -`.

use std::process::exit;

use minoan_baselines::{run_bsl, run_paris, run_sigma, ParisConfig, SigmaConfig};
use minoan_blocking::unique_name_pairs;
use minoan_core::{build_blocks, IndexArtifact, MinoanConfig, MinoanEr};
use minoan_datagen::DatasetKind;
use minoan_eval::MatchQuality;
use minoan_kb::{GroundTruth, Json, KbPair, KbSide, KnowledgeBase, Matching};
use minoan_serve::{
    run_batch_streaming, run_server, CancelToken, Frontends, HttpOptions, JobReport, Manifest,
    ServeOptions,
};
use minoan_text::{TokenizedPair, Tokenizer};

fn usage() -> ! {
    minoan_obs::error!(
        "cli",
        "usage:\n  minoaner match <first> <second> [--method minoaner|bsl|sigma|paris] \
         [--truth pairs.tsv] [--json] [--theta F] [--k N] [--no-purge] \
         [--executor sequential|rayon|pool] [--threads N]\n  \
         minoaner batch --manifest fleet.(toml|json) [--slots N] [--threads N] \
         [--memory-mib N] [--timeout-ms N] [--max-retries N] [--rss-kill-factor F] \
         [--executor sequential|rayon|pool] [--json] [--pairs]\n  \
         minoaner serve [--listen addr:port] [--listen-http addr:port] \
         [--auth-token T] [--index-dir dir] [--index-cache-mib N] \
         [--slots N] [--threads N] [--memory-mib N] \
         [--timeout-ms N] [--max-retries N] [--rss-kill-factor F] \
         [--shed-depth N] [--max-connections N] \
         [--executor sequential|rayon|pool] [--json] [--pairs]\n  \
         minoaner index build <name> --dir <dir> (--dataset restaurant|rexa|bbc|yago \
         [--scale F] [--seed N] | <first> <second>) [--theta F] [--k N] [--no-purge] \
         [--executor sequential|rayon|pool] [--threads N]\n  \
         minoaner index inspect <artifact.idx>\n  \
         minoaner index query <artifact.idx> (--entity iri | --sample) [--k N]\n  \
         minoaner index patch <artifact.idx> --deltas <file.json|-> \
         [--executor sequential|rayon|pool] [--threads N]\n  \
         minoaner datagen <restaurant|rexa|bbc|yago> --mutate [--scale F] [--seed N] \
         [--mutate-seed N] [--ops N]\n  \
         minoaner demo [restaurant|rexa|bbc|yago] [--scale F] [--seed N] \
         [--executor sequential|rayon|pool] [--threads N]\n  \
         minoaner trace <job-id> --connect addr:port\n  \
         minoaner stats <kb>\n\
         global: [--log-level error|warn|info|debug]"
    );
    exit(2);
}

fn parse_executor(value: Option<&String>, config: &mut MinoanConfig) {
    let Some(kind) = value.and_then(|v| v.parse().ok()) else {
        usage()
    };
    config.executor = kind;
}

/// Loads a KB by **streaming** the file through the chunked parallel
/// parser — the shared serving-layer loader
/// ([`minoan_serve::load_kb_file`]), exit-on-error for the CLI.
fn load_kb(path: &str, name: &str, config: &MinoanConfig) -> KnowledgeBase {
    minoan_serve::load_kb_file(std::path::Path::new(path), name, config, &config.executor())
        .unwrap_or_else(|e| {
            minoan_obs::error!("cli", "{e}");
            exit(1);
        })
}

/// Loads a ground-truth TSV via the shared serving-layer loader (lines
/// naming URIs absent from the pair are skipped).
fn load_truth(path: &str, pair: &KbPair) -> GroundTruth {
    minoan_serve::load_truth_file(std::path::Path::new(path), pair).unwrap_or_else(|e| {
        minoan_obs::error!("cli", "{e}");
        exit(1);
    })
}

fn report(matching: &Matching, pair: &KbPair, truth: Option<&GroundTruth>, json: bool) {
    if json {
        let pairs: Vec<[String; 2]> = matching
            .iter()
            .map(|(a, b)| {
                [
                    pair.first.entity_uri(a).to_string(),
                    pair.second.entity_uri(b).to_string(),
                ]
            })
            .collect();
        let quality = truth.map(|t| MatchQuality::evaluate(matching, t));
        let out = Json::obj([
            (
                "matches",
                Json::arr(
                    pairs
                        .iter()
                        .map(|[a, b]| Json::arr([Json::str(a), Json::str(b)])),
                ),
            ),
            (
                "quality",
                match quality {
                    Some(q) => Json::obj([
                        ("precision", Json::Num(q.precision())),
                        ("recall", Json::Num(q.recall())),
                        ("f1", Json::Num(q.f1())),
                    ]),
                    None => Json::Null,
                },
            ),
        ]);
        println!("{}", out.pretty());
    } else {
        for (a, b) in matching.iter() {
            println!(
                "{}\t{}",
                pair.first.entity_uri(a),
                pair.second.entity_uri(b)
            );
        }
        if let Some(t) = truth {
            let q = MatchQuality::evaluate(matching, t);
            minoan_obs::info!(
                "cli.match",
                "precision {:.2}%  recall {:.2}%  F1 {:.2}%  ({} matches)",
                q.precision() * 100.0,
                q.recall() * 100.0,
                q.f1() * 100.0,
                matching.len()
            );
        } else {
            minoan_obs::info!("cli.match", "{} matches", matching.len());
        }
    }
}

fn run_method(
    method: &str,
    pair: &KbPair,
    config: &MinoanConfig,
    truth: Option<&GroundTruth>,
) -> Matching {
    match method {
        "minoaner" => {
            MinoanEr::new(config.clone())
                .unwrap_or_else(|e| {
                    minoan_obs::error!("cli", "bad config: {e}");
                    exit(1);
                })
                .run(pair)
                .matching
        }
        "bsl" => {
            let Some(t) = truth else {
                minoan_obs::error!(
                    "cli",
                    "--method bsl needs --truth (BSL is oracle-tuned by definition)"
                );
                exit(1);
            };
            let art = build_blocks(pair, config);
            run_bsl(
                &pair.first,
                &pair.second,
                &[&art.name_blocks, &art.token_blocks],
                t,
            )
            .matching
        }
        "sigma" => {
            let art = build_blocks(pair, config);
            let tokens = TokenizedPair::build(pair, &Tokenizer::default());
            let seeds = unique_name_pairs(&art.name_blocks);
            run_sigma(
                pair,
                &tokens,
                &art.token_blocks,
                &seeds,
                SigmaConfig::default(),
            )
        }
        "paris" => run_paris(pair, ParisConfig::default()),
        other => {
            minoan_obs::error!("cli", "unknown method {other:?}");
            exit(2);
        }
    }
}

/// One stderr line per job as it completes — shared by `batch` and
/// `serve` so both front-ends narrate the fleet identically.
fn print_job_completion(job: &JobReport) {
    match (&job.status.is_ok(), &job.quality) {
        (true, Some(q)) => minoan_obs::info!(
            "serve.job",
            "{}: ok, {} matches, F1 {:.2}%, {:.0} ms on {} threads",
            job.name,
            job.matches.len(),
            q.f1() * 100.0,
            job.wall.as_secs_f64() * 1e3,
            job.threads
        ),
        (true, None) => minoan_obs::info!(
            "serve.job",
            "{}: ok, {} matches, {:.0} ms on {} threads",
            job.name,
            job.matches.len(),
            job.wall.as_secs_f64() * 1e3,
            job.threads
        ),
        _ => minoan_obs::info!("serve.job", "{}: {}", job.name, job.status.label()),
    }
    // The admission feedback signal: how far the static footprint
    // estimate was from the measured RSS growth (only meaningful when
    // this job actually raised the process high-water mark).
    if let (Some(ratio), Some(delta)) = (job.rss_estimate_ratio(), job.peak_rss_delta_bytes) {
        minoan_obs::info!(
            "serve.job",
            "{}: admission estimate {:.1} MiB vs measured RSS delta {:.1} MiB (x{ratio:.2})",
            job.name,
            job.estimated_bytes as f64 / (1 << 20) as f64,
            delta as f64 / (1 << 20) as f64,
        );
    }
}

/// Prints the final fleet report (stdout) and summary (stderr) —
/// shared by `batch` and `serve`.
fn print_fleet_report(report: &minoan_serve::ServeReport, json: bool, pairs: bool) {
    if json {
        println!("{}", report.to_json(pairs).pretty());
    } else {
        for job in &report.jobs {
            if pairs {
                for (a, b) in &job.matches {
                    println!("{}\t{a}\t{b}", job.name);
                }
            } else {
                println!(
                    "{}\t{}\t{} matches",
                    job.name,
                    job.status.label(),
                    job.matches.len()
                );
            }
        }
        minoan_obs::info!(
            "serve.fleet",
            "fleet done: {}/{} ok, peak {} concurrent, {:.0} ms",
            report.ok_count(),
            report.jobs.len(),
            report.peak_concurrent_jobs,
            report.wall.as_secs_f64() * 1e3
        );
    }
}

/// `minoaner index build`: run the pipeline once, persist the artifact.
fn index_build(args: &[String]) {
    let mut name: Option<&str> = None;
    let mut dir: Option<&str> = None;
    let mut dataset: Option<DatasetKind> = None;
    let mut scale = 0.3f64;
    let mut seed = 20180416u64;
    let mut files: Vec<&str> = Vec::new();
    let mut config = MinoanConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => dir = Some(it.next().map(String::as_str).unwrap_or_else(|| usage())),
            "--dataset" => {
                dataset = Some(match it.next().map(String::as_str) {
                    Some("restaurant") => DatasetKind::Restaurant,
                    Some("rexa") => DatasetKind::RexaDblp,
                    Some("bbc") => DatasetKind::BbcDbpedia,
                    Some("yago") => DatasetKind::YagoImdb,
                    _ => usage(),
                })
            }
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--theta" => {
                config.theta = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--k" => {
                config.candidates_k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-purge" => config.purge_blocks = false,
            "--executor" => parse_executor(it.next(), &mut config),
            "--threads" => {
                config.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            other if !other.starts_with('-') && name.is_none() => name = Some(other),
            other if !other.starts_with('-') => files.push(other),
            _ => usage(),
        }
    }
    let (Some(name), Some(dir)) = (name, dir) else {
        usage()
    };
    if !minoan_serve::registry::valid_id(name) {
        minoan_obs::error!(
            "cli.index",
            "invalid index name {name:?} (letters, digits, `.`/`_`/`-` only)"
        );
        exit(2);
    }
    let pair = match (dataset, files.as_slice()) {
        (Some(kind), []) => kind.generate_scaled(seed, scale).pair,
        (None, [first, second]) => KbPair::new(
            load_kb(first, "E1", &config),
            load_kb(second, "E2", &config),
        ),
        _ => usage(),
    };
    let matcher = MinoanEr::new(config).unwrap_or_else(|e| {
        minoan_obs::error!("cli", "bad config: {e}");
        exit(1);
    });
    let exec = matcher.config().executor();
    let indexed = matcher
        .run_cancellable_indexed(&pair, &exec, &CancelToken::new())
        .expect("no cancellation source in the CLI");
    let artifact = IndexArtifact::from_run(name, &pair, indexed, matcher.config());
    let dir = std::path::Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        minoan_obs::error!("cli.index", "cannot create {}: {e}", dir.display());
        exit(1);
    }
    let path = dir.join(format!("{name}.{}", minoan_serve::registry::ARTIFACT_EXT));
    match artifact.write_to(&path) {
        Ok(bytes) => minoan_obs::info!("cli.index", "wrote {} ({bytes} bytes)", path.display()),
        Err(e) => {
            minoan_obs::error!("cli.index", "cannot write {}: {e}", path.display());
            exit(1);
        }
    }
    println!("{}", artifact.meta().to_json().pretty());
}

/// `minoaner index inspect`: print the metadata section without
/// rebuilding any in-memory structure.
fn index_inspect(args: &[String]) {
    let [path] = args else { usage() };
    let meta = IndexArtifact::read_meta(std::path::Path::new(path)).unwrap_or_else(|e| {
        minoan_obs::error!("cli.index", "cannot read {path}: {e}");
        exit(1);
    });
    println!("{}", meta.to_json().pretty());
}

/// `minoaner index query`: load a persisted artifact and answer one
/// match query from it — no ingest, no pipeline re-run.
fn index_query(args: &[String]) {
    let mut path: Option<&str> = None;
    let mut entity: Option<String> = None;
    let mut sample = false;
    let mut k = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entity" => entity = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--sample" => sample = true,
            "--k" => {
                k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let t0 = std::time::Instant::now();
    let artifact = IndexArtifact::read_from(std::path::Path::new(path)).unwrap_or_else(|e| {
        minoan_obs::error!("cli.index", "cannot load {path}: {e}");
        exit(1);
    });
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    let entity = match entity {
        Some(entity) => entity,
        None if sample => match artifact.matched_uri_pairs().into_iter().next() {
            Some((first, _)) => first,
            None => {
                minoan_obs::error!("cli.index", "index has no matched pairs to sample");
                exit(1);
            }
        },
        None => usage(),
    };
    let t1 = std::time::Instant::now();
    let Some(answer) = artifact.match_query(&entity, k) else {
        minoan_obs::error!(
            "cli.index",
            "entity {entity:?} is in neither KB of this index"
        );
        exit(1);
    };
    let query_ms = t1.elapsed().as_secs_f64() * 1e3;
    let body = Json::obj([
        ("index", Json::str(&artifact.meta().name)),
        ("entity", Json::str(&answer.entity)),
        (
            "side",
            Json::str(match answer.side {
                KbSide::First => "first",
                KbSide::Second => "second",
            }),
        ),
        (
            "matches",
            Json::Arr(answer.matches.iter().map(Json::str).collect()),
        ),
        (
            "candidates",
            Json::Arr(
                answer
                    .candidates
                    .iter()
                    .map(|(uri, score)| {
                        Json::obj([("uri", Json::str(uri)), ("score", Json::num(*score))])
                    })
                    .collect(),
            ),
        ),
        (
            "stage_timings_ms",
            Json::obj([
                ("ingest", Json::num(0.0)),
                ("blocking", Json::num(0.0)),
                ("similarities", Json::num(0.0)),
                ("load", Json::num(load_ms)),
                ("query", Json::num(query_ms)),
            ]),
        ),
    ]);
    println!("{}", body.pretty());
}

/// `minoaner index patch`: apply a delta stream to a persisted
/// artifact incrementally — only the affected neighborhood re-runs —
/// then rewrite the artifact atomically with a bumped content version.
fn index_patch(args: &[String]) {
    let mut path: Option<&str> = None;
    let mut deltas: Option<&str> = None;
    let mut config = MinoanConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deltas" => deltas = Some(it.next().map(String::as_str).unwrap_or_else(|| usage())),
            "--executor" => parse_executor(it.next(), &mut config),
            "--threads" => {
                config.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            _ => usage(),
        }
    }
    let (Some(path), Some(deltas)) = (path, deltas) else {
        usage()
    };
    let raw = if deltas == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| {
                minoan_obs::error!("cli.index", "cannot read deltas from stdin: {e}");
                exit(1);
            });
        buf
    } else {
        std::fs::read_to_string(deltas).unwrap_or_else(|e| {
            minoan_obs::error!("cli.index", "cannot read {deltas}: {e}");
            exit(1);
        })
    };
    let body = Json::parse(&raw).unwrap_or_else(|e| {
        minoan_obs::error!("cli.index", "bad delta stream: {e}");
        exit(1);
    });
    let ops = minoan_kb::delta::ops_from_json(&body).unwrap_or_else(|e| {
        minoan_obs::error!("cli.index", "bad delta stream: {e}");
        exit(1);
    });
    let path = std::path::Path::new(path);
    let t0 = std::time::Instant::now();
    let mut artifact = IndexArtifact::read_from(path).unwrap_or_else(|e| {
        minoan_obs::error!("cli.index", "cannot load {}: {e}", path.display());
        exit(1);
    });
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    let exec = config.executor();
    let t1 = std::time::Instant::now();
    let delta = artifact
        .apply_delta(&ops, &exec, &CancelToken::new())
        .expect("no cancellation source in the CLI");
    let apply_ms = t1.elapsed().as_secs_f64() * 1e3;
    match artifact.persist_patch(path) {
        Ok(bytes) => minoan_obs::info!("cli.index", "patched {} ({bytes} bytes)", path.display()),
        Err(e) => {
            minoan_obs::error!("cli.index", "cannot persist {}: {e}", path.display());
            exit(1);
        }
    }
    let body = Json::obj([
        ("index", Json::str(&artifact.meta().name)),
        ("content_version", Json::num(delta.content_version as f64)),
        ("ops_applied", Json::num(delta.ops_applied as f64)),
        ("ops_noop", Json::num(delta.ops_noop as f64)),
        ("affected_rows", Json::num(delta.affected_rows as f64)),
        ("touched_tokens", Json::num(delta.touched_tokens as f64)),
        ("h1_matches", Json::num(delta.h1_matches as f64)),
        ("h2_matches", Json::num(delta.h2_matches as f64)),
        ("h3_matches", Json::num(delta.h3_matches as f64)),
        ("h4_removed", Json::num(delta.h4_removed as f64)),
        ("matched_pairs", Json::num(delta.matched_pairs as f64)),
        (
            "stage_timings_ms",
            Json::obj([("load", Json::num(load_ms)), ("apply", Json::num(apply_ms))]),
        ),
    ]);
    println!("{}", body.pretty());
}

/// `minoaner datagen --mutate`: emit a deterministic seeded delta
/// stream drawn from a profile, as the wire JSON `index patch` and
/// `PATCH /v1/indexes/{id}` accept.
fn datagen_cmd(args: &[String]) {
    let mut kind: Option<DatasetKind> = None;
    let mut mutate = false;
    let mut scale = 0.3;
    let mut seed = 20180416u64;
    let mut mutate_seed = 1u64;
    let mut n_ops = 50usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "restaurant" => kind = Some(DatasetKind::Restaurant),
            "rexa" => kind = Some(DatasetKind::RexaDblp),
            "bbc" => kind = Some(DatasetKind::BbcDbpedia),
            "yago" => kind = Some(DatasetKind::YagoImdb),
            "--mutate" => mutate = true,
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--mutate-seed" => {
                mutate_seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--ops" => {
                n_ops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(kind) = kind else { usage() };
    if !mutate {
        minoan_obs::error!(
            "cli",
            "datagen currently only supports --mutate (delta stream generation)"
        );
        exit(2);
    }
    let ops = minoan_datagen::mutate_stream(kind, seed, scale, mutate_seed, n_ops);
    println!("{}", minoan_kb::delta::ops_to_json(&ops).compact());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--log-level` is global: strip it wherever it appears so every
    // subcommand accepts it uniformly. The flag wins over `MINOAN_LOG`.
    while let Some(i) = args.iter().position(|a| a == "--log-level") {
        let Some(raw) = args.get(i + 1) else { usage() };
        match raw.parse::<minoan_obs::Level>() {
            Ok(level) => minoan_obs::set_console_level(level),
            Err(e) => {
                minoan_obs::error!("cli", "{e}");
                exit(2);
            }
        }
        args.drain(i..i + 2);
    }
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("match") => {
            let mut positional: Vec<&str> = Vec::new();
            let mut method = "minoaner".to_string();
            let mut truth_path: Option<String> = None;
            let mut json = false;
            let mut config = MinoanConfig::default();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--method" => method = it.next().cloned().unwrap_or_else(|| usage()),
                    "--truth" => truth_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
                    "--json" => json = true,
                    "--theta" => {
                        config.theta = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--k" => {
                        config.candidates_k = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--no-purge" => config.purge_blocks = false,
                    "--executor" => parse_executor(it.next(), &mut config),
                    "--threads" => {
                        config.threads = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    other if !other.starts_with('-') => positional.push(other),
                    _ => usage(),
                }
            }
            if positional.len() != 2 {
                usage();
            }
            let pair = KbPair::new(
                load_kb(positional[0], "E1", &config),
                load_kb(positional[1], "E2", &config),
            );
            let truth = truth_path.map(|p| load_truth(&p, &pair));
            let matching = run_method(&method, &pair, &config, truth.as_ref());
            report(&matching, &pair, truth.as_ref(), json);
        }
        Some("batch") => {
            let mut manifest_path: Option<String> = None;
            let mut opts = ServeOptions::default();
            let mut json = false;
            let mut pairs = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--manifest" => {
                        manifest_path = Some(it.next().cloned().unwrap_or_else(|| usage()))
                    }
                    // Explicit flags override the manifest — including
                    // explicit zeros (`--threads 0` = all cores,
                    // `--memory-mib 0` = unlimited), so a manifest
                    // limit can always be lifted from the command line.
                    "--slots" => {
                        opts.slots = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--threads" => {
                        opts.threads = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--memory-mib" => {
                        opts.memory_budget_mib = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--timeout-ms" => {
                        opts.timeout_ms = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--max-retries" => {
                        opts.max_retries = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--rss-kill-factor" => {
                        opts.rss_kill_factor = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--executor" => {
                        let Some(kind) = it.next().and_then(|v| v.parse().ok()) else {
                            usage()
                        };
                        opts.executor = kind;
                    }
                    "--json" => json = true,
                    "--pairs" => pairs = true,
                    _ => usage(),
                }
            }
            let Some(manifest_path) = manifest_path else {
                usage()
            };
            let manifest =
                Manifest::load(std::path::Path::new(&manifest_path)).unwrap_or_else(|e| {
                    minoan_obs::error!("cli", "{e}");
                    exit(1);
                });
            minoan_obs::info!(
                "serve.fleet",
                "fleet: {} jobs, manifest {manifest_path}",
                manifest.jobs.len()
            );
            // Stream one line per job as it completes; the final report
            // stays in manifest order.
            let report = run_batch_streaming(&manifest, &opts, &CancelToken::new(), |_, job| {
                print_job_completion(job)
            });
            print_fleet_report(&report, json, pairs);
            if report.ok_count() < report.jobs.len() {
                exit(1);
            }
        }
        Some("serve") => {
            let mut listen: Option<String> = None;
            let mut listen_http: Option<String> = None;
            let mut auth_token: Option<String> = None;
            let mut max_connections: Option<usize> = None;
            let mut opts = ServeOptions::default();
            let mut json = false;
            let mut pairs = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--listen" => listen = Some(it.next().cloned().unwrap_or_else(|| usage())),
                    "--listen-http" => {
                        listen_http = Some(it.next().cloned().unwrap_or_else(|| usage()))
                    }
                    "--auth-token" => {
                        auth_token = Some(it.next().cloned().unwrap_or_else(|| usage()))
                    }
                    "--index-dir" => {
                        opts.index_dir = Some(it.next().cloned().unwrap_or_else(|| usage()).into())
                    }
                    "--index-cache-mib" => {
                        let mib: u64 = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage());
                        opts.index_cache_bytes = Some(mib << 20);
                    }
                    "--slots" => {
                        opts.slots = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--threads" => {
                        opts.threads = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--memory-mib" => {
                        opts.memory_budget_mib = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--timeout-ms" => {
                        opts.timeout_ms = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--max-retries" => {
                        opts.max_retries = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--rss-kill-factor" => {
                        opts.rss_kill_factor = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--shed-depth" => {
                        opts.shed_queue_depth = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--max-connections" => {
                        max_connections = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--executor" => {
                        let Some(kind) = it.next().and_then(|v| v.parse().ok()) else {
                            usage()
                        };
                        opts.executor = kind;
                    }
                    "--json" => json = true,
                    "--pairs" => pairs = true,
                    _ => usage(),
                }
            }
            if listen.is_none() && listen_http.is_none() {
                minoan_obs::error!("cli", "serve needs --listen and/or --listen-http");
                usage();
            }
            let bind = |addr: &str| {
                std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
                    minoan_obs::error!("cli", "cannot listen on {addr}: {e}");
                    exit(1);
                })
            };
            let frontends = Frontends {
                line: listen.as_deref().map(bind),
                http: listen_http.as_deref().map(bind),
                http_options: HttpOptions {
                    auth_token,
                    max_connections,
                },
            };
            if let Some(listener) = &frontends.line {
                let addr = listener
                    .local_addr()
                    .expect("bound listener has an address");
                minoan_obs::info!(
                    "serve",
                    "daemon listening on {addr} (send {{\"op\":\"shutdown\"}} to stop)"
                );
            }
            if let Some(listener) = &frontends.http {
                let addr = listener
                    .local_addr()
                    .expect("bound listener has an address");
                minoan_obs::info!(
                    "serve",
                    "HTTP listening on http://{addr}/v1/jobs ({}; POST /v1/shutdown to stop)",
                    if frontends.http_options.auth_token.is_some() {
                        "bearer auth required"
                    } else {
                        "no auth"
                    }
                );
            }
            // Per-job completions stream to stderr as they happen; the
            // final report (submission order, exactly like a batch run)
            // prints after a clean shutdown.
            let report = run_server(frontends, &opts, print_job_completion).unwrap_or_else(|e| {
                minoan_obs::error!("serve", "daemon error: {e}");
                exit(1);
            });
            print_fleet_report(&report, json, pairs);
        }
        Some("index") => match it.next().map(String::as_str) {
            Some("build") => index_build(&args[2..]),
            Some("inspect") => index_inspect(&args[2..]),
            Some("query") => index_query(&args[2..]),
            Some("patch") => index_patch(&args[2..]),
            _ => usage(),
        },
        Some("datagen") => datagen_cmd(&args[1..]),
        Some("demo") => {
            let mut kind = DatasetKind::Restaurant;
            let mut scale = 0.3;
            let mut seed = 20180416u64;
            let mut config = MinoanConfig::default();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "restaurant" => kind = DatasetKind::Restaurant,
                    "rexa" => kind = DatasetKind::RexaDblp,
                    "bbc" => kind = DatasetKind::BbcDbpedia,
                    "yago" => kind = DatasetKind::YagoImdb,
                    "--scale" => {
                        scale = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--executor" => parse_executor(it.next(), &mut config),
                    "--threads" => {
                        config.threads = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    _ => usage(),
                }
            }
            let d = kind.generate_scaled(seed, scale);
            minoan_obs::info!(
                "cli.demo",
                "{}: |E1|={} |E2|={} ground truth {}  (executor {}, {} threads)",
                d.name,
                d.pair.first.entity_count(),
                d.pair.second.entity_count(),
                d.truth.len(),
                config.executor,
                config.executor().threads(),
            );
            let out = MinoanEr::new(config)
                .unwrap_or_else(|e| {
                    minoan_obs::error!("cli", "bad config: {e}");
                    exit(1);
                })
                .run(&d.pair);
            let q = MatchQuality::evaluate(&out.matching, &d.truth);
            minoan_obs::info!(
                "cli.demo",
                "MinoanER: H1={} H2={} H3={} H4-removed={}",
                out.report.h1_matches,
                out.report.h2_matches,
                out.report.h3_matches,
                out.report.h4_removed
            );
            minoan_obs::info!(
                "cli.demo",
                "precision {:.2}%  recall {:.2}%  F1 {:.2}%",
                q.precision() * 100.0,
                q.recall() * 100.0,
                q.f1() * 100.0
            );
        }
        Some("trace") => trace_cmd(&args[1..]),
        Some("stats") => {
            let Some(path) = it.next() else { usage() };
            let kb = load_kb(path, "KB", &MinoanConfig::default());
            let stats = minoan_kb::KbStats::compute(&kb);
            println!("{}", stats.to_json().pretty());
        }
        _ => usage(),
    }
}

/// `minoaner trace <job-id> --connect <addr>`: ask a running daemon for
/// one job's span trees (one per attempt) over the line-JSON `trace`
/// verb and pretty-print the response.
fn trace_cmd(args: &[String]) {
    use std::io::{BufRead as _, BufReader, Write as _};
    let mut id: Option<usize> = None;
    let mut connect: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = Some(it.next().cloned().unwrap_or_else(|| usage())),
            other if !other.starts_with('-') && id.is_none() => {
                id = other.parse().ok().or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let (Some(id), Some(addr)) = (id, connect) else {
        usage()
    };
    let mut stream = std::net::TcpStream::connect(&addr).unwrap_or_else(|e| {
        minoan_obs::error!("cli.trace", "cannot connect to {addr}: {e}");
        exit(1);
    });
    let request = Json::obj([("op", Json::str("trace")), ("id", Json::num(id as f64))]);
    if let Err(e) = stream.write_all((request.compact() + "\n").as_bytes()) {
        minoan_obs::error!("cli.trace", "cannot send to {addr}: {e}");
        exit(1);
    }
    let mut line = String::new();
    if let Err(e) = BufReader::new(stream).read_line(&mut line) {
        minoan_obs::error!("cli.trace", "no response from {addr}: {e}");
        exit(1);
    }
    let response = Json::parse(line.trim()).unwrap_or_else(|e| {
        minoan_obs::error!("cli.trace", "bad response from {addr}: {e}");
        exit(1);
    });
    if response.get("ok") != Some(&Json::Bool(true)) {
        minoan_obs::error!("cli.trace", "trace failed: {}", response.compact());
        exit(1);
    }
    println!("{}", response.pretty());
}
