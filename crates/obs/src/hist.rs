//! Log-bucketed latency histograms: power-of-two microsecond buckets
//! updated with relaxed atomics, merged on read.
//!
//! A [`Histogram`] is a fixed array of [`BUCKETS`] counters whose
//! upper bounds are `1µs, 2µs, 4µs, … 2^26µs (~67s)` plus `+Inf`, a
//! running sum of observed microseconds, and an observation count.
//! Recording is wait-free (three relaxed atomic adds); reading takes a
//! [`Snapshot`] that can be merged with others (merge-on-read — each
//! owner keeps its own histogram, nothing registers anywhere) and
//! rendered as a Prometheus `_bucket`/`_sum`/`_count` family or asked
//! for quantiles.
//!
//! Registry-free by design: owners hold `static` histograms (the type
//! is const-constructible) or plain fields and decide themselves what
//! gets exported where.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of finite buckets; bucket `i` holds observations in
/// `(2^(i-1), 2^i]` microseconds (bucket 0: `[0, 1]`). One extra
/// overflow bucket catches everything above `2^(BUCKETS-1)` µs.
pub const BUCKETS: usize = 27;

/// A fixed-bucket latency histogram; see the module docs.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS + 1],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The index of the finite bucket whose upper bound first admits `v`
/// microseconds, or the overflow index.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let k = (u64::BITS - (v - 1).leading_zeros()) as usize;
    k.min(BUCKETS)
}

/// Upper bound, in microseconds, of finite bucket `i`.
pub fn bucket_bound_micros(i: usize) -> u64 {
    1u64 << i
}

impl Histogram {
    /// An empty histogram. `const`, so owners can hold them in
    /// `static`s.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS + 1],
            sum_micros: ZERO,
            count: ZERO,
        }
    }

    /// Records one observation of `v` microseconds.
    pub fn observe_micros(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation of a [`Duration`].
    pub fn observe(&self, d: Duration) {
        self.observe_micros(d.as_micros() as u64);
    }

    /// A point-in-time copy of the counters. Concurrent observers may
    /// land between the reads; each individual counter is exact and
    /// monotone, which is all the Prometheus exposition model needs.
    pub fn snapshot(&self) -> Snapshot {
        let mut buckets = [0u64; BUCKETS + 1];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        Snapshot {
            buckets,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a histogram's counters; merge, query quantiles,
/// or render from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Per-bucket (not cumulative) observation counts; the last entry
    /// is the overflow bucket.
    pub buckets: [u64; BUCKETS + 1],
    /// Sum of all observed values, in microseconds.
    pub sum_micros: u64,
    /// Total observations.
    pub count: u64,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            buckets: [0; BUCKETS + 1],
            sum_micros: 0,
            count: 0,
        }
    }
}

impl Snapshot {
    /// Adds another snapshot's counts into this one (merge-on-read).
    pub fn merge(&mut self, other: &Snapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum_micros += other.sum_micros;
        self.count += other.count;
    }

    /// The cumulative Prometheus view: `(upper bound in seconds,
    /// cumulative count)` per finite bucket; the caller appends the
    /// `+Inf` bucket with [`Snapshot::count`].
    pub fn cumulative_seconds(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        (0..BUCKETS)
            .map(|i| {
                acc += self.buckets[i];
                (bucket_bound_micros(i) as f64 / 1e6, acc)
            })
            .collect()
    }

    /// The nearest-rank `q`-quantile (`0.0 ..= 1.0`) as the upper
    /// bound of the bucket holding that rank, in microseconds. `0.0`
    /// for an empty snapshot; an overflow-bucket rank reports the
    /// largest finite bound.
    pub fn quantile_micros(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= rank {
                return bucket_bound_micros(i.min(BUCKETS - 1)) as f64;
            }
        }
        bucket_bound_micros(BUCKETS - 1) as f64
    }

    /// [`Snapshot::quantile_micros`] in milliseconds, the unit the
    /// bench trajectories record.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile_micros(q) / 1e3
    }

    /// Mean observed value in milliseconds (`0.0` when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64 / 1e3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        // Everything past the largest finite bound lands in overflow.
        assert_eq!(bucket_index(u64::MAX), BUCKETS);
        assert_eq!(bucket_index(1 << 26), 26);
        assert_eq!(bucket_index((1 << 26) + 1), BUCKETS);
    }

    #[test]
    fn observations_land_in_their_buckets() {
        let h = Histogram::new();
        h.observe_micros(1);
        h.observe_micros(3);
        h.observe_micros(3);
        h.observe_micros(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_micros, 1_000_007);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[bucket_index(1_000_000)], 1);
    }

    #[test]
    fn merge_equals_sequential_observation() {
        let values: Vec<u64> = (0..500).map(|i| (i * 37) % 10_000).collect();
        let whole = Histogram::new();
        let left = Histogram::new();
        let right = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.observe_micros(v);
            if i % 2 == 0 { &left } else { &right }.observe_micros(v);
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn concurrent_observers_lose_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.observe_micros(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8000);
    }

    #[test]
    fn quantiles_are_nearest_rank_bucket_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe_micros(100); // bucket bound 128
        }
        h.observe_micros(1_000_000); // bucket bound 2^20
        let s = h.snapshot();
        assert_eq!(s.quantile_micros(0.5), 128.0);
        assert_eq!(s.quantile_micros(0.99), 128.0);
        assert_eq!(s.quantile_micros(0.999), (1u64 << 20) as f64);
        assert_eq!(s.quantile_micros(1.0), (1u64 << 20) as f64);
        assert_eq!(Snapshot::default().quantile_micros(0.5), 0.0);
    }

    #[test]
    fn cumulative_view_is_monotone_and_ends_at_count() {
        let h = Histogram::new();
        for v in [1u64, 5, 5, 300, 40_000, u64::MAX] {
            h.observe_micros(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative_seconds();
        assert_eq!(cum.len(), BUCKETS);
        let mut prev = 0;
        let mut prev_le = 0.0;
        for &(le, c) in &cum {
            assert!(le > prev_le);
            assert!(c >= prev);
            prev = c;
            prev_le = le;
        }
        // The overflow observation is only visible through `count`.
        assert_eq!(prev, s.count - 1);
        assert_eq!(s.count, 6);
    }
}
