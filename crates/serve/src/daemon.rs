//! Long-running daemon intake: a line-delimited JSON socket protocol
//! feeding the same live [`JobQueue`] the batch scheduler drains.
//!
//! `minoaner serve --listen <addr>` turns the one-shot batch fleet into
//! a service: jobs arrive over time, are admitted strictly in
//! submission order under the bounded-memory budget, run pairs-first
//! with straggler widening, and stream terminal reports in completion
//! order — exactly like a manifest batch, including per-job
//! bit-identity with solo sequential runs. A *running* job can be
//! cancelled: its [`CancelToken`] makes the pipeline unwind at the next
//! cooperative checkpoint (see
//! [`minoan_core::MinoanEr::run_cancellable`]) to a `Cancelled` report
//! within one executor wave, without disturbing other in-flight jobs.
//!
//! The daemon can run **two protocol front-ends over the same queue**
//! at once ([`run_server`], [`Frontends`]): this module's line-JSON
//! protocol and the HTTP/1.1 front-end in [`crate::http`]
//! (`--listen-http`). Both delegate every operation to the shared
//! queue-fronting request layer, so a job takes the identical
//! parse → validate → admit path whichever socket it arrives on.
//!
//! ## Wire protocol
//!
//! One JSON document per line in each direction (UTF-8, LF-terminated;
//! the writer escapes embedded newlines, so framing is unambiguous).
//! Requests are objects with an `op` field; every response carries
//! `"ok": true|false`, with `"error"` describing a failure — including
//! for frames that are not valid UTF-8 or not valid JSON (the
//! connection stays usable; a malformed frame never wedges the accept
//! loop). Frames are capped at [`MAX_FRAME_BYTES`]; an over-long frame
//! gets one error response and the connection closes. Requests on one
//! connection are processed strictly in order; concurrent connections
//! are independent.
//!
//! Failures use the same structured error object as the HTTP
//! front-end, wrapped in the protocol's envelope:
//! `{"ok":false,"error":{"code":"…","message":"…","retryable":B}}`.
//! `retryable` is `true` exactly when backing off and resubmitting can
//! succeed (overload shed, index cache pressure); overload sheds keep
//! the historical top-level `"retryable":true` alongside.
//!
//! | op | request fields | response |
//! |----|----------------|----------|
//! | `submit` | `job`: a manifest job object (same schema as a `[[job]]` table / `jobs` element, see [`crate::manifest`]) | `{"ok":true,"id":N,"name":"…"}` — `id` is the submission index; an overload shed answers `{"ok":false,"retryable":true,"error":{…}}` (back off and resubmit) |
//! | `status` | optional `id`, optional `status` (phase or terminal-status label), optional `limit` | `{"ok":true,"accepting":B,"queued":N,"running":N,"done":N,"telemetry":{…},"jobs":[{"id":N,"name":"…","phase":"queued\|running\|done","status":"ok\|failed\|cancelled"?,"error":"…"?}]}` (`jobs` narrowed by the filters; with an index registry live, an `"indexes"` cache-telemetry object rides along) — `telemetry` is the live [`QueueStats`](crate::scheduler::QueueStats) view: admitted footprint vs. memory budget, thread allotments, per-status done counts, cumulative stage timings |
//! | `cancel` | `id` | `{"ok":true,"id":N,"outcome":"cancelled\|cancelling\|done\|unknown"}` — `cancelled`: flipped before dispatch; `cancelling`: token set, the running job unwinds at its next checkpoint; `done`: already terminal, report unchanged |
//! | `wait` | `id` | blocks until the job is terminal, then `{"ok":true,"id":N,"fingerprint":"…","report":{…}}` — `report` is [`JobReport::to_json`] with pairs, `fingerprint` the raw deterministic [`JobReport::fingerprint`] |
//! | `events` | optional `from` (ring cursor, default `0`: everything still buffered), optional `job`, optional `level` (`error\|warn\|info\|debug`, default `info`), optional `wait` (block up to ~1 s for at least one new record) | `{"ok":true,"events":[{"seq","micros","level","name","job","trace","detail"}],"next":N,"dropped":N}` — poll with `from` set to the previous `next`; `dropped` counts ring records evicted before this cursor read them |
//! | `trace` | `id` | `{"ok":true,"id":N,"name":"…","phase":"…","attempts":[{"trace":N,"spans":[…],"events":[…]}]}` — one assembled span tree per attempt (each retry runs under a fresh trace id), from whatever the bounded ring still retains |
//! | `index-build` | `job`: a manifest job object; its `name` becomes the index id | `{"ok":true,"job":N,"index":"…"}` — the build runs through the job queue and persists an artifact under the registry directory; rebuilding an existing id is a `conflict` |
//! | `index-list` | — | `{"ok":true,"indexes":[{"id":"…","file_bytes":N,"loaded":B}],"cache":{…}}` |
//! | `index-inspect` | `index` | `{"ok":true,"id":"…",…}` — the artifact's metadata section, read without loading the full index |
//! | `index-delete` | `index` | `{"ok":true,"index":"…","deleted":true}` — also evicts the loaded copy |
//! | `index-patch` | `index`, `deltas`: an array of delta ops (the [`minoan_kb::delta`] wire schema) | `{"ok":true,"job":N,"index":"…"}` — admits an incremental delta-resolution job: only the delta's affected neighborhood is re-resolved, the artifact file is atomically rewritten, and the stale cached copy is dropped on completion; `wait` on the job id for the patched report. A second patch for the same index while one is in flight is a `conflict` |
//! | `index-match` | `index`, `entity` (an entity IRI from either KB), optional `k` | `{"ok":true,"index":"…","entity":"…","side":"first\|second","matches":[…],"candidates":[{"uri":"…","score":F}],"stage_timings_ms":{…}}` — answered from the loaded artifact; `ingest`/`blocking`/`similarities` timings are literally `0` |
//! | `shutdown` | optional `mode`: `"drain"` (default: queued jobs still run) or `"cancel"` (queued jobs flip to `Cancelled`, running jobs are cancelled) | `{"ok":true}`; the daemon then stops accepting, drains and exits |
//!
//! The `index-*` ops need the daemon started with an index directory
//! (`--index-dir`); without one they answer an `unavailable` error.
//!
//! A `status`/`done` job is never reported `running` and `cancelled` at
//! once: phase transitions are atomic under the queue lock
//! ([`JobQueue::cancel`]), and `status` is present exactly when `phase`
//! is `done`.
//!
//! ## Checkpoint granularity
//!
//! Cancellation is cooperative. The pipeline observes the job's token
//! **between executor waves** — after ingest chunk waves and between
//! the tokenize / name / blocking / purge / H1 / top-neighbor /
//! similarity-index / H2 / H3 / H4 stages — never mid-wave (tearing a
//! wave down could not stay bit-identical with sequential runs). A
//! cancelled job therefore reaches its `Cancelled` report after at most
//! one wave of residual work.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use minoan_kb::Json;
use minoan_obs::{trace, Level};

use crate::http::HttpOptions;
use crate::intake::{self, ShutdownMode};
use crate::manifest::{JobInput, JobSpec};
use crate::registry::IndexRegistry;
use crate::report::{peak_rss_bytes, JobReport, ServeReport};
use crate::scheduler::{
    resolve_fleet_knobs, CancelToken, JobQueue, ServeOptions, DEFAULT_SHED_QUEUE_DEPTH,
    SHED_BYTES_FACTOR,
};

/// How often blocked daemon loops (accept, per-connection reads) check
/// the shutdown flag.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Maximum bytes of one request frame (line content, terminator
/// included). A frame that outgrows this gets an `{"ok":false,...}`
/// response and the connection closes — the line protocol's analogue of
/// the HTTP front-end's `413`, so a newline-less byte flood cannot grow
/// the read buffer without bound.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// The protocol front-ends one [`run_server`] call drives over a single
/// shared [`JobQueue`]. At least one listener must be present; with
/// both, line-JSON and HTTP clients submit into the same admission
/// order and see the same jobs, and a `shutdown` arriving on either
/// protocol stops both.
#[derive(Debug, Default)]
pub struct Frontends {
    /// Listener for the line-delimited JSON protocol (`--listen`).
    pub line: Option<TcpListener>,
    /// Listener for the HTTP/1.1 front-end (`--listen-http`), see
    /// [`crate::http`].
    pub http: Option<TcpListener>,
    /// Options for the HTTP front-end (auth token; ignored without an
    /// `http` listener).
    pub http_options: HttpOptions,
}

/// Runs the line-JSON daemon on an already-bound listener until a
/// client sends `shutdown`, then drains the queue and returns the fleet
/// report. Equivalent to [`run_server`] with only the `line` front-end.
pub fn run_daemon(
    listener: TcpListener,
    opts: &ServeOptions,
    on_done: impl Fn(&JobReport) + Sync,
) -> std::io::Result<ServeReport> {
    run_server(
        Frontends {
            line: Some(listener),
            ..Frontends::default()
        },
        opts,
        on_done,
    )
}

/// Runs the serving daemon over one or both protocol front-ends until a
/// client sends a shutdown request, then drains the queue and returns
/// the fleet report (jobs in submission order, like a batch run).
/// `on_done` fires once per terminal job report, in completion order.
///
/// Fleet knobs come from `opts` with zeros meaning "all cores" /
/// "unlimited", exactly like a manifest with no limits; there is no
/// job-count clamp because the job count is unknown up front.
pub fn run_server(
    frontends: Frontends,
    opts: &ServeOptions,
    on_done: impl Fn(&JobReport) + Sync,
) -> std::io::Result<ServeReport> {
    let t0 = Instant::now();
    let Frontends {
        line,
        http,
        http_options,
    } = frontends;
    if line.is_none() && http.is_none() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "run_server needs at least one front-end listener",
        ));
    }
    for listener in line.iter().chain(http.iter()) {
        listener.set_nonblocking(true)?;
    }
    let (slots, threads, budget_bytes) = resolve_fleet_knobs(opts, 0, 0, 0, usize::MAX);
    // Overload shedding is a daemon-only concern: batch submits its
    // whole manifest up front and would only shed its own jobs. The
    // byte mark is a multiple of the admission budget — jobs past the
    // budget *wait*; jobs past the shed mark are *refused* — and
    // disabled when admission itself is unlimited.
    let queue = JobQueue::new(slots, threads, budget_bytes)
        .with_job_defaults(opts.timeout_ms.unwrap_or(0), opts.max_retries.unwrap_or(0))
        .with_shed_limits(
            opts.shed_queue_depth.unwrap_or(DEFAULT_SHED_QUEUE_DEPTH),
            budget_bytes.saturating_mul(SHED_BYTES_FACTOR),
        );
    let shutdown = CancelToken::new();
    // The daemon has no fleet-level cancel; per-job cancellation goes
    // through the queue.
    let never = CancelToken::new();
    let http_options = &http_options;
    // Index serving is opt-in: without a directory the `index-*` ops
    // and `/v1/indexes` endpoints answer structured `unavailable`
    // errors instead of touching the filesystem.
    let registry = match &opts.index_dir {
        Some(dir) => Some(IndexRegistry::open(dir, opts.index_cache_bytes)?),
        None => None,
    };
    let registry = registry.as_ref();
    // A successful patch job rewrote the artifact on disk; the loaded
    // copy (if any) is stale and must be dropped *before* the caller's
    // on_done observes the terminal report, so a client that waits for
    // the patch and immediately queries sees the patched index.
    let notify = |spec: &JobSpec, report: &JobReport| {
        if report.status.is_ok() {
            if let (JobInput::IndexPatch { id, .. }, Some(reg)) = (&spec.input, registry) {
                reg.invalidate(id);
                trace::emit_job(
                    Level::Info,
                    "index.patched",
                    -1,
                    0,
                    format!("index={id:?} (stale cached copy dropped)"),
                );
            }
        }
        on_done(report);
    };

    std::thread::scope(|scope| -> std::io::Result<()> {
        let queue = &queue;
        let shutdown = &shutdown;
        let notify = &notify;
        for _ in 0..slots {
            scope.spawn(|| queue.worker(opts, &never, notify));
        }
        let mut accept_loops = Vec::new();
        if let Some(listener) = line {
            accept_loops.push(scope.spawn(move || {
                accept_loop(listener, shutdown, |stream| {
                    scope.spawn(move || handle_connection(stream, queue, shutdown, registry));
                })
            }));
        }
        if let Some(listener) = http {
            let max_connections = http_options
                .max_connections
                .unwrap_or(crate::http::DEFAULT_MAX_CONNECTIONS)
                .max(1);
            let live = Arc::new(AtomicUsize::new(0));
            accept_loops.push(scope.spawn(move || {
                accept_loop(listener, shutdown, |stream| {
                    // Claim a handler slot before spawning; over the cap
                    // the 503 is written right here in the accept loop
                    // (with a tightly bounded linger so it survives the
                    // close), so a connection flood never ties up a
                    // handler thread.
                    let claimed = live
                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                            (n < max_connections).then_some(n + 1)
                        })
                        .is_ok();
                    if !claimed {
                        crate::http::reject_over_capacity(stream);
                        return;
                    }
                    let live = Arc::clone(&live);
                    scope.spawn(move || {
                        crate::http::handle_connection(
                            stream,
                            queue,
                            shutdown,
                            http_options,
                            registry,
                        );
                        live.fetch_sub(1, Ordering::AcqRel);
                    });
                })
            }));
        }
        let mut result = Ok(());
        for handle in accept_loops {
            let loop_result = handle.join().expect("accept loops do not panic");
            if result.is_ok() {
                result = loop_result;
            }
        }
        // Release every scoped thread before returning — including on
        // a fatal accept error, where skipping this would leave workers
        // parked in the admission wait and the scope joining forever:
        // the shutdown flag stops connection handlers, closing the
        // queue lets workers exit once it drains (a `shutdown` with
        // mode "cancel" has already flipped/cancelled everything, so
        // that drain is immediate).
        shutdown.cancel();
        queue.close();
        result
    })?;

    let peak_active = queue.peak_concurrent();
    Ok(ServeReport {
        jobs: queue.into_reports(),
        slots,
        threads,
        memory_budget_bytes: budget_bytes,
        peak_concurrent_jobs: peak_active,
        wall: t0.elapsed(),
        peak_rss_bytes: peak_rss_bytes(),
    })
}

/// One nonblocking accept loop: hand each connection to `handle`, poll
/// the shutdown flag between accepts. A fatal accept error flips the
/// shared shutdown flag (so the sibling front-end and every connection
/// handler stop too) and is returned.
fn accept_loop(
    listener: TcpListener,
    shutdown: &CancelToken,
    mut handle: impl FnMut(TcpStream),
) -> std::io::Result<()> {
    loop {
        if shutdown.is_cancelled() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _peer)) => handle(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                shutdown.cancel();
                return Err(e);
            }
        }
    }
}

/// Serves one client connection: read a request line, answer it, repeat
/// until EOF or daemon shutdown. Read timeouts keep the handler
/// responsive to the shutdown flag even with an idle client. Frames are
/// read as raw bytes so invalid UTF-8 gets an error *response* instead
/// of tearing the connection down.
fn handle_connection(
    stream: TcpStream,
    queue: &JobQueue,
    shutdown: &CancelToken,
    registry: Option<&IndexRegistry>,
) {
    use std::io::Read as _;
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL * 4));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        // Frames are bounded like the HTTP front-end's bodies: a frame
        // that outgrows the cap gets one error response and the
        // connection closes (mid-frame, so framing is unrecoverable) —
        // a terminator-less byte flood cannot grow `line` unboundedly.
        if line.len() > MAX_FRAME_BYTES {
            let response = error(format!(
                "request frame exceeds the {MAX_FRAME_BYTES}-byte limit"
            ));
            if writer
                .write_all((response.compact() + "\n").as_bytes())
                .and_then(|()| writer.flush())
                .is_ok()
            {
                // Drain what the client is still sending before the
                // close, so the kernel doesn't RST the error response
                // away (see the HTTP front-end's close path).
                crate::http::lingering_close(&mut reader);
            }
            return;
        }
        // The take() bound caps how far one read_until call can grow
        // the buffer even when the client streams faster than we poll.
        let budget = (MAX_FRAME_BYTES + 1 - line.len()) as u64;
        match reader.by_ref().take(budget).read_until(b'\n', &mut line) {
            Ok(0) if line.is_empty() => return, // EOF
            // A complete frame, the final unterminated frame before
            // EOF, or the budget cap (caught at the top of the next
            // iteration before any processing).
            Ok(_) if line.len() > MAX_FRAME_BYTES => {}
            Ok(_) => {
                let frame = trim_frame(&line);
                if !frame.is_empty() {
                    let response = handle_request(frame, queue, shutdown, registry);
                    if writer
                        .write_all((response.compact() + "\n").as_bytes())
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                line.clear();
            }
            // Timeout (partial input, if any, stays buffered in `line`
            // and the next read continues it): check the flag and keep
            // listening.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.is_cancelled() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Strips ASCII whitespace (the line terminator and any padding) from
/// both ends of a frame.
fn trim_frame(line: &[u8]) -> &[u8] {
    let start = line
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .unwrap_or(line.len());
    let end = line
        .iter()
        .rposition(|b| !b.is_ascii_whitespace())
        .map_or(start, |i| i + 1);
    &line[start..end]
}

/// Answers one request frame. Never panics: malformed input — invalid
/// UTF-8, bad JSON, a missing or unknown `op` — becomes an
/// `{"ok":false,...}` response. All queue operations go through the
/// shared request layer ([`crate::intake`]), the same one the HTTP
/// front-end uses.
fn handle_request(
    frame: &[u8],
    queue: &JobQueue,
    shutdown: &CancelToken,
    registry: Option<&IndexRegistry>,
) -> Json {
    let request = match Json::parse_bytes(frame) {
        Ok(v) => v,
        Err(e) => return error(format!("bad request JSON: {e}")),
    };
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return error("request needs a string `op` field".to_string());
    };
    match op {
        "submit" => {
            let Some(job) = request.get("job") else {
                return error("submit needs a `job` object".to_string());
            };
            match intake::submit_job(queue, job) {
                Ok((id, name)) => Json::obj([
                    ("ok", Json::Bool(true)),
                    ("id", Json::num(id as f64)),
                    ("name", Json::str(name)),
                ]),
                // A shed submit is worth resubmitting after a backoff;
                // the top-level flag predates the structured error
                // object and stays for compatibility.
                Err(e) if e.retryable() => Json::obj([
                    ("ok", Json::Bool(false)),
                    ("retryable", Json::Bool(true)),
                    (
                        "error",
                        intake::error_body("overloaded", e.to_string(), true),
                    ),
                ]),
                Err(e) => error(e.to_string()),
            }
        }
        "status" => {
            let id = match optional_id(&request) {
                Ok(f) => f,
                Err(e) => return error(e),
            };
            let limit = match request.get("limit") {
                None => None,
                Some(v) => match v.as_usize() {
                    Some(n) => Some(n),
                    None => return error("`limit` must be a non-negative integer".to_string()),
                },
            };
            let filter = intake::JobFilter {
                id,
                status: request
                    .get("status")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                limit,
            };
            match intake::status_json(queue, !shutdown.is_cancelled(), &filter, registry) {
                Ok(body) => ok_with(body),
                Err(e) => error(e),
            }
        }
        "cancel" => match required_id(&request) {
            Err(e) => error(e),
            Ok(id) => {
                let outcome = queue.cancel(id);
                Json::obj([
                    ("ok", Json::Bool(true)),
                    ("id", Json::num(id as f64)),
                    ("outcome", Json::str(outcome.label())),
                ])
            }
        },
        "wait" => match required_id(&request) {
            Err(e) => error(e),
            Ok(id) => match intake::wait_json(queue, id) {
                None => error(format!("unknown job id {id}")),
                Some(body) => ok_with(body),
            },
        },
        "events" => {
            let from = match request.get("from") {
                None => 0u64,
                Some(v) => match v.as_usize() {
                    Some(n) => n as u64,
                    None => return error("`from` must be a non-negative integer".to_string()),
                },
            };
            let job = match request.get("job") {
                None => None,
                Some(v) => match v.as_usize() {
                    Some(n) => Some(n as i64),
                    None => return error("`job` must be a non-negative integer".to_string()),
                },
            };
            let level = match request.get("level").and_then(Json::as_str) {
                None => Level::Info,
                Some(raw) => match raw.parse::<Level>() {
                    Ok(level) => level,
                    Err(e) => return error(e),
                },
            };
            let wait = request.get("wait") == Some(&Json::Bool(true));
            let filter = crate::events::EventFilter { job, level };
            ok_with(crate::events::events_batch_json(
                from,
                &filter,
                wait,
                POLL_INTERVAL * 40,
            ))
        }
        "trace" => match required_id(&request) {
            Err(e) => error(e),
            Ok(id) => match crate::events::job_trace_json(queue, id) {
                None => error(format!("unknown job id {id}")),
                Some(body) => ok_with(body),
            },
        },
        "index-build" => {
            let Some(job) = request.get("job") else {
                return error("index-build needs a `job` object".to_string());
            };
            match intake::index_build(queue, registry, job) {
                Ok((id, name)) => Json::obj([
                    ("ok", Json::Bool(true)),
                    ("job", Json::num(id as f64)),
                    ("index", Json::str(name)),
                ]),
                Err(rejection) => index_error(&rejection),
            }
        }
        "index-list" => match intake::index_list(registry) {
            Ok(body) => ok_with(body),
            Err(rejection) => index_error(&rejection),
        },
        "index-inspect" => match required_str(&request, "index") {
            Err(e) => error(e),
            Ok(id) => match intake::index_meta(registry, id) {
                Ok(body) => ok_with(body),
                Err(rejection) => index_error(&rejection),
            },
        },
        "index-delete" => match required_str(&request, "index") {
            Err(e) => error(e),
            Ok(id) => match intake::index_delete(registry, id) {
                Ok(body) => ok_with(body),
                Err(rejection) => index_error(&rejection),
            },
        },
        "index-patch" => match required_str(&request, "index") {
            Err(e) => error(e),
            // The whole request doubles as the delta body: ops_from_json
            // only looks at its `deltas` field.
            Ok(id) => match intake::index_patch(queue, registry, id, &request) {
                Ok((job, index)) => Json::obj([
                    ("ok", Json::Bool(true)),
                    ("job", Json::num(job as f64)),
                    ("index", Json::str(index)),
                ]),
                Err(rejection) => index_error(&rejection),
            },
        },
        "index-match" => {
            let id = match required_str(&request, "index") {
                Ok(id) => id,
                Err(e) => return error(e),
            };
            let entity = match required_str(&request, "entity") {
                Ok(entity) => entity,
                Err(e) => return error(e),
            };
            let k = match request.get("k") {
                None => intake::DEFAULT_MATCH_K,
                Some(v) => match v.as_usize() {
                    Some(n) => n,
                    None => return error("`k` must be a non-negative integer".to_string()),
                },
            };
            match intake::index_match(registry, id, entity, k) {
                Ok(body) => ok_with(body),
                Err(rejection) => index_error(&rejection),
            }
        }
        "shutdown" => {
            let mode = match ShutdownMode::parse(request.get("mode").and_then(Json::as_str)) {
                Ok(mode) => mode,
                Err(e) => return error(e),
            };
            intake::shutdown(queue, shutdown, mode);
            Json::obj([("ok", Json::Bool(true))])
        }
        other => error(format!("unknown op {other:?}")),
    }
}

/// Prefixes a shared-layer body with the protocol's `"ok": true` flag.
fn ok_with(body: Json) -> Json {
    let Json::Obj(mut fields) = body else {
        unreachable!("intake bodies are objects");
    };
    fields.insert(0, ("ok".to_string(), Json::Bool(true)));
    Json::Obj(fields)
}

/// A malformed-request failure in the unified error schema (code
/// `bad_request`, never retryable) under the protocol's `"ok": false`
/// envelope.
fn error(message: String) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", intake::error_body("bad_request", &message, false)),
    ])
}

/// An index-op failure: the rejection's own code/retryability, with the
/// top-level `retryable` flag mirrored for shed-style backoff clients.
fn index_error(rejection: &intake::IndexRejection) -> Json {
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), rejection.to_error_body()),
    ];
    if rejection.retryable() {
        fields.insert(1, ("retryable".to_string(), Json::Bool(true)));
    }
    Json::Obj(fields)
}

fn required_id(request: &Json) -> Result<usize, String> {
    optional_id(request)?.ok_or_else(|| "request needs a numeric `id` field".to_string())
}

fn required_str<'a>(request: &'a Json, field: &str) -> Result<&'a str, String> {
    request
        .get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("request needs a string `{field}` field"))
}

fn optional_id(request: &Json) -> Result<Option<usize>, String> {
    match request.get("id") {
        None => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| "`id` must be a non-negative integer".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::JobSpec;
    use crate::report::JobStatus;
    use crate::scheduler::CancelOutcome;
    use std::net::SocketAddr;

    /// Sends one request line, returns the parsed response.
    fn roundtrip(addr: SocketAddr, request: &str) -> Json {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all((request.to_string() + "\n").as_bytes())
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(line.trim()).expect("response parses")
    }

    fn tiny_opts() -> ServeOptions {
        ServeOptions {
            slots: Some(2),
            threads: Some(2),
            ..ServeOptions::default()
        }
    }

    #[test]
    fn daemon_serves_submit_status_wait_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let opts = tiny_opts();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| run_daemon(listener, &opts, |_| {}).unwrap());

            let r = roundtrip(
                addr,
                r#"{"op":"submit","job":{"name":"a","dataset":"restaurant","scale":0.05}}"#,
            );
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
            assert_eq!(r.get("id").unwrap().as_usize(), Some(0));

            let r = roundtrip(addr, r#"{"op":"wait","id":0}"#);
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
            let report = r.get("report").unwrap();
            assert_eq!(report.get("status").unwrap().as_str(), Some("ok"));
            assert!(r.get("fingerprint").unwrap().as_str().unwrap().len() > 1);

            let r = roundtrip(addr, r#"{"op":"status"}"#);
            assert_eq!(r.get("done").unwrap().as_usize(), Some(1));
            // The status response surfaces live queue telemetry.
            let telemetry = r.get("telemetry").expect("telemetry in status");
            assert_eq!(telemetry.get("done_ok").unwrap().as_usize(), Some(1));
            assert!(telemetry.get("threads_budget").unwrap().as_usize() >= Some(1));
            assert!(telemetry.get("stage_ms").is_some());

            let r = roundtrip(addr, r#"{"op":"shutdown"}"#);
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)));

            let report = daemon.join().unwrap();
            assert_eq!(report.jobs.len(), 1);
            assert_eq!(report.jobs[0].status, JobStatus::Ok);
        });
    }

    #[test]
    fn daemon_rejects_malformed_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let opts = tiny_opts();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| run_daemon(listener, &opts, |_| {}).unwrap());
            for (request, needle) in [
                ("not json", "bad request JSON"),
                ("{}", "op"),
                (r#"{"op":"warp"}"#, "unknown op"),
                (r#"{"op":"submit"}"#, "job"),
                (r#"{"op":"submit","job":{"name":"x"}}"#, "either dataset or"),
                (
                    r#"{"op":"submit","job":{"name":"x","dataset":"rexa","theta":9}}"#,
                    "theta",
                ),
                (r#"{"op":"cancel"}"#, "id"),
                (r#"{"op":"wait","id":7}"#, "unknown job id"),
                (
                    r#"{"op":"shutdown","mode":"explode"}"#,
                    "unknown shutdown mode",
                ),
            ] {
                let r = roundtrip(addr, request);
                assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{request}");
                let err = r.get("error").unwrap();
                assert_eq!(err.get("code").unwrap().as_str(), Some("bad_request"));
                assert_eq!(err.get("retryable"), Some(&Json::Bool(false)));
                let e = err.get("message").unwrap().as_str().unwrap();
                assert!(e.contains(needle), "{request} -> {e}");
            }
            roundtrip(addr, r#"{"op":"shutdown"}"#);
            let report = daemon.join().unwrap();
            assert!(report.jobs.is_empty());
        });
    }

    #[test]
    fn invalid_utf8_frames_get_an_error_response_not_a_dropped_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let opts = tiny_opts();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| run_daemon(listener, &opts, |_| {}).unwrap());
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"{\"op\": \"stat\xffus\"}\n").unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let r = Json::parse(line.trim()).expect("error response parses");
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
            let e = r
                .get("error")
                .unwrap()
                .get("message")
                .unwrap()
                .as_str()
                .unwrap();
            assert!(e.contains("invalid UTF-8"), "{e}");
            // The same connection keeps working after the bad frame.
            stream.write_all(b"{\"op\":\"status\"}\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            let r = Json::parse(line.trim()).unwrap();
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
            roundtrip(addr, r#"{"op":"shutdown"}"#);
            daemon.join().unwrap();
        });
    }

    #[test]
    fn shutdown_cancel_mode_flips_queued_jobs() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // One slot, so the second and third submissions queue behind
        // the first.
        let opts = ServeOptions {
            slots: Some(1),
            threads: Some(1),
            ..ServeOptions::default()
        };
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| run_daemon(listener, &opts, |_| {}).unwrap());
            for name in ["a", "b", "c"] {
                let r = roundtrip(
                    addr,
                    &format!(
                        r#"{{"op":"submit","job":{{"name":"{name}","dataset":"restaurant","scale":0.05}}}}"#
                    ),
                );
                assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
            }
            let r = roundtrip(addr, r#"{"op":"shutdown","mode":"cancel"}"#);
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
            let report = daemon.join().unwrap();
            assert_eq!(report.jobs.len(), 3);
            // Every job is terminal; at least the tail of the queue was
            // flipped to Cancelled without running.
            assert!(report
                .jobs
                .iter()
                .all(|j| j.status == JobStatus::Cancelled || j.status.is_ok()));
            assert!(report.jobs.iter().any(|j| j.status == JobStatus::Cancelled));
        });
    }

    #[test]
    fn shutdown_closes_the_queue_in_the_handler_itself() {
        // The close must happen in handle_request, not only when the
        // accept loop notices the flag: a submit racing that window
        // would slip past cancel_all and run to completion.
        let queue = JobQueue::new(1, 1, 0);
        let shutdown = CancelToken::new();
        let r = handle_request(
            br#"{"op":"shutdown","mode":"cancel"}"#,
            &queue,
            &shutdown,
            None,
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert!(shutdown.is_cancelled());
        let spec = JobSpec::from_json(
            &Json::parse(r#"{"name":"late","dataset":"restaurant","scale":0.05}"#).unwrap(),
        )
        .unwrap();
        let err = queue.submit(spec).unwrap_err();
        assert!(err.to_string().contains("closed"), "{err}");
    }

    #[test]
    fn run_server_requires_a_front_end() {
        let err = run_server(Frontends::default(), &tiny_opts(), |_| {}).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn cancel_outcome_labels_are_wire_stable() {
        assert_eq!(CancelOutcome::CancelledQueued.label(), "cancelled");
        assert_eq!(CancelOutcome::Cancelling.label(), "cancelling");
        assert_eq!(CancelOutcome::AlreadyDone.label(), "done");
        assert_eq!(CancelOutcome::Unknown.label(), "unknown");
    }

    #[test]
    fn trim_frame_strips_terminators_only() {
        assert_eq!(trim_frame(b"  {\"a\":1}\r\n"), b"{\"a\":1}");
        assert_eq!(trim_frame(b"\n"), b"");
        assert_eq!(trim_frame(b""), b"");
        assert_eq!(trim_frame(b"\xff\n"), b"\xff", "non-UTF-8 survives");
    }
}
