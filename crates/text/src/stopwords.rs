//! A small built-in English stop-word list.
//!
//! MinoanER itself does not need stop-word removal (Block Purging removes
//! excessively large blocks, which is where stop-words end up), but the
//! BSL baseline's TF/TF-IDF models and the tokenizer expose it as an
//! option.

/// The built-in stop-word list (lower-case, sorted).
pub const STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from",
    "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how",
    "i", "if", "in", "into", "is", "it", "its", "just", "me", "more", "most", "my", "no", "nor",
    "not", "now", "of", "off", "on", "once", "only", "or", "other", "our", "ours", "out", "over",
    "own", "same", "she", "should", "so", "some", "such", "than", "that", "the", "their", "theirs",
    "them", "then", "there", "these", "they", "this", "those", "through", "to", "too", "under",
    "until", "up", "very", "was", "we", "were", "what", "when", "where", "which", "while", "who",
    "whom", "why", "will", "with", "you", "your", "yours",
];

/// Whether `token` (already lower-cased) is a stop-word.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted, STOPWORDS,
            "STOPWORDS must stay sorted for binary search"
        );
    }

    #[test]
    fn common_words_detected() {
        assert!(is_stopword("the"));
        assert!(is_stopword("and"));
        assert!(!is_stopword("knossos"));
        assert!(!is_stopword(""));
    }
}
