//! Dataset-generation benchmarks: cost of the synthetic profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minoan_datagen::DatasetKind;

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);
    for kind in DatasetKind::ALL {
        group.bench_with_input(BenchmarkId::new("generate", kind.name()), &kind, |b, &k| {
            b.iter(|| k.generate_scaled(7, 0.1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_datagen);
criterion_main!(benches);
