//! `minoaner` — command-line entity resolution.
//!
//! ```text
//! minoaner match  <first.(tsv|nt)> <second.(tsv|nt)> [--method minoaner|bsl|sigma|paris]
//!                 [--truth <pairs.tsv>] [--json] [--theta F] [--k N] [--no-purge]
//!                 [--executor sequential|rayon] [--threads N]
//! minoaner demo   [restaurant|rexa|bbc|yago] [--scale F] [--seed N]
//!                 [--executor sequential|rayon] [--threads N]
//! minoaner stats  <kb.(tsv|nt)>
//! ```
//!
//! `--truth` is a 2-column TSV of matching URIs (first-KB URI, second-KB
//! URI); with it the tool reports precision/recall/F1. `--executor`
//! selects the backend the hot pipeline stages run on (results are
//! bit-identical across backends); `--threads 0` means all cores.

use std::process::exit;

use minoan_baselines::{run_bsl, run_paris, run_sigma, ParisConfig, SigmaConfig};
use minoan_blocking::unique_name_pairs;
use minoan_core::{build_blocks, MinoanConfig, MinoanEr};
use minoan_datagen::DatasetKind;
use minoan_eval::MatchQuality;
use minoan_kb::{parse, GroundTruth, Json, KbPair, KnowledgeBase, Matching};
use minoan_text::{TokenizedPair, Tokenizer};

fn usage() -> ! {
    eprintln!(
        "usage:\n  minoaner match <first> <second> [--method minoaner|bsl|sigma|paris] \
         [--truth pairs.tsv] [--json] [--theta F] [--k N] [--no-purge] \
         [--executor sequential|rayon] [--threads N]\n  \
         minoaner demo [restaurant|rexa|bbc|yago] [--scale F] [--seed N] \
         [--executor sequential|rayon] [--threads N]\n  \
         minoaner stats <kb>"
    );
    exit(2);
}

fn parse_executor(value: Option<&String>, config: &mut MinoanConfig) {
    let Some(kind) = value.and_then(|v| v.parse().ok()) else {
        usage()
    };
    config.executor = kind;
}

/// Loads a KB by **streaming** the file through the chunked parallel
/// parser: the file is never materialized as one `String`, and parse
/// work fans out over the configured executor.
fn load_kb(path: &str, name: &str, config: &MinoanConfig) -> KnowledgeBase {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let exec = config.executor();
    let opts = config.stream_options();
    let result = if path.ends_with(".nt") || path.ends_with(".ntriples") {
        parse::parse_ntriples_reader(name, file, &exec, opts)
    } else {
        parse::parse_tsv_reader(name, file, &exec, opts)
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn load_truth(path: &str, pair: &KbPair) -> GroundTruth {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let mut truth = Matching::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.splitn(2, '\t');
        let (Some(u1), Some(u2)) = (cols.next(), cols.next()) else {
            eprintln!("{path}:{}: expected two tab-separated URIs", i + 1);
            exit(1);
        };
        match (pair.first.entity_by_uri(u1), pair.second.entity_by_uri(u2)) {
            (Some(e1), Some(e2)) => {
                truth.insert(e1, e2);
            }
            _ => eprintln!("warning: {path}:{}: unknown URI, pair skipped", i + 1),
        }
    }
    truth
}

fn report(matching: &Matching, pair: &KbPair, truth: Option<&GroundTruth>, json: bool) {
    if json {
        let pairs: Vec<[String; 2]> = matching
            .iter()
            .map(|(a, b)| {
                [
                    pair.first.entity_uri(a).to_string(),
                    pair.second.entity_uri(b).to_string(),
                ]
            })
            .collect();
        let quality = truth.map(|t| MatchQuality::evaluate(matching, t));
        let out = Json::obj([
            (
                "matches",
                Json::arr(
                    pairs
                        .iter()
                        .map(|[a, b]| Json::arr([Json::str(a), Json::str(b)])),
                ),
            ),
            (
                "quality",
                match quality {
                    Some(q) => Json::obj([
                        ("precision", Json::Num(q.precision())),
                        ("recall", Json::Num(q.recall())),
                        ("f1", Json::Num(q.f1())),
                    ]),
                    None => Json::Null,
                },
            ),
        ]);
        println!("{}", out.pretty());
    } else {
        for (a, b) in matching.iter() {
            println!(
                "{}\t{}",
                pair.first.entity_uri(a),
                pair.second.entity_uri(b)
            );
        }
        if let Some(t) = truth {
            let q = MatchQuality::evaluate(matching, t);
            eprintln!(
                "precision {:.2}%  recall {:.2}%  F1 {:.2}%  ({} matches)",
                q.precision() * 100.0,
                q.recall() * 100.0,
                q.f1() * 100.0,
                matching.len()
            );
        } else {
            eprintln!("{} matches", matching.len());
        }
    }
}

fn run_method(
    method: &str,
    pair: &KbPair,
    config: &MinoanConfig,
    truth: Option<&GroundTruth>,
) -> Matching {
    match method {
        "minoaner" => {
            MinoanEr::new(config.clone())
                .unwrap_or_else(|e| {
                    eprintln!("bad config: {e}");
                    exit(1);
                })
                .run(pair)
                .matching
        }
        "bsl" => {
            let Some(t) = truth else {
                eprintln!("--method bsl needs --truth (BSL is oracle-tuned by definition)");
                exit(1);
            };
            let art = build_blocks(pair, config);
            run_bsl(
                &pair.first,
                &pair.second,
                &[&art.name_blocks, &art.token_blocks],
                t,
            )
            .matching
        }
        "sigma" => {
            let art = build_blocks(pair, config);
            let tokens = TokenizedPair::build(pair, &Tokenizer::default());
            let seeds = unique_name_pairs(&art.name_blocks);
            run_sigma(
                pair,
                &tokens,
                &art.token_blocks,
                &seeds,
                SigmaConfig::default(),
            )
        }
        "paris" => run_paris(pair, ParisConfig::default()),
        other => {
            eprintln!("unknown method {other:?}");
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("match") => {
            let mut positional: Vec<&str> = Vec::new();
            let mut method = "minoaner".to_string();
            let mut truth_path: Option<String> = None;
            let mut json = false;
            let mut config = MinoanConfig::default();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--method" => method = it.next().cloned().unwrap_or_else(|| usage()),
                    "--truth" => truth_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
                    "--json" => json = true,
                    "--theta" => {
                        config.theta = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--k" => {
                        config.candidates_k = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--no-purge" => config.purge_blocks = false,
                    "--executor" => parse_executor(it.next(), &mut config),
                    "--threads" => {
                        config.threads = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    other if !other.starts_with('-') => positional.push(other),
                    _ => usage(),
                }
            }
            if positional.len() != 2 {
                usage();
            }
            let pair = KbPair::new(
                load_kb(positional[0], "E1", &config),
                load_kb(positional[1], "E2", &config),
            );
            let truth = truth_path.map(|p| load_truth(&p, &pair));
            let matching = run_method(&method, &pair, &config, truth.as_ref());
            report(&matching, &pair, truth.as_ref(), json);
        }
        Some("demo") => {
            let mut kind = DatasetKind::Restaurant;
            let mut scale = 0.3;
            let mut seed = 20180416u64;
            let mut config = MinoanConfig::default();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "restaurant" => kind = DatasetKind::Restaurant,
                    "rexa" => kind = DatasetKind::RexaDblp,
                    "bbc" => kind = DatasetKind::BbcDbpedia,
                    "yago" => kind = DatasetKind::YagoImdb,
                    "--scale" => {
                        scale = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--executor" => parse_executor(it.next(), &mut config),
                    "--threads" => {
                        config.threads = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    _ => usage(),
                }
            }
            let d = kind.generate_scaled(seed, scale);
            eprintln!(
                "{}: |E1|={} |E2|={} ground truth {}  (executor {}, {} threads)",
                d.name,
                d.pair.first.entity_count(),
                d.pair.second.entity_count(),
                d.truth.len(),
                config.executor,
                config.executor().threads(),
            );
            let out = MinoanEr::new(config)
                .unwrap_or_else(|e| {
                    eprintln!("bad config: {e}");
                    exit(1);
                })
                .run(&d.pair);
            let q = MatchQuality::evaluate(&out.matching, &d.truth);
            eprintln!(
                "MinoanER: H1={} H2={} H3={} H4-removed={}",
                out.report.h1_matches,
                out.report.h2_matches,
                out.report.h3_matches,
                out.report.h4_removed
            );
            eprintln!(
                "precision {:.2}%  recall {:.2}%  F1 {:.2}%",
                q.precision() * 100.0,
                q.recall() * 100.0,
                q.f1() * 100.0
            );
        }
        Some("stats") => {
            let Some(path) = it.next() else { usage() };
            let kb = load_kb(path, "KB", &MinoanConfig::default());
            let stats = minoan_kb::KbStats::compute(&kb);
            println!("{}", stats.to_json().pretty());
        }
        _ => usage(),
    }
}
